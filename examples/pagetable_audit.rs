//! The page-table prototype's verification story, interactively: build
//! an address space, watch the three Figure-2 layers agree, then run a
//! slice of the verification conditions.
//!
//! Run: `cargo run --example pagetable_audit`

use veros::hw::{interpret_page_table, PAddr, PhysMem, StackFrameSource, VAddr, PAGE_4K};
use veros::pagetable::high_spec::HighSpec;
use veros::pagetable::{MapFlags, MapRequest, PageSize, PageTableOps, VerifiedPageTable};
use veros::spec::{VcEngine, VcKind};

fn main() {
    let mut mem = PhysMem::new(1024);
    let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(512 * PAGE_4K));
    // Audit mode: the table carries its ghost prefix tree.
    let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).expect("root");
    let mut spec = HighSpec::new();

    println!("layer 3 (implementation): mapping three pages + one huge page");
    for req in [
        MapRequest::rw_4k(0x1000, 0x10_0000),
        MapRequest::rw_4k(0x2000, 0x11_0000),
        MapRequest {
            va: VAddr(0xffff_8000_0000_0000),
            pa: PAddr(0x12_0000),
            size: PageSize::Size4K,
            flags: MapFlags::kernel_rw(),
        },
        MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_ro(),
        },
    ] {
        pt.map_frame(&mut mem, &mut alloc, req).expect("map");
        spec.apply_map(&req).expect("spec map");
        println!("  map {:>18} -> {:<10} {:?}", format!("{}", req.va), format!("{}", req.pa), req.size);
    }

    println!("\nlayer 1 (hardware spec): the MMU's interpretation of the bits:");
    let interp = interpret_page_table(&mem, pt.root());
    for (va, m) in &interp {
        println!(
            "  {va} -> {} ({} bytes, w={} u={} nx={})",
            m.pa_base, m.size, m.writable, m.user, m.nx
        );
    }

    println!("\nlayer 2 (high-level spec): the mathematical map:");
    for (va, m) in &spec.map {
        println!("  {va:#x} -> {:#x} ({:?})", m.pa, m.size);
    }

    // The refinement, checked on the spot.
    veros::pagetable::interp::interpretation_matches(&mem, pt.root(), &spec)
        .expect("MMU interpretation == abstract map");
    assert_eq!(pt.ghost().expect("audit").flatten(), spec.map);
    println!("\ninterpretation check: bits in memory == abstract map ✓");
    println!("ghost view check:     implementation view() == abstract map ✓");

    // Run a fast slice of the VC population (the full 220 run in Paper
    // profile is `cargo run --release -p veros-bench --bin fig1a`).
    println!("\nrunning the 220-VC population (quick profile)...");
    let mut engine = VcEngine::new();
    veros::pagetable::vcs::register_all(&mut engine, veros::pagetable::vcs::Profile::Quick);
    let report = engine.run();
    println!("{}", report.summary());
    for (kind, n) in report.count_by_kind() {
        let label = match kind {
            VcKind::Invariant => "invariant preservation",
            VcKind::Refinement => "refinement",
            VcKind::Interpretation => "hardware interpretation",
            VcKind::Marshalling => "marshalling",
            VcKind::RaceFreedom => "race freedom",
            VcKind::Linearizability => "linearizability",
            VcKind::Property => "functional properties",
        };
        println!("  {n:>3}  {label}");
    }
    assert!(report.all_passed(), "VC failures");
    println!("all verification conditions passed ✓");
}
