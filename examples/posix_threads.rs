//! Threads and synchronization on the narrow kernel API: the §3 futex
//! example as a running program — four user threads contend on a
//! Drepper mutex for a shared counter in user memory, scheduled by the
//! kernel's round-robin scheduler across two model cores.
//!
//! Run: `cargo run --example posix_threads`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use veros::kernel::{Kernel, KernelConfig, Syscall};
use veros::ulib::{LockAttempt, LockState, Runtime, Step, UMutex};

const MUTEX: u64 = 0x10_0000;
const COUNTER: u64 = 0x10_0008;
const WORKERS: usize = 4;
const ROUNDS: u32 = 25;

fn main() {
    let kernel = Kernel::boot(KernelConfig {
        cores: 2,
        ..Default::default()
    })
    .expect("boot");
    let (pid, tid) = (kernel.init_pid, kernel.init_tid);
    let mut rt = Runtime::new(kernel);
    rt.kernel.sched.timeslice = 2; // Aggressive preemption.

    // One shared page: mutex word + counter.
    rt.kernel
        .syscall(
            (pid, tid),
            Syscall::Map {
                va: MUTEX,
                pages: 1,
                writable: true,
            },
        )
        .expect("map");

    let finals = Arc::new(AtomicU64::new(0));
    // Init idles; workers do the work.
    rt.attach(pid, tid, Box::new(|_| Step::Done(0)));

    let remaining = Arc::new(AtomicU64::new(WORKERS as u64));
    for w in 0..WORKERS {
        let mutex = UMutex::at(MUTEX);
        let mut lock_state = LockState::default();
        let mut rounds = 0u32;
        let mut in_cs = false;
        let finals = Arc::clone(&finals);
        let remaining = Arc::clone(&remaining);
        rt.spawn_task(
            (pid, tid),
            Some(w % 2), // Pin alternately to the two cores.
            Box::new(move |ctx| {
                if !in_cs {
                    match mutex.lock_attempt(ctx, &mut lock_state).expect("lock") {
                        LockAttempt::Acquired => in_cs = true,
                        _ => return Step::Yield, // Blocked or retrying.
                    }
                }
                // Critical section: read-modify-write with a deliberate
                // preemption point would be unsafe without the mutex.
                let v = ctx.read_u64(COUNTER).expect("load");
                ctx.write_u64(COUNTER, v + 1).expect("store");
                mutex.unlock(ctx).expect("unlock");
                in_cs = false;
                rounds += 1;
                if rounds == ROUNDS {
                    if remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                        finals.store(ctx.read_u64(COUNTER).expect("load"), Ordering::Relaxed);
                    }
                    Step::Done(0)
                } else {
                    Step::Yield
                }
            }),
        )
        .expect("spawn");
    }

    assert!(rt.run(2_000_000), "threads wedged");
    let total = finals.load(Ordering::Relaxed);
    println!(
        "{WORKERS} threads x {ROUNDS} increments under the futex mutex = {total}"
    );
    assert_eq!(total, WORKERS as u64 * ROUNDS as u64);
    println!("no lost updates, no lost wakeups ✓ (Drepper mutex over the kernel futex)");
    println!(
        "kernel clock at exit: {} ticks across {} cores",
        rt.kernel.clock.now(),
        rt.kernel.sched.cores()
    );
}
