//! Quickstart: boot the kernel, run a program against the verified
//! contract.
//!
//! This is the paper's pitch in one file: an application written against
//! the `Sys` interface, with every syscall's ensures clause *checked*
//! against the abstract specification while it runs (audit mode).
//!
//! Run: `cargo run --example quickstart`

use veros::core::Sys;
use veros::kernel::{Kernel, KernelConfig, Syscall};

fn main() {
    // Boot: memory management, scheduler, journaled filesystem, one
    // init process.
    let mut kernel = Kernel::boot(KernelConfig::default()).expect("boot");
    let caller = (kernel.init_pid, kernel.init_tid);
    println!("booted: init pid {:?}, tid {:?}", caller.0, caller.1);

    // The Sys handle in audit mode: every call is checked against the
    // high-level spec (the §3 contract).
    let mut sys = Sys::new(&mut kernel, caller, true);

    // Map memory — the virtual-memory part of the execution model.
    sys.call(Syscall::Map {
        va: 0x10_0000,
        pages: 4,
        writable: true,
    })
    .expect("contract")
    .expect("map");
    println!("mapped 4 pages at 0x100000 (checked against the abstract memory)");

    // Stores and loads go through the page table; the audit compares
    // them against the abstract memory map.
    sys.mem_write(0x10_0000, b"/greeting.txt").expect("store");

    // Files: create, write, read back — `read` is the paper's worked
    // example, checked against read_spec.
    let fd = sys
        .call(Syscall::Open {
            path_ptr: 0x10_0000,
            path_len: 13,
            create: true,
        })
        .expect("contract")
        .expect("open") as u32;
    sys.mem_write(0x10_1000, b"hello from the verified stack\n")
        .expect("store");
    sys.call(Syscall::Write {
        fd,
        buf_ptr: 0x10_1000,
        buf_len: 30,
    })
    .expect("contract")
    .expect("write");
    sys.call(Syscall::Seek { fd, offset: 0 }).expect("contract").expect("seek");
    let (n, data) = sys.read(fd, 0x10_2000, 64).expect("contract").expect("read");
    println!("read {n} bytes: {:?}", String::from_utf8_lossy(&data));

    // Processes: spawn a child, let it exit, reap it.
    let child = sys.call(Syscall::Spawn).expect("contract").expect("spawn");
    println!("spawned child pid {child}");
    // (Drive the child directly through the kernel: it exits with 42 —
    // `sys`'s borrow of the kernel ended at its last use above.)
    let child_tid = kernel
        .processes()
        .get(veros::kernel::Pid(child))
        .expect("child")
        .threads[0];
    kernel
        .syscall((veros::kernel::Pid(child), child_tid), Syscall::Exit { code: 42 })
        .expect("exit");
    let mut sys = Sys::new(&mut kernel, caller, true);
    let code = sys
        .call(Syscall::Wait { pid: child })
        .expect("contract")
        .expect("wait");
    println!("child exited with {code}");

    // The view is the whole abstract state; print a summary.
    let view = sys.view();
    println!(
        "final abstract state: {} process(es), {} file(s), clock {}",
        view.procs.len(),
        view.fs.len(),
        view.clock
    );
    println!("every operation above was audited against the §3 contract ✓");
}
