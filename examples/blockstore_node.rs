//! The paper's motivating application, end to end: a replicated block
//! storage node (the "data-storage node in a distributed block store
//! like GFS or S3" of §1) serving a client over the hostile simulated
//! network, surviving a primary failure.
//!
//! Run: `cargo run --example blockstore_node`

use veros::blockstore::{Cluster, Response};
use veros::net::sim::FaultPlan;

fn main() {
    // Client (host 0) + primary (host 1) + backup (host 2), over a wire
    // that drops 20%, duplicates 10%, and reorders everything.
    let mut cluster = Cluster::new(FaultPlan::hostile(), 2026);
    println!("cluster up: client + primary + backup over a hostile wire");

    // Store a few objects (each put is checksummed end-to-end,
    // journaled to the primary's disk, and synchronously replicated).
    for (key, data) in [
        ("manifest", b"objects: 2".as_slice()),
        ("obj/alpha", b"first object contents".as_slice()),
        ("obj/beta", b"second object contents".as_slice()),
    ] {
        match cluster.rpc(|cl, s, t| cl.put(s, t, key, data)).expect("put") {
            Response::PutOk { .. } => println!("put {key:<12} ({} bytes) acknowledged", data.len()),
            other => panic!("unexpected: {other:?}"),
        }
    }

    // Read one back through the lossy wire.
    match cluster.rpc(|cl, s, t| cl.get(s, t, "obj/alpha")).expect("get") {
        Response::GetOk { data, checksum, .. } => {
            println!("get obj/alpha -> {:?} (checksum {checksum:#x} verified)",
                String::from_utf8_lossy(&data));
        }
        other => panic!("unexpected: {other:?}"),
    }

    // List.
    match cluster.rpc(|cl, s, t| cl.list(s, t)).expect("list") {
        Response::Keys { keys, .. } => println!("keys: {keys:?}"),
        other => panic!("unexpected: {other:?}"),
    }

    // Kill the primary. Every *acknowledged* write must be readable
    // from the backup — that is what synchronous replication bought.
    cluster.kill_primary();
    println!("\nprimary killed; failing over to the backup...");
    match cluster
        .rpc_failover(|cl, s, t| cl.get(s, t, "obj/beta"))
        .expect("failover get")
    {
        Response::GetOk { data, .. } => {
            println!(
                "backup served obj/beta -> {:?}",
                String::from_utf8_lossy(&data)
            );
        }
        other => panic!("unexpected: {other:?}"),
    }
    println!("acknowledged writes survived the primary failure ✓");
}
