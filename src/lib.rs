//! `veros` — facade crate re-exporting the whole workspace.
//!
//! See the README for the project overview and DESIGN.md for the
//! paper-to-crate mapping.

pub use veros_blockstore as blockstore;
pub use veros_core as core;
pub use veros_fs as fs;
pub use veros_hw as hw;
pub use veros_kernel as kernel;
pub use veros_net as net;
pub use veros_nr as nr;
pub use veros_pagetable as pagetable;
pub use veros_spec as spec;
pub use veros_ulib as ulib;
