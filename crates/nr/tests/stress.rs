//! Randomized multi-replica stress for the lock-free context protocol.
//!
//! A deliberately tiny log (8 entries) forces constant wraparound and
//! garbage collection while more threads than combiner slots hammer both
//! replicas. The properties checked are the ones the seqlock-stamped
//! context cells must preserve under every interleaving:
//!
//! * each writer's responses are strictly increasing (its own `Add`s
//!   linearize in program order against an increasing counter, and no
//!   response is lost, duplicated, or routed to another thread's cell);
//! * each reader's observations are monotonic (reads never travel
//!   backwards in linearization order);
//! * after everything joins, every replica has converged on the exact
//!   sum of all increments.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use veros_nr::{Dispatch, NodeReplicated};
use veros_spec::rng::SpecRng;

#[derive(Clone, Debug, Default)]
struct Counter {
    value: u64,
}

impl Dispatch for Counter {
    type ReadOp = ();
    type WriteOp = u64;
    type Response = u64;

    fn dispatch(&self, _op: ()) -> u64 {
        self.value
    }

    fn dispatch_mut(&mut self, op: &u64) -> u64 {
        self.value += *op;
        self.value
    }
}

#[test]
fn wraparound_stress_keeps_responses_exact() {
    const REPLICAS: usize = 2;
    const WRITERS_PER_REPLICA: usize = 2;
    const OPS_PER_WRITER: usize = 400;

    // Log capacity 8: every few operations wrap the ring, so combiners
    // constantly wait on the slowest replica's ltail and recycle entries.
    // 4 slots per replica: 2 writers, 1 reader, 1 spare for the final
    // convergence check.
    let nr = Arc::new(NodeReplicated::new(REPLICAS, 4, 8, Counter::default));
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    let mut expected_total = 0u64;
    for r in 0..REPLICAS {
        for w in 0..WRITERS_PER_REPLICA {
            let seed = (r * WRITERS_PER_REPLICA + w) as u64;
            let mut rng = SpecRng::seeded(0xacc0 + seed);
            let increments: Vec<u64> = (0..OPS_PER_WRITER).map(|_| 1 + rng.below(9)).collect();
            expected_total += increments.iter().sum::<u64>();
            let nr = Arc::clone(&nr);
            writers.push(std::thread::spawn(move || {
                let tkn = nr.register(r).expect("writer slot");
                let mut last = 0u64;
                for (i, inc) in increments.into_iter().enumerate() {
                    let got = nr.execute_mut(inc, tkn);
                    assert!(
                        got >= last + inc,
                        "writer {seed} op {i}: response {got} skips below {last} + {inc} — \
                         a response was lost or cross-routed"
                    );
                    last = got;
                }
            }));
        }
    }
    let mut readers = Vec::new();
    for r in 0..REPLICAS {
        let nr = Arc::clone(&nr);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let tkn = nr.register(r).expect("reader slot");
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let got = nr.execute((), tkn);
                assert!(got >= last, "replica {r}: read {got} after {last} — time went backwards");
                last = got;
            }
            last
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    // Every replica must have converged on the exact total.
    for r in 0..REPLICAS {
        let tkn = nr.register(r).expect("spare slot");
        assert_eq!(
            nr.execute((), tkn),
            expected_total,
            "replica {r} diverged from the operation log"
        );
    }
}
