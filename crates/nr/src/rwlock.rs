//! The distributed readers-writer lock guarding each replica.
//!
//! NR "achieves read-concurrency with a readers-writer lock": readers
//! announce themselves in per-reader (cache-line padded) flags and check
//! a single writer flag, so concurrent readers never contend on a shared
//! cache line; the writer raises its flag and waits for every reader slot
//! to drain. This is the classic "big reader" lock NrOS uses per replica.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::pad::CachePadded;

/// A distributed readers-writer lock over `T`.
pub struct DistRwLock<T> {
    writer: CachePadded<AtomicBool>,
    readers: Vec<CachePadded<AtomicUsize>>,
    data: UnsafeCell<T>,
}

// SAFETY: The lock protocol guarantees exclusive access for writers and
// shared access for readers (proven by the `mutual_exclusion` stress
// test below): `&mut T` is only produced while `writer` is held and all
// reader slots are zero; `&T` only while the caller's reader slot is
// nonzero and the writer flag was observed clear after publication.
unsafe impl<T: Send> Send for DistRwLock<T> {}
// SAFETY: See above; concurrent `&T` access requires `T: Sync`, and the
// writer path moves `&mut T` across threads, requiring `T: Send`.
unsafe impl<T: Send + Sync> Sync for DistRwLock<T> {}

/// Shared-access guard returned by [`DistRwLock::read`].
pub struct ReadGuard<'a, T> {
    lock: &'a DistRwLock<T>,
    slot: usize,
}

/// Exclusive-access guard returned by [`DistRwLock::write`].
pub struct WriteGuard<'a, T> {
    lock: &'a DistRwLock<T>,
}

impl<T> DistRwLock<T> {
    /// Creates a lock with `reader_slots` dedicated reader slots (one per
    /// thread that will read; readers pass their slot index).
    pub fn new(reader_slots: usize, data: T) -> Self {
        Self {
            writer: CachePadded::new(AtomicBool::new(false)),
            readers: (0..reader_slots.max(1))
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires shared access using the caller's dedicated `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range or already held (the slot is a
    /// per-thread resource; re-entrant reads are a caller bug).
    pub fn read(&self, slot: usize) -> ReadGuard<'_, T> {
        let me = &self.readers[slot];
        // lint: allow(atomics-ordering) — own-slot read: the only writer
        // of this slot is the calling thread itself, so program order
        // already sequences it.
        assert_eq!(me.load(Ordering::Relaxed), 0, "reader slot {slot} re-entered");
        loop {
            // Publish intent, then check the writer flag. SeqCst on both
            // sides forbids the store-load reordering that would let a
            // reader and the writer both believe they hold the lock.
            me.store(1, Ordering::SeqCst);
            if !self.writer.load(Ordering::SeqCst) {
                return ReadGuard { lock: self, slot };
            }
            // A writer is active or arriving: back off and retry.
            me.store(0, Ordering::SeqCst);
            let mut backoff = crate::backoff::Backoff::new();
            // lint: allow(atomics-ordering) — spin-wait hint only; the
            // SeqCst writer-flag check at the top of the loop is what
            // decides admission.
            while self.writer.load(Ordering::Relaxed) {
                backoff.wait();
            }
        }
    }

    /// Tries to acquire exclusive access without blocking: fails when
    /// another writer holds the lock *or* any reader is active (so a
    /// thread that holds a read guard can safely call this without
    /// deadlocking itself).
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        if self
            .writer
            // lint: allow(atomics-ordering) — CAS failure ordering: no
            // state is read on the failure path, so Relaxed suffices.
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // One pass over the reader slots; any active reader aborts the
        // attempt. New readers cannot slip in: they check the writer
        // flag (already set) after publishing their slot.
        for r in &self.readers {
            if r.load(Ordering::SeqCst) != 0 {
                self.writer.store(false, Ordering::SeqCst);
                return None;
            }
        }
        Some(WriteGuard { lock: self })
    }

    /// Acquires exclusive access with writer priority: holds the writer
    /// flag (blocking out new readers) while waiting for current readers
    /// to drain.
    ///
    /// Must not be called while holding a read guard on the same lock.
    pub fn write(&self) -> WriteGuard<'_, T> {
        let mut backoff = crate::backoff::Backoff::new();
        loop {
            if self
                .writer
                // lint: allow(atomics-ordering) — CAS failure ordering:
                // the failure path only retries, reading nothing.
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            backoff.wait();
        }
        for r in &self.readers {
            let mut backoff = crate::backoff::Backoff::new();
            while r.load(Ordering::SeqCst) != 0 {
                backoff.wait();
            }
        }
        WriteGuard { lock: self }
    }

    /// Number of reader slots.
    pub fn reader_slots(&self) -> usize {
        self.readers.len()
    }
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: The reader slot is published and the writer flag was
        // observed clear afterwards; any later writer waits for our slot
        // to drain before touching the data.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.readers[self.slot].store(0, Ordering::SeqCst);
    }
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: Exclusive: the writer flag is held and all readers
        // drained.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: See `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.writer.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_basics() {
        let lock = DistRwLock::new(2, 5u64);
        {
            let r0 = lock.read(0);
            let r1 = lock.read(1);
            assert_eq!(*r0 + *r1, 10);
            assert!(lock.try_write().is_none(), "readers block writers");
        }
        {
            let mut w = lock.write();
            *w = 7;
        }
        assert_eq!(*lock.read(0), 7);
    }

    #[test]
    fn writer_blocks_new_writer() {
        let lock = DistRwLock::new(1, ());
        let w = lock.write();
        assert!(lock.try_write().is_none());
        drop(w);
        assert!(lock.try_write().is_some());
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn reentrant_read_panics() {
        let lock = DistRwLock::new(1, ());
        let _a = lock.read(0);
        let _b = lock.read(0);
    }

    #[test]
    fn mutual_exclusion_stress() {
        // Writers increment a two-field counter non-atomically; readers
        // assert the fields always agree. Any lock bug tears them apart.
        struct Pair {
            a: u64,
            b: u64,
        }
        let lock = Arc::new(DistRwLock::new(4, Pair { a: 0, b: 0 }));
        let mut handles = Vec::new();
        for slot in 0..4usize {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    if i % 4 == slot as u64 % 4 && slot < 2 {
                        let mut w = lock.write();
                        w.a += 1;
                        // Widen the race window.
                        std::hint::spin_loop();
                        w.b += 1;
                    } else {
                        let r = lock.read(slot);
                        assert_eq!(r.a, r.b, "torn read: lock is broken");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = lock.read(0);
        assert_eq!(r.a, r.b);
        assert_eq!(r.a, 1000);
    }
}
