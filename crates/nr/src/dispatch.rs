//! The sequential data-structure interface node replication replicates.

/// A sequential data structure, split into read and write operations.
///
/// This is the entire contract a kernel subsystem implements to become a
/// scalable concurrent structure: NrOS "was constructed primarily with
/// sequential logic and sequential data structures, which are scaled
/// across cores and nodes using node replication". Implementations must
/// be deterministic — every replica applies the same log and must reach
/// the same state.
pub trait Dispatch {
    /// A read-only operation.
    type ReadOp: Clone + Send + std::fmt::Debug;
    /// A mutating operation.
    type WriteOp: Clone + Send + std::fmt::Debug;
    /// The response type shared by both kinds of operation.
    type Response: Clone + Send + std::fmt::Debug;

    /// Executes a read-only operation.
    fn dispatch(&self, op: Self::ReadOp) -> Self::Response;

    /// Executes a mutating operation.
    ///
    /// Must be deterministic: the same op applied to the same state
    /// yields the same state and response on every replica.
    ///
    /// The op is passed by reference because every replica replays the
    /// same log entry: handing out ownership would force one clone per
    /// replica on the apply hot path.
    fn dispatch_mut(&mut self, op: &Self::WriteOp) -> Self::Response;
}

#[cfg(test)]
pub(crate) mod test_structs {
    use super::Dispatch;
    use std::collections::BTreeMap;

    /// A counter for smoke tests.
    #[derive(Clone, Debug, Default)]
    pub struct Counter {
        pub value: u64,
    }

    #[derive(Clone, Debug)]
    pub enum CounterRead {
        Get,
    }

    #[derive(Clone, Debug)]
    pub enum CounterWrite {
        Add(u64),
    }

    impl Dispatch for Counter {
        type ReadOp = CounterRead;
        type WriteOp = CounterWrite;
        type Response = u64;

        fn dispatch(&self, _op: CounterRead) -> u64 {
            self.value
        }

        fn dispatch_mut(&mut self, op: &CounterWrite) -> u64 {
            match *op {
                CounterWrite::Add(n) => {
                    self.value += n;
                    self.value
                }
            }
        }
    }

    /// A map for richer tests.
    #[derive(Clone, Debug, Default)]
    pub struct KvMap {
        pub map: BTreeMap<u64, u64>,
    }

    #[derive(Clone, Debug)]
    pub enum KvRead {
        Get(u64),
        Len,
    }

    #[derive(Clone, Debug)]
    pub enum KvWrite {
        Put(u64, u64),
        Del(u64),
    }

    impl Dispatch for KvMap {
        type ReadOp = KvRead;
        type WriteOp = KvWrite;
        type Response = Option<u64>;

        fn dispatch(&self, op: KvRead) -> Option<u64> {
            match op {
                KvRead::Get(k) => self.map.get(&k).copied(),
                KvRead::Len => Some(self.map.len() as u64),
            }
        }

        fn dispatch_mut(&mut self, op: &KvWrite) -> Option<u64> {
            match *op {
                KvWrite::Put(k, v) => self.map.insert(k, v),
                KvWrite::Del(k) => self.map.remove(&k),
            }
        }
    }
}
