//! Cache-line padding for contended atomics.
//!
//! The shared log's tail and each replica's local tail are written by
//! different threads; without padding they share cache lines and every
//! write invalidates its neighbours. `CachePadded<T>` aligns the value
//! to 128 bytes — two 64-byte lines, covering the adjacent-line
//! prefetcher on modern x86 — which is what NR's "per-reader flag on its
//! own cache line" design requires. In-tree replacement for
//! `crossbeam_utils::CachePadded`.

/// Pads and aligns `T` to 128 bytes so it occupies its own cache line(s).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn alignment_and_size() {
        assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 128);
    }

    #[test]
    fn deref_reaches_value() {
        let p = CachePadded::new(AtomicUsize::new(7));
        p.store(9, Ordering::Relaxed);
        assert_eq!(p.load(Ordering::Relaxed), 9);
        assert_eq!(p.into_inner().into_inner(), 9);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v: Vec<CachePadded<AtomicUsize>> =
            (0..2).map(|_| CachePadded::new(AtomicUsize::new(0))).collect();
        let a = &*v[0] as *const _ as usize;
        let b = &*v[1] as *const _ as usize;
        assert!(b - a >= 128);
    }
}
