//! The shared operation log.
//!
//! A bounded circular buffer of tagged write operations. Appenders
//! reserve a contiguous range of slots with one atomic `fetch_add` (this
//! is how flat combining "batches operations from multiple threads and
//! logs them atomically"), publish each slot with a release-store of its
//! version, and replicas consume entries in order, each tracking its own
//! local tail. Garbage collection is implicit: a slot is reusable once
//! every replica's local tail has passed it.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pad::CachePadded;

/// A log entry: the operation plus its origin, so the replica that
/// combined it can route the response to the issuing thread.
#[derive(Clone, Debug)]
pub struct LogEntry<T> {
    /// The operation.
    pub op: T,
    /// Replica that appended the entry.
    pub replica: usize,
    /// Registered thread index (within the replica) that issued it.
    pub thread: usize,
}

struct Slot<T> {
    /// Logical-index-plus-one of the entry stored here; 0 = never
    /// written. A slot at ring position `p` holds logical index `i`
    /// (where `i % capacity == p`) iff `version == i + 1`.
    version: AtomicUsize,
    value: UnsafeCell<Option<LogEntry<T>>>,
}

// SAFETY: Slots are shared between appenders and consumers. The version
// protocol guarantees exclusive access during writes: a slot is written
// only by the thread that reserved its logical index via `fetch_add` on
// `tail`, and only after all replicas' local tails have passed the slot's
// previous occupant (checked in `append`); consumers read the value only
// after an acquire-load observes the matching version, which happens
// after the writer's release-store.
unsafe impl<T: Send> Sync for Slot<T> {}

/// The shared circular operation log.
pub struct Log<T> {
    slots: Vec<Slot<T>>,
    tail: CachePadded<AtomicUsize>,
    /// Per-replica local tails: the next logical index each replica will
    /// consume.
    ltails: Vec<CachePadded<AtomicUsize>>,
}

impl<T> Log<T> {
    /// Creates a log of `capacity` slots shared by `replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` or `replicas` is zero.
    pub fn new(capacity: usize, replicas: usize) -> Self {
        assert!(capacity > 0 && replicas > 0);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicUsize::new(0),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            tail: CachePadded::new(AtomicUsize::new(0)),
            ltails: (0..replicas).map(|_| CachePadded::new(AtomicUsize::new(0))).collect(),
        }
    }

    /// Log capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of replicas sharing the log.
    pub fn replicas(&self) -> usize {
        self.ltails.len()
    }

    /// The global tail (next logical index to be reserved).
    pub fn tail(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }

    /// Replica `r`'s local tail.
    pub fn ltail(&self, r: usize) -> usize {
        self.ltails[r].load(Ordering::Acquire)
    }

    /// The slowest replica's local tail — everything below is reclaimable.
    pub fn head(&self) -> usize {
        self.ltails
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            // lint: allow(panic-freedom) — `Log::new` rejects zero
            // replicas, so `ltails` is never empty.
            .expect("at least one replica")
    }

    /// Tries to reserve and publish `batch` as one contiguous range,
    /// draining the batch (entries are *moved* into the log — the hot
    /// path clones nothing).
    ///
    /// Returns `false` with the batch untouched when the ring lacks
    /// space (the caller must then help lagging replicas consume and
    /// retry — see [`crate::replicated::NodeReplicated`]).
    pub fn try_append(&self, batch: &mut Vec<LogEntry<T>>) -> bool {
        let n = batch.len();
        if n == 0 {
            return true;
        }
        debug_assert!(n <= self.capacity(), "batch larger than the log");
        // Cache the head across CAS retries: `head()` scans every
        // replica's ltail, and ltails only advance, so a stale value is
        // conservative — it can only under-report free space, never
        // admit an overwrite.
        let mut head = self.head();
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            if tail + n > head + self.capacity() {
                // Out of space against the cached head: refresh it once
                // before giving up, in case other replicas consumed.
                let fresh = self.head();
                if tail + n > fresh + self.capacity() {
                    return false;
                }
                head = fresh;
            }
            // Reserve: CAS instead of fetch_add so we never reserve
            // beyond available space (a reservation cannot be undone).
            if self
                .tail
                .compare_exchange_weak(tail, tail + n, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            for (i, entry) in batch.drain(..).enumerate() {
                let idx = tail + i;
                let slot = &self.slots[idx % self.capacity()];
                // SAFETY: We hold the unique reservation for logical
                // index `idx`, and the space check above ensured every
                // replica consumed the slot's previous entry, so no
                // reader or writer accesses this cell concurrently.
                unsafe {
                    *slot.value.get() = Some(entry);
                }
                slot.version.store(idx + 1, Ordering::Release);
            }
            return true;
        }
    }

    /// Applies every published entry between replica `r`'s local tail and
    /// the global tail, advancing the local tail.
    ///
    /// `apply` receives each entry in log order exactly once per replica.
    /// Returns the number of entries applied.
    pub fn exec<F: FnMut(&LogEntry<T>)>(&self, r: usize, mut apply: F) -> usize {
        let mut cur = self.ltails[r].load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        let mut applied = 0;
        while cur < tail {
            let slot = &self.slots[cur % self.capacity()];
            // Wait for the appender to publish this slot (it reserved
            // the range before `tail` moved past it).
            let mut backoff = crate::backoff::Backoff::new();
            while slot.version.load(Ordering::Acquire) != cur + 1 {
                backoff.wait();
            }
            // SAFETY: The version matched, so the appender's release
            // store happened-before this read; the slot cannot be
            // overwritten until *our* ltail (still at `cur`) advances.
            // lint: allow(panic-freedom) — the version protocol above
            // guarantees the appender stored `Some` before publishing.
            let entry = unsafe { (*slot.value.get()).as_ref().expect("published slot") };
            apply(entry);
            applied += 1;
            cur += 1;
            self.ltails[r].store(cur, Ordering::Release);
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(op: u64) -> LogEntry<u64> {
        LogEntry {
            op,
            replica: 0,
            thread: 0,
        }
    }

    #[test]
    fn append_then_exec_in_order() {
        let log = Log::new(8, 1);
        assert!(log.try_append(&mut vec![entry(1), entry(2), entry(3)]));
        let mut seen = Vec::new();
        let n = log.exec(0, |e| seen.push(e.op));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        // Second exec applies nothing.
        assert_eq!(log.exec(0, |_| panic!("no new entries")), 0);
    }

    #[test]
    fn every_replica_sees_every_entry_once() {
        let log = Log::new(8, 3);
        log.try_append(&mut vec![entry(10), entry(20)]);
        for r in 0..3 {
            let mut seen = Vec::new();
            log.exec(r, |e| seen.push(e.op));
            assert_eq!(seen, vec![10, 20], "replica {r}");
        }
    }

    #[test]
    fn full_log_rejects_append_until_consumed() {
        let log = Log::new(4, 2);
        assert!(log.try_append(&mut vec![entry(1), entry(2), entry(3), entry(4)]));
        let mut batch = vec![entry(5)];
        assert!(!log.try_append(&mut batch), "ring is full");
        assert_eq!(batch.len(), 1, "failed append leaves the batch intact");
        log.exec(0, |_| {});
        assert!(!log.try_append(&mut batch), "replica 1 still lags");
        log.exec(1, |_| {});
        assert!(log.try_append(&mut batch));
        assert!(batch.is_empty(), "successful append drains the batch");
        let mut seen = Vec::new();
        log.exec(0, |e| seen.push(e.op));
        assert_eq!(seen, vec![5]);
    }

    #[test]
    fn wraparound_preserves_order() {
        let log = Log::new(4, 1);
        let mut expected = Vec::new();
        let mut seen = Vec::new();
        for round in 0..10u64 {
            let mut ops = vec![entry(round * 2), entry(round * 2 + 1)];
            expected.extend(ops.iter().map(|e| e.op));
            assert!(log.try_append(&mut ops));
            log.exec(0, |e| seen.push(e.op));
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn concurrent_appenders_never_lose_entries() {
        let log = Arc::new(Log::new(64, 1));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let mut batch = vec![LogEntry {
                        op: t * 1000 + i,
                        replica: 0,
                        thread: t as usize,
                    }];
                    while !log.try_append(&mut batch) {
                        // The single replica must drain; only this test
                        // thread 0 drains, so help by spinning.
                        std::thread::yield_now();
                    }
                }
            }));
        }
        // Drain concurrently.
        let mut seen = Vec::new();
        while seen.len() < 2000 {
            log.exec(0, |e| seen.push(e.op));
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        // Per-thread order is preserved and nothing is lost.
        for t in 0..4u64 {
            let ops: Vec<u64> = seen.iter().copied().filter(|o| o / 1000 == t).collect();
            assert_eq!(ops.len(), 500);
            assert!(ops.windows(2).all(|w| w[0] < w[1]), "thread {t} reordered");
        }
    }
}
