//! A single NR replica: data copy, flat-combining contexts, apply loop.

use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::dispatch::Dispatch;
use crate::log::{Log, LogEntry};
use crate::rwlock::DistRwLock;

/// Locks a context slot, recovering from poisoning: a combiner that
/// panicked mid-slot leaves at worst a stale `Option`, which the
/// protocol tolerates (the op is simply re-collected or dropped with
/// its issuing thread).
pub(crate) fn lock_slot<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread flat-combining context: an operation slot the thread
/// fills and a response slot the combiner fills.
pub(crate) struct Context<D: Dispatch> {
    pub(crate) op: Mutex<Option<D::WriteOp>>,
    pub(crate) resp: Mutex<Option<D::Response>>,
}

impl<D: Dispatch> Default for Context<D> {
    fn default() -> Self {
        Self {
            op: Mutex::new(None),
            resp: Mutex::new(None),
        }
    }
}

/// One replica of the data structure.
///
/// The replica's data sits behind a [`DistRwLock`]; the write side doubles
/// as the flat-combining combiner lock, exactly as in NR: whoever holds
/// it collects the pending operations of all threads registered on this
/// replica, appends them to the shared log as one batch, and applies the
/// log to the local copy.
pub struct Replica<D: Dispatch> {
    pub(crate) id: usize,
    pub(crate) data: DistRwLock<D>,
    pub(crate) contexts: Vec<Context<D>>,
}

impl<D: Dispatch> Replica<D> {
    /// Creates replica `id` with `threads` context slots.
    pub fn new(id: usize, threads: usize, data: D) -> Self {
        Self {
            id,
            data: DistRwLock::new(threads, data),
            contexts: (0..threads).map(|_| Context::default()).collect(),
        }
    }

    /// Maximum number of threads registerable on this replica.
    pub fn max_threads(&self) -> usize {
        self.contexts.len()
    }

    /// Collects every pending operation into a batch of tagged entries.
    pub(crate) fn collect(&self) -> Vec<LogEntry<D::WriteOp>> {
        let mut batch = Vec::new();
        for (t, ctx) in self.contexts.iter().enumerate() {
            if let Some(op) = lock_slot(&ctx.op).take() {
                batch.push(LogEntry {
                    op,
                    replica: self.id,
                    thread: t,
                });
            }
        }
        batch
    }

    /// Applies all outstanding log entries to `data` (the caller holds
    /// this replica's write lock), routing responses for locally issued
    /// entries into their threads' contexts.
    pub(crate) fn apply_log(&self, log: &Log<D::WriteOp>, data: &mut D) -> usize {
        log.exec(self.id, |entry| {
            let resp = data.dispatch_mut(entry.op.clone());
            if entry.replica == self.id {
                *lock_slot(&self.contexts[entry.thread].resp) = Some(resp);
            }
        })
    }
}
