//! A single NR replica: data copy, flat-combining contexts, apply loop.

use crate::context::Context;
use crate::dispatch::Dispatch;
use crate::log::{Log, LogEntry};
use crate::pad::CachePadded;
use crate::rwlock::DistRwLock;

/// One replica of the data structure.
///
/// The replica's data sits behind a [`DistRwLock`]; the write side doubles
/// as the flat-combining combiner lock, exactly as in NR: whoever holds
/// it collects the pending operations of all threads registered on this
/// replica, appends them to the shared log as one batch, and applies the
/// log to the local copy.
///
/// Contexts are lock-free `SeqCell` pairs —
/// the issuing thread and the combiner exchange op and response through
/// sequence-stamped SPSC cells, so the per-operation cost is two
/// release-stores and two acquire-loads instead of four `Mutex`
/// round-trips. Each context is cache-padded: a thread spinning on its
/// response stamp shares no line with its neighbours.
pub struct Replica<D: Dispatch> {
    pub(crate) id: usize,
    pub(crate) data: DistRwLock<D>,
    pub(crate) contexts: Vec<CachePadded<Context<D>>>,
    /// Telemetry accumulator: operations appended but not yet flushed to
    /// the process-global counter (see `metrics::combine_pass`). Only
    /// the combiner — which holds this replica's write lock — touches
    /// it, so it rides the combiner's cache traffic for free. Present
    /// (and zero) even with telemetry off so the struct layout does not
    /// depend on the feature.
    // guarded-by: data
    pub(crate) pending_appends: CachePadded<core::sync::atomic::AtomicU64>,
}

impl<D: Dispatch> Replica<D> {
    /// Creates replica `id` with `threads` context slots.
    pub fn new(id: usize, threads: usize, data: D) -> Self {
        Self {
            id,
            data: DistRwLock::new(threads, data),
            contexts: (0..threads)
                .map(|_| CachePadded::new(Context::default()))
                .collect(),
            pending_appends: CachePadded::new(core::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Maximum number of threads registerable on this replica.
    pub fn max_threads(&self) -> usize {
        self.contexts.len()
    }

    /// Collects every pending operation into a batch of tagged entries.
    ///
    /// Caller contract: the caller holds this replica's write lock (it
    /// is *the* combiner), which is what makes it the unique consumer of
    /// every op cell.
    pub(crate) fn collect(&self, batch: &mut Vec<LogEntry<D::WriteOp>>) {
        for (t, ctx) in self.contexts.iter().enumerate() {
            if let Some(op) = ctx.op.take() {
                batch.push(LogEntry {
                    op,
                    replica: self.id,
                    thread: t,
                });
            }
        }
    }

    /// Applies all outstanding log entries to `data` (the caller holds
    /// this replica's write lock), routing responses for locally issued
    /// entries into their threads' contexts in the same pass — each op
    /// is dispatched by reference straight off the log, with no clone
    /// and no per-slot lock.
    pub(crate) fn apply_log(&self, log: &Log<D::WriteOp>, data: &mut D) -> usize {
        log.exec(self.id, |entry| {
            let resp = data.dispatch_mut(&entry.op);
            if entry.replica == self.id {
                self.contexts[entry.thread].resp.publish(resp);
            }
        })
    }
}
