//! Spin-then-yield backoff for waiting loops.
//!
//! On a many-core machine a short spin is the right way to wait for a
//! combiner; on an oversubscribed or single-core host (like CI
//! containers) pure spinning can burn whole scheduler quanta while the
//! lock holder is preempted. `Backoff` spins briefly, then yields to the
//! OS scheduler, so the algorithms behave well in both environments.

/// Exponential spin-then-yield waiter.
#[derive(Default)]
pub struct Backoff {
    step: u32,
}

/// Spin iterations before the first yield (2^SPIN_LIMIT).
const SPIN_LIMIT: u32 = 6;

impl Backoff {
    /// Creates a fresh backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Waits one round: spins with exponentially increasing length, then
    /// switches to `yield_now` once the spin budget is exhausted.
    pub fn wait(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yield_without_panicking() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.wait();
        }
        assert!(b.step > SPIN_LIMIT);
    }
}
