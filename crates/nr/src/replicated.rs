//! The top-level `NodeReplicated<D>` API.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::dispatch::Dispatch;
use crate::log::Log;
use crate::replica::Replica;

/// A registered thread's handle: which replica it belongs to and which
/// context slot it owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadToken {
    /// Replica index.
    pub replica: usize,
    /// Context slot within the replica.
    pub thread: usize,
}

/// A sequential data structure replicated across NUMA nodes with a
/// shared operation log — the concurrency mechanism the whole kernel is
/// built on.
///
/// # Examples
///
/// ```
/// use veros_nr::{Dispatch, NodeReplicated};
///
/// #[derive(Clone, Default)]
/// struct Counter(u64);
///
/// impl Dispatch for Counter {
///     type ReadOp = ();
///     type WriteOp = u64;
///     type Response = u64;
///     fn dispatch(&self, _: ()) -> u64 { self.0 }
///     fn dispatch_mut(&mut self, n: &u64) -> u64 { self.0 += n; self.0 }
/// }
///
/// let nr = NodeReplicated::new(2, 4, 32, Counter::default);
/// let t = nr.register(0).unwrap();
/// nr.execute_mut(5, t);
/// assert_eq!(nr.execute((), t), 5);
/// ```
pub struct NodeReplicated<D: Dispatch> {
    log: Log<D::WriteOp>,
    replicas: Vec<Replica<D>>,
    registered: Vec<AtomicUsize>,
}

impl<D: Dispatch> NodeReplicated<D> {
    /// Creates `replicas` replicas, each admitting `threads_per_replica`
    /// threads, sharing a log of `log_capacity` entries. `factory` builds
    /// each replica's initial (identical) state.
    pub fn new(
        replicas: usize,
        threads_per_replica: usize,
        log_capacity: usize,
        factory: impl Fn() -> D,
    ) -> Self {
        assert!(replicas > 0 && threads_per_replica > 0);
        Self {
            log: Log::new(log_capacity, replicas),
            replicas: (0..replicas)
                .map(|id| Replica::new(id, threads_per_replica, factory()))
                .collect(),
            registered: (0..replicas).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Registers the calling thread on `replica`, granting it a context
    /// slot. Returns `None` when the replica is fully subscribed.
    ///
    /// Claims are a CAS loop rather than a blind `fetch_add`: an
    /// unconditional increment on a full replica would burn a slot
    /// forever, so repeated attempts against a full replica could leak
    /// capacity that a later deregistration scheme can never recover.
    pub fn register(&self, replica: usize) -> Option<ThreadToken> {
        let max = self.replicas[replica].max_threads();
        // lint: allow(atomics-ordering) — slot allocation only needs
        // atomicity for uniqueness of the claimed index; no other
        // memory is published through this counter (each context cell
        // carries its own acquire/release protocol).
        let mut slot = self.registered[replica].load(Ordering::Relaxed);
        loop {
            if slot >= max {
                return None;
            }
            let claim = self.registered[replica].compare_exchange_weak(
                slot,
                slot + 1,
                // lint: allow(atomics-ordering) — same argument: the CAS
                // claims an index, nothing else is ordered by it.
                Ordering::Relaxed,
                // lint: allow(atomics-ordering) — failure path re-reads
                // the counter only to retry the claim.
                Ordering::Relaxed,
            );
            match claim {
                Ok(_) => {
                    return Some(ThreadToken {
                        replica,
                        thread: slot,
                    })
                }
                Err(current) => slot = current,
            }
        }
    }

    /// Executes a mutating operation with linearizable semantics.
    ///
    /// The calling thread parks its operation in its context slot; the
    /// current combiner (possibly this thread) batches all pending
    /// operations of the replica, appends them to the log atomically, and
    /// applies the log. The response is routed back through the context.
    pub fn execute_mut(&self, op: D::WriteOp, tkn: ThreadToken) -> D::Response {
        let replica = &self.replicas[tkn.replica];
        debug_assert!(tkn.thread < replica.max_threads());
        let ctx = &replica.contexts[tkn.thread];
        // Sole producer of this op cell (the token is this thread's) and
        // the cell is empty (we consumed the previous response before
        // returning from the last call) — `publish`'s contract holds.
        ctx.op.publish(op);
        let mut backoff = crate::backoff::Backoff::new();
        loop {
            if let Some(resp) = ctx.resp.take() {
                return resp;
            }
            if let Some(mut guard) = replica.data.try_write() {
                self.combine(tkn.replica, &mut guard);
                drop(guard);
                if let Some(resp) = ctx.resp.take() {
                    return resp;
                }
                // Our op was collected by an earlier combiner whose apply
                // pass had already passed our entry's position — loop and
                // wait for that combiner to deposit the response.
            }
            backoff.wait();
        }
    }

    /// Executes a read-only operation with linearizable semantics: the
    /// replica is brought up to date with the log tail observed at
    /// invocation, then read under the distributed read lock.
    pub fn execute(&self, op: D::ReadOp, tkn: ThreadToken) -> D::Response {
        let replica = &self.replicas[tkn.replica];
        let t_tail = self.log.tail();
        let mut backoff = crate::backoff::Backoff::new();
        loop {
            if self.log.ltail(tkn.replica) >= t_tail {
                let guard = replica.data.read(tkn.thread);
                // ltail only advances, so the state we read contains at
                // least everything up to `t_tail`; mutations require the
                // write lock, which our read guard excludes.
                return guard.dispatch(op);
            }
            if let Some(mut guard) = replica.data.try_write() {
                replica.apply_log(&self.log, &mut guard);
            } else {
                backoff.wait();
            }
        }
    }

    /// Brings the caller's replica up to date with the log (useful before
    /// dropping or inspecting state in tests).
    pub fn sync(&self, tkn: ThreadToken) {
        let replica = &self.replicas[tkn.replica];
        let mut backoff = crate::backoff::Backoff::new();
        loop {
            if self.log.ltail(tkn.replica) >= self.log.tail() {
                return;
            }
            if let Some(mut guard) = replica.data.try_write() {
                replica.apply_log(&self.log, &mut guard);
                return;
            }
            backoff.wait();
        }
    }

    /// The combiner: collect, append (helping lagging replicas when the
    /// log is full), apply. Ops move from context cells into the batch
    /// and from the batch into the log — no clones anywhere on the path.
    fn combine(&self, replica_idx: usize, data: &mut D) {
        let replica = &self.replicas[replica_idx];
        let mut batch = Vec::with_capacity(replica.max_threads());
        replica.collect(&mut batch);
        let collected = batch.len() as u64;
        if !batch.is_empty() {
            while !self.log.try_append(&mut batch) {
                crate::metrics::APPEND_RETRIES.inc();
                // The ring is full: consume on our own replica first,
                // then help lagging remote replicas drain.
                replica.apply_log(&self.log, data);
                self.help_lagging(replica_idx);
            }
        }
        // Instrumented after the append so the accumulator's L1 traffic
        // overlaps the append's store-buffer drain; the lag closure is
        // only evaluated on a flush, pre-apply (the interesting lag).
        crate::metrics::combine_pass(&replica.pending_appends, collected, || {
            self.log.tail().saturating_sub(self.log.ltail(replica_idx)) as u64
        });
        replica.apply_log(&self.log, data);
    }

    /// Advances lagging replicas that nobody else is advancing, so a full
    /// log cannot wedge the appender (replicas with no active threads
    /// would otherwise never consume).
    fn help_lagging(&self, skip: usize) {
        let tail = self.log.tail();
        for (i, other) in self.replicas.iter().enumerate() {
            if i == skip || self.log.ltail(i) >= tail {
                continue;
            }
            if let Some(mut guard) = other.data.try_write() {
                other.apply_log(&self.log, &mut guard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::test_structs::{Counter, CounterRead, CounterWrite, KvMap, KvRead, KvWrite};
    use std::sync::Arc;

    #[test]
    fn single_thread_read_write() {
        let nr = NodeReplicated::new(1, 1, 16, Counter::default);
        let t = nr.register(0).unwrap();
        assert_eq!(nr.execute_mut(CounterWrite::Add(3), t), 3);
        assert_eq!(nr.execute_mut(CounterWrite::Add(4), t), 7);
        assert_eq!(nr.execute(CounterRead::Get, t), 7);
    }

    #[test]
    fn registration_respects_capacity() {
        let nr = NodeReplicated::new(2, 2, 16, Counter::default);
        assert!(nr.register(0).is_some());
        assert!(nr.register(0).is_some());
        assert!(nr.register(0).is_none());
        assert!(nr.register(1).is_some());
    }

    #[test]
    fn replicas_converge() {
        let nr = NodeReplicated::new(3, 1, 16, Counter::default);
        let t0 = nr.register(0).unwrap();
        let t1 = nr.register(1).unwrap();
        let t2 = nr.register(2).unwrap();
        nr.execute_mut(CounterWrite::Add(10), t0);
        nr.execute_mut(CounterWrite::Add(5), t1);
        // Reads on every replica observe both writes.
        assert_eq!(nr.execute(CounterRead::Get, t0), 15);
        assert_eq!(nr.execute(CounterRead::Get, t1), 15);
        assert_eq!(nr.execute(CounterRead::Get, t2), 15);
    }

    #[test]
    fn log_wraparound_under_load() {
        // Log much smaller than the number of operations.
        let nr = NodeReplicated::new(2, 1, 8, Counter::default);
        let t0 = nr.register(0).unwrap();
        let t1 = nr.register(1).unwrap();
        for _ in 0..100 {
            nr.execute_mut(CounterWrite::Add(1), t0);
        }
        assert_eq!(nr.execute(CounterRead::Get, t1), 100);
    }

    #[test]
    fn concurrent_writers_then_read() {
        let nr = Arc::new(NodeReplicated::new(2, 5, 64, Counter::default));
        let mut handles = Vec::new();
        for i in 0..8usize {
            let nr = Arc::clone(&nr);
            handles.push(std::thread::spawn(move || {
                let t = nr.register(i % 2).expect("slot");
                for _ in 0..500 {
                    nr.execute_mut(CounterWrite::Add(1), t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = nr.register(0).expect("spare slot");
        assert_eq!(nr.execute(CounterRead::Get, t), 4000);
        let t1 = nr.register(1).expect("spare slot");
        assert_eq!(nr.execute(CounterRead::Get, t1), 4000);
    }

    #[test]
    fn reads_are_fresh_across_replicas() {
        // A write on replica 0 must be visible to an immediately
        // following read on replica 1 (linearizable, not eventually
        // consistent).
        let nr = NodeReplicated::new(2, 1, 32, KvMap::default);
        let t0 = nr.register(0).unwrap();
        let t1 = nr.register(1).unwrap();
        for k in 0..50u64 {
            nr.execute_mut(KvWrite::Put(k, k * 10), t0);
            assert_eq!(nr.execute(KvRead::Get(k), t1), Some(k * 10));
        }
        assert_eq!(nr.execute(KvRead::Len, t1), Some(50));
        nr.execute_mut(KvWrite::Del(7), t1);
        assert_eq!(nr.execute(KvRead::Get(7), t0), None);
    }

    #[test]
    fn mixed_read_write_stress() {
        let nr = Arc::new(NodeReplicated::new(2, 3, 32, KvMap::default));
        let mut handles = Vec::new();
        for i in 0..6usize {
            let nr = Arc::clone(&nr);
            handles.push(std::thread::spawn(move || {
                let t = nr.register(i % 2).expect("slot");
                for j in 0..300u64 {
                    if j % 3 == 0 {
                        nr.execute_mut(KvWrite::Put(i as u64 * 1000 + j, j), t);
                    } else {
                        // Own writes must always be visible.
                        let k = i as u64 * 1000 + (j - j % 3);
                        assert_eq!(nr.execute(KvRead::Get(k), t), Some(j - j % 3));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
