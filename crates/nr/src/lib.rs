//! Node replication — NrOS's concurrency backbone, reproduced.
//!
//! "NR replicates sequential code and its data structures on each NUMA
//! node and maintains consistency through an operation log. It achieves
//! read-concurrency with a readers-writer lock and write-concurrency
//! through flat combining, which batches operations from multiple threads
//! and logs them atomically" (Section 4.1).
//!
//! The pieces, mirroring the open-source `node-replication` crate the
//! paper builds on:
//!
//! * [`Dispatch`] — the sequential data structure interface: read
//!   operations against `&self`, write operations against `&mut self`.
//! * [`Log`] — the shared circular operation log with per-replica
//!   consumption tails and tail-min garbage collection.
//! * [`DistRwLock`] — the distributed readers-writer lock guarding each
//!   replica (per-reader flags, so uncontended readers never write to
//!   shared cache lines).
//! * [`Replica`] — one replica: a copy of the data structure, a flat
//!   combining context per registered thread, and the apply loop.
//! * [`NodeReplicated`] — the top-level API: register threads, then
//!   `execute` (read) / `execute_mut` (write) with linearizable
//!   semantics.
//!
//! The correctness claim — a sequential structure replicated with NR
//! remains linearizable — is what IronSync proved and what this
//! workspace checks dynamically with the Wing–Gong checker in
//! `veros-spec` (see this crate's `tests` and `veros-core`'s
//! linearizability VCs).
//!
//! # Telemetry
//!
//! With the `telemetry` cargo feature (on by default) the combiner
//! maintains the instruments in [`metrics`] — log-append and retry
//! counters plus sampled batch-size and replay-lag histograms. Reporting
//! binaries call [`metrics::export`] to register them under the `nr.`
//! prefix; see `OBSERVABILITY.md` for names, units, and the snapshot
//! schema. Disabling the feature compiles every instrument to a no-op.

pub mod backoff;
pub(crate) mod context;
pub mod dispatch;
pub mod log;
pub mod metrics;
pub mod pad;
pub mod replica;
pub mod replicated;
pub mod rwlock;

pub use dispatch::Dispatch;
pub use log::{Log, LogEntry};
pub use replica::Replica;
pub use replicated::{NodeReplicated, ThreadToken};
pub use rwlock::DistRwLock;
