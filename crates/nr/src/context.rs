//! Lock-free flat-combining context cells.
//!
//! Each registered thread owns one [`Context`]: an operation cell the
//! thread fills and the combiner drains, and a response cell filled the
//! other way around. Both are the same primitive, [`SeqCell`] — a
//! single-producer/single-consumer slot published with a seqlock-style
//! stamp (even = empty, odd = full) instead of a `Mutex<Option<_>>`.
//!
//! Why SPSC is enough: the operation cell's producer is the owning
//! thread (it never deposits a second op before consuming the response
//! to the first), and its consumer is *the* combiner — combiners are
//! serialized by the replica's write lock, so at most one runs at a
//! time and lock handoff orders their accesses. The response cell is
//! the mirror image. The full happens-before cycle is:
//!
//! 1. thread writes op payload, release-stores odd stamp;
//! 2. combiner acquire-loads odd stamp, takes the op, release-stores
//!    even;
//! 3. combiner writes response payload, release-stores odd stamp on the
//!    response cell;
//! 4. thread acquire-loads it, takes the response, release-stores even
//!    — and only after that may deposit its next op, so step 1 of the
//!    next round happens-after step 2 of this one.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::dispatch::Dispatch;

/// A single-producer/single-consumer slot with a seqlock-style stamp:
/// even sequence = empty, odd = full. `publish` transitions even→odd,
/// `take` odd→even.
pub(crate) struct SeqCell<T> {
    seq: AtomicUsize,
    // protocol: seqlock(seq)
    val: UnsafeCell<Option<T>>,
}

// SAFETY: The stamp protocol makes payload accesses mutually exclusive:
// the producer writes `val` only while the stamp is even and the
// consumer reads it only after acquire-loading an odd stamp (ordered
// after the producer's release-store). The roles themselves are
// single-threaded by construction — the op cell's producer is the one
// owning thread and its consumer the (write-lock-serialized) combiner,
// and symmetrically for the response cell — so no same-role race
// exists either.
unsafe impl<T: Send> Sync for SeqCell<T> {}

impl<T> Default for SeqCell<T> {
    fn default() -> Self {
        Self {
            seq: AtomicUsize::new(0),
            val: UnsafeCell::new(None),
        }
    }
}

impl<T> SeqCell<T> {
    /// Publishes `v` into the (empty) cell.
    ///
    /// Caller contract: the calling thread is the cell's unique producer
    /// and the cell is empty — the protocol above guarantees both, and
    /// the debug assert checks the stamp actually is even.
    pub(crate) fn publish(&self, v: T) {
        // lint: allow(atomics-ordering) — this load carries no payload:
        // the producer's right to write is established by the protocol
        // (the consumer's even-stamp store from the previous round
        // happens-before this call via the *other* cell's
        // release/acquire chain, step 4 in the module docs), so only
        // the stamp's value is needed, not an ordering edge.
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(s.is_multiple_of(2), "publish into a full cell");
        // SAFETY: Stamp is even, so the (unique, serialized) consumer
        // will not touch `val` until the odd store below; we are the
        // unique producer, so no other writer exists.
        unsafe {
            *self.val.get() = Some(v);
        }
        self.seq.store(s + 1, Ordering::Release);
    }

    /// Takes the published value, if any.
    ///
    /// Caller contract: the calling thread is the cell's unique consumer
    /// (for op cells, the write-lock-holding combiner).
    pub(crate) fn take(&self) -> Option<T> {
        let s = self.seq.load(Ordering::Acquire);
        if s.is_multiple_of(2) {
            return None;
        }
        // SAFETY: The acquire load saw an odd stamp, so the producer's
        // payload write happened-before this read; the producer will
        // not write again until it observes our even store below.
        let v = unsafe { (*self.val.get()).take() };
        debug_assert!(v.is_some(), "odd stamp over an empty cell");
        self.seq.store(s + 1, Ordering::Release);
        v
    }

    /// Whether a value is currently published (a stamp probe; the value
    /// may be gone by the time the caller acts, which the protocol's
    /// single-consumer rule makes harmless). Production code drives the
    /// cells through `publish`/`take` alone; the probe exists for the
    /// protocol tests.
    #[cfg(test)]
    pub(crate) fn is_full(&self) -> bool {
        self.seq.load(Ordering::Acquire) % 2 == 1
    }
}

/// Per-thread flat-combining context: an operation cell the thread
/// fills and a response cell the combiner fills.
pub(crate) struct Context<D: Dispatch> {
    pub(crate) op: SeqCell<D::WriteOp>,
    pub(crate) resp: SeqCell<D::Response>,
}

// Manual impl: a derive would demand `D: Default`, which the cells do
// not need.
impl<D: Dispatch> Default for Context<D> {
    fn default() -> Self {
        Self {
            op: SeqCell::default(),
            resp: SeqCell::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_take_round_trip() {
        let c: SeqCell<u64> = SeqCell::default();
        assert!(!c.is_full());
        assert_eq!(c.take(), None);
        c.publish(7);
        assert!(c.is_full());
        assert_eq!(c.take(), Some(7));
        assert!(!c.is_full());
        assert_eq!(c.take(), None);
        // Reusable after a full cycle.
        c.publish(8);
        assert_eq!(c.take(), Some(8));
    }

    #[test]
    fn ping_pong_across_threads() {
        use std::sync::Arc;
        // Miri explores every interleaving orders of magnitude slower;
        // a short run still covers the stamp protocol's transitions.
        #[cfg(miri)]
        const ROUNDS: u64 = 200;
        #[cfg(not(miri))]
        const ROUNDS: u64 = 10_000;
        let op: Arc<SeqCell<u64>> = Arc::new(SeqCell::default());
        let resp: Arc<SeqCell<u64>> = Arc::new(SeqCell::default());
        let (op2, resp2) = (Arc::clone(&op), Arc::clone(&resp));
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..ROUNDS {
                loop {
                    if let Some(v) = op2.take() {
                        sum += v;
                        resp2.publish(sum);
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
            sum
        });
        let mut expect = 0u64;
        for i in 0..ROUNDS {
            op.publish(i);
            expect += i;
            loop {
                if let Some(r) = resp.take() {
                    assert_eq!(r, expect, "response for op {i}");
                    break;
                }
                std::hint::spin_loop();
            }
        }
        assert_eq!(consumer.join().unwrap(), expect);
    }
}
