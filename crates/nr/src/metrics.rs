//! Telemetry instruments for the node-replication hot path.
//!
//! Everything here is a process-global instrument backed by
//! `veros-telemetry`; with the `telemetry` feature disabled all of them
//! compile to no-ops and `export` registers nothing that can observe
//! anything. The combiner is the only NR code that touches these, and
//! its per-pass cost is one uncontended load + store on a replica-local
//! accumulator: the shared counter and histograms are only touched once
//! [`FLUSH_OPS`] operations have piled up, in an outlined cold flush —
//! see `DESIGN.md` §10 for the overhead argument.

use std::sync::atomic::AtomicU64;
#[cfg(feature = "telemetry")]
use std::sync::atomic::Ordering;

use veros_telemetry::{Counter, Histogram, Registry};

/// Operations appended to the shared log (batch sizes summed). Flushed
/// from a per-replica accumulator once [`FLUSH_OPS`] operations have
/// piled up, so at snapshot time up to `FLUSH_OPS - 1` appends per
/// replica may not be reported yet; everything flushed is a true lower
/// bound.
pub static LOG_APPENDS: Counter = Counter::new();

/// Failed `try_append` attempts (the log ring was full and the combiner
/// had to consume / help lagging replicas before retrying). Exact: the
/// retry path is already slow, so it pays the counter bump directly.
pub static APPEND_RETRIES: Counter = Counter::new();

/// Flat-combining batch size distribution (operations per combine),
/// sampled once per [`FLUSH_OPS`]-operation flush to keep the
/// combiner's instrumentation cost bounded.
pub static COMBINER_BATCH: Histogram = Histogram::new();

/// Replay lag observed by combiners: log tail minus the combining
/// replica's local tail (entries the replica still has to apply),
/// sampled once per flush like [`COMBINER_BATCH`].
pub static REPLAY_LAG: Histogram = Histogram::new();

/// Operations a replica accumulates before its combiner flushes the
/// shared instruments.
pub const FLUSH_OPS: u64 = 64;

/// Records one combiner pass that collected `collected` operations,
/// accumulating into the replica's `pending` slot.
///
/// `pending` is combiner-exclusive (the caller is *the* combiner for
/// its replica), so the fast path is one uncontended L1 load + store —
/// measured cheaper than a thread-local slot, which cost ~4ns/op on
/// the single-thread sweep (DESIGN.md §10). Once [`FLUSH_OPS`]
/// operations have piled up, the accumulated count lands in
/// [`LOG_APPENDS`] and the batch-size and replay-lag histograms get one
/// sample; `lag` is only evaluated then, so callers can defer the
/// (shared, possibly contended) tail loads behind the closure. A no-op
/// without the `telemetry` feature.
#[inline]
pub fn combine_pass(pending: &AtomicU64, collected: u64, lag: impl FnOnce() -> u64) {
    #[cfg(feature = "telemetry")]
    {
        // lint: allow(atomics-ordering) — pending is combiner-exclusive
        // (guarded by the replica's combiner lock); no thread ever reads
        // another thread's in-flight value, so Relaxed suffices.
        let total = pending.load(Ordering::Relaxed) + collected;
        if total >= FLUSH_OPS {
            // lint: allow(atomics-ordering) — same combiner-exclusive slot.
            pending.store(0, Ordering::Relaxed);
            flush_combine(total, collected, lag());
        } else {
            // lint: allow(atomics-ordering) — same combiner-exclusive slot.
            pending.store(total, Ordering::Relaxed);
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (pending, collected, &lag);
    }
}

/// The once-per-threshold flush, outlined and marked cold so the
/// shared-instrument code never sits inside (and never bloats) the
/// combiner's inlined fast path.
#[cfg(feature = "telemetry")]
#[cold]
#[inline(never)]
fn flush_combine(pending: u64, collected: u64, lag: u64) {
    LOG_APPENDS.add(pending);
    COMBINER_BATCH.record(collected);
    REPLAY_LAG.record(lag);
}

/// Registers every NR instrument with `reg` under the `nr.` prefix.
pub fn export(reg: &mut Registry) {
    reg.counter("nr.log.appends", "ops", &LOG_APPENDS);
    reg.counter("nr.log.append_retries", "retries", &APPEND_RETRIES);
    reg.histogram("nr.combiner.batch", "ops/combine", &COMBINER_BATCH);
    reg.histogram("nr.replica.replay_lag", "log entries", &REPLAY_LAG);
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn combine_pass_flushes_at_the_op_threshold() {
        let pending = AtomicU64::new(0);
        let before = LOG_APPENDS.get();
        let mut lag_evals = 0u32;
        for _ in 0..(2 * FLUSH_OPS) {
            combine_pass(&pending, 1, || {
                lag_evals += 1;
                0
            });
        }
        // 128 single-op passes: the accumulator hits the threshold
        // exactly twice and ends drained. `>=` on the counter because
        // tests on other threads may be driving real combiners into the
        // same process-global instrument.
        assert!(LOG_APPENDS.get() - before >= 2 * FLUSH_OPS);
        assert_eq!(lag_evals, 2);
        assert_eq!(pending.load(Ordering::Relaxed), 0);
    }
}
