//! Fault schedules: seeded *enumeration* of adversarial environments.
//!
//! The end-to-end invariants in `INVARIANTS.md` are not checked against a
//! single lucky seed — each invariant VC sweeps a deterministic family of
//! [`FaultSchedule`]s produced by [`FaultSchedule::sweep`]. A schedule
//! bundles every fault axis the stack knows how to inject:
//!
//! * **wire faults** ([`WireFaults`]): packet loss, duplication and
//!   reordering degrees for `net::sim`;
//! * **a crash point** (`crash_milli`): *where* in the run the crash
//!   lands, expressed as a fraction of a family-defined extent (cached
//!   disk writes for the journal, consumed SQEs for the ring, acked ops
//!   for the blockstore) so one schedule shape covers every subsystem;
//! * **a torn write** (`torn_bytes`): how many bytes of the first
//!   post-crash-boundary sector write still reach the platter.
//!
//! The sweep walks a small lattice — crash tier × wire tier × torn/clean
//! — with seed-derived jitter, so `sweep(f, s, n)` is reproducible while
//! still covering the corners (crash-at-zero, crash-at-end, hostile wire,
//! torn commit record) for every `n ≥ 8`.

use crate::rng::{fnv1a, SpecRng};

/// Wire fault degrees for a simulated network, decoupled from
/// `net::sim::FaultPlan` so schedule enumeration lives in the zero-dep
/// spec crate. `loss`/`duplicate` are probabilities `(num, denom)`;
/// `(0, 1)` disables the axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireFaults {
    /// Per-frame drop probability.
    pub loss: (u32, u32),
    /// Per-frame duplication probability.
    pub duplicate: (u32, u32),
    /// Whether in-flight frames may be delivered out of order.
    pub reorder: bool,
}

impl WireFaults {
    /// A perfect wire: no loss, no duplication, in-order.
    pub fn reliable() -> Self {
        Self { loss: (0, 1), duplicate: (0, 1), reorder: false }
    }

    /// A mildly faulty wire: 1/20 loss, 1/40 duplication, in-order.
    pub fn mild() -> Self {
        Self { loss: (1, 20), duplicate: (1, 40), reorder: false }
    }

    /// An adversarial wire: 1/5 loss, 1/10 duplication, reordering.
    pub fn hostile() -> Self {
        Self { loss: (1, 5), duplicate: (1, 10), reorder: true }
    }

    /// True if any frame can be dropped.
    pub fn lossy(&self) -> bool {
        self.loss.0 > 0
    }
}

/// One point in a fault-schedule sweep. Families interpret the fields
/// they care about and ignore the rest (a pure-memory invariant ignores
/// `wire`; a crash-free transport invariant ignores `crash_milli`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Position of this schedule in its sweep (0-based).
    pub ordinal: usize,
    /// Derived RNG seed: drives workload shapes and `net::sim` frames.
    pub seed: u64,
    /// Wire behaviour for any network segment in the run.
    pub wire: WireFaults,
    /// Crash position in thousandths of the family's extent
    /// (0 = crash before anything volatile survives, 1000 = crash after
    /// everything). The unit is family-defined; see [`Self::crash_point`].
    pub crash_milli: u32,
    /// `Some(n)`: the first write past the crash boundary lands torn,
    /// with only its first `n` bytes reaching stable storage.
    pub torn_bytes: Option<usize>,
    /// Multi-node victim selector: which member of a replication chain
    /// this schedule kills, mapped onto a concrete chain by
    /// [`Self::victim_of`]. The sweep walks it with the ordinal, so any
    /// `chain_len` consecutive schedules kill every chain position at
    /// least once — "loss of any single chain node" is covered, not
    /// sampled.
    pub victim: u32,
}

impl FaultSchedule {
    /// Maps the schedule's crash fraction onto a concrete extent
    /// (`0..=extent`), e.g. the number of cached disk writes to keep.
    pub fn crash_point(&self, extent: usize) -> usize {
        (extent * self.crash_milli as usize) / 1000
    }

    /// Maps the victim selector onto a chain of `chain_len` replicas:
    /// the position (0 = head, `chain_len - 1` = tail) this schedule's
    /// crash should take down.
    pub fn victim_of(&self, chain_len: usize) -> usize {
        self.victim as usize % chain_len.max(1)
    }

    /// Deterministically enumerates `count` schedules for an invariant
    /// family. Equal `(family, family_seed, count)` always yields the
    /// same vector; distinct families get decorrelated jitter.
    pub fn sweep(family: &str, family_seed: u64, count: usize) -> Vec<FaultSchedule> {
        let mut rng = SpecRng::seeded(fnv1a(family.as_bytes()) ^ family_seed.rotate_left(17));
        const CRASH_TIERS: [u32; 5] = [0, 250, 500, 750, 1000];
        (0..count)
            .map(|ordinal| {
                let wire = match ordinal % 4 {
                    0 => WireFaults::reliable(),
                    1 => WireFaults::mild(),
                    // Two hostile tiers out of four: the adversarial wire
                    // is where transport invariants earn their keep.
                    _ => WireFaults::hostile(),
                };
                let base = CRASH_TIERS[ordinal % CRASH_TIERS.len()];
                // Jitter interior tiers by up to ±125‰ so sweeps don't
                // only probe round fractions; keep the 0/1000 corners
                // exact (crash-before-anything and crash-after-all are
                // the boundary cases every family must include).
                let crash_milli = if base == 0 || base == 1000 {
                    base
                } else {
                    base - 125 + rng.below(251) as u32
                };
                let torn_bytes = if ordinal % 3 == 2 {
                    Some(1 + rng.index(511))
                } else {
                    None
                };
                FaultSchedule {
                    ordinal,
                    seed: rng.next_u64(),
                    wire,
                    crash_milli,
                    torn_bytes,
                    victim: ordinal as u32,
                }
            })
            .collect()
    }

    /// Human-readable one-liner for violation messages.
    pub fn describe(&self) -> String {
        let torn = match self.torn_bytes {
            Some(n) => format!(", torn {n}B"),
            None => String::new(),
        };
        format!(
            "schedule #{} (seed {:#018x}, loss {}/{}, dup {}/{}, reorder {}, crash @{}‰{}, victim {})",
            self.ordinal,
            self.seed,
            self.wire.loss.0,
            self.wire.loss.1,
            self.wire.duplicate.0,
            self.wire.duplicate.1,
            self.wire.reorder,
            self.crash_milli,
            torn,
            self.victim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let a = FaultSchedule::sweep("durability", 3, 12);
        let b = FaultSchedule::sweep("durability", 3, 12);
        assert_eq!(a, b);
        assert_ne!(
            a,
            FaultSchedule::sweep("fs_journal", 3, 12),
            "families must decorrelate"
        );
        assert_ne!(
            a,
            FaultSchedule::sweep("durability", 4, 12),
            "seeds must decorrelate"
        );
    }

    #[test]
    fn sweep_of_eight_covers_the_lattice_corners() {
        let s = FaultSchedule::sweep("any", 0, 8);
        assert_eq!(s.len(), 8);
        assert!(s.iter().any(|f| f.crash_milli == 0), "crash-at-zero corner");
        assert!(s.iter().any(|f| f.crash_milli >= 750), "late-crash corner");
        assert!(s.iter().any(|f| f.wire == WireFaults::reliable()));
        assert!(s.iter().any(|f| f.wire == WireFaults::hostile()));
        assert!(s.iter().any(|f| f.torn_bytes.is_some()), "torn-write corner");
        assert!(s.iter().any(|f| f.torn_bytes.is_none()));
    }

    #[test]
    fn torn_bytes_stay_inside_a_sector() {
        for f in FaultSchedule::sweep("bounds", 9, 64) {
            if let Some(n) = f.torn_bytes {
                assert!((1..512).contains(&n), "{}", f.describe());
            }
            assert!(f.crash_milli <= 1000);
            assert!(f.crash_point(100) <= 100);
        }
    }

    #[test]
    fn victims_cover_every_chain_position() {
        // Any chain the stack uses (M ≤ 8) has every position killed at
        // least once by an 8-schedule sweep, and every window of M
        // consecutive ordinals covers all M positions.
        let s = FaultSchedule::sweep("victims", 5, 8);
        for chain_len in 1..=8usize {
            let hit: std::collections::BTreeSet<usize> =
                s.iter().take(chain_len).map(|f| f.victim_of(chain_len)).collect();
            assert_eq!(hit.len(), chain_len, "chain of {chain_len}");
        }
        // Degenerate chain length never panics.
        assert_eq!(s[3].victim_of(0), 0);
    }

    #[test]
    fn crash_point_maps_the_corners_exactly() {
        let s = FaultSchedule::sweep("corners", 1, 10);
        let zero = s.iter().find(|f| f.crash_milli == 0).unwrap();
        assert_eq!(zero.crash_point(37), 0);
        let full = s.iter().find(|f| f.crash_milli == 1000).unwrap();
        assert_eq!(full.crash_point(37), 37);
    }

    #[test]
    fn describe_mentions_the_fault_axes() {
        let s = &FaultSchedule::sweep("desc", 2, 3)[2];
        let d = s.describe();
        assert!(d.contains("seed"), "{d}");
        assert!(d.contains("crash"), "{d}");
        assert!(d.contains("torn"), "{d}");
    }
}
