//! Forward-simulation refinement checking.
//!
//! The paper's correctness theorem (Section 4.4) is a refinement: "for
//! every behavior of the hardware execution there exists a corresponding
//! execution of the abstract model with the same behavior". The standard
//! proof technique — and the one used by the page table prototype — is a
//! forward simulation: an abstraction function from concrete to abstract
//! states such that every concrete step corresponds to an abstract step
//! (or a stutter, for internal steps that do not change the abstract
//! view).
//!
//! This module checks forward simulation executably over the reachable
//! states of a finitized concrete machine.

use std::fmt::Debug;

use crate::explorer::{ExploreLimits, ExploreStats, Explorer};
use crate::state_machine::StateMachine;

/// A refinement mapping from a concrete machine `C` to an abstract
/// machine `A`.
pub trait RefinementMap {
    /// The concrete (implementation-side) machine.
    type Concrete: StateMachine;
    /// The abstract (spec-side) machine.
    type Abstract: StateMachine;

    /// The abstraction function (the paper's `view()`).
    fn abstraction(
        &self,
        s: &<Self::Concrete as StateMachine>::State,
    ) -> <Self::Abstract as StateMachine>::State;

    /// Maps a concrete action to the abstract action it implements.
    ///
    /// Returning `None` declares the step internal: the abstraction of
    /// the post-state must then equal the abstraction of the pre-state
    /// (a stutter step).
    fn abstract_action(
        &self,
        pre: &<Self::Concrete as StateMachine>::State,
        action: &<Self::Concrete as StateMachine>::Action,
    ) -> Option<<Self::Abstract as StateMachine>::Action>;
}

/// Why a refinement check failed.
#[derive(Debug)]
pub enum RefinementError {
    /// An initial concrete state abstracts to a state that is not an
    /// abstract initial state.
    BadInit {
        /// Rendering of the concrete initial state.
        concrete: String,
        /// Rendering of its abstraction.
        abstracted: String,
    },
    /// A stutter step changed the abstract view.
    StutterChangedView {
        /// Rendering of the concrete pre-state.
        pre: String,
        /// Rendering of the internal action.
        action: String,
        /// Abstract view before the step.
        view_pre: String,
        /// Abstract view after the step.
        view_post: String,
    },
    /// The mapped abstract action is not enabled in the abstract view of
    /// the pre-state, or it produced a different abstract post-state.
    StepMismatch {
        /// Rendering of the concrete pre-state.
        pre: String,
        /// Rendering of the concrete action.
        action: String,
        /// Rendering of the mapped abstract action.
        abs_action: String,
        /// What went wrong.
        detail: String,
    },
    /// The concrete machine offered a disabled action (machine bug).
    DisabledAction {
        /// Rendering of the concrete state.
        state: String,
        /// Rendering of the action.
        action: String,
    },
}

impl std::fmt::Display for RefinementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefinementError::BadInit {
                concrete,
                abstracted,
            } => write!(
                f,
                "initial state {concrete} abstracts to {abstracted}, which is not abstract-initial"
            ),
            RefinementError::StutterChangedView {
                pre,
                action,
                view_pre,
                view_post,
            } => write!(
                f,
                "internal action {action} from {pre} changed the abstract view:\n  pre:  {view_pre}\n  post: {view_post}"
            ),
            RefinementError::StepMismatch {
                pre,
                action,
                abs_action,
                detail,
            } => write!(
                f,
                "concrete action {action} from {pre} maps to abstract {abs_action}: {detail}"
            ),
            RefinementError::DisabledAction { state, action } => {
                write!(f, "machine offered disabled action {action} in state {state}")
            }
        }
    }
}

/// Checks that `map` is a forward simulation over all concrete states
/// reachable within `limits`.
///
/// For every reachable concrete state `c` and enabled action `a` with
/// `c -a-> c'`:
///
/// * if `abstract_action(c, a)` is `None`, require
///   `abstraction(c') == abstraction(c)` (stutter);
/// * otherwise require the abstract machine to take exactly that action
///   from `abstraction(c)` and land on `abstraction(c')`.
///
/// Additionally every concrete initial state must abstract to an abstract
/// initial state.
pub fn check_refinement<R>(
    map: &R,
    concrete: R::Concrete,
    abstract_machine: &R::Abstract,
    limits: ExploreLimits,
) -> Result<ExploreStats, RefinementError>
where
    R: RefinementMap,
{
    // Init condition.
    let abs_inits = abstract_machine.init_states();
    for ci in concrete.init_states() {
        let a = map.abstraction(&ci);
        if !abs_inits.contains(&a) {
            return Err(RefinementError::BadInit {
                concrete: format!("{ci:?}"),
                abstracted: format!("{a:?}"),
            });
        }
    }

    // Step condition, over the reachable set.
    let explorer = Explorer::new(concrete, limits);
    let machine = explorer.machine();
    let mut error: Option<RefinementError> = None;
    // `visit_all` cannot early-exit, so we collect states first; the
    // reachable sets we check are small by construction.
    let mut states = Vec::new();
    let stats = explorer.visit_all(|s| states.push(s.clone()));
    for pre in &states {
        if error.is_some() {
            break;
        }
        let view_pre = map.abstraction(pre);
        for action in machine.actions(pre) {
            let Some(post) = machine.step(pre, &action) else {
                error = Some(RefinementError::DisabledAction {
                    state: format!("{pre:?}"),
                    action: format!("{action:?}"),
                });
                break;
            };
            let view_post = map.abstraction(&post);
            match map.abstract_action(pre, &action) {
                None => {
                    if view_pre != view_post {
                        error = Some(RefinementError::StutterChangedView {
                            pre: format!("{pre:?}"),
                            action: format!("{action:?}"),
                            view_pre: format!("{view_pre:?}"),
                            view_post: format!("{view_post:?}"),
                        });
                        break;
                    }
                }
                Some(abs_action) => match abstract_machine.step(&view_pre, &abs_action) {
                    None => {
                        error = Some(RefinementError::StepMismatch {
                            pre: format!("{pre:?}"),
                            action: format!("{action:?}"),
                            abs_action: format!("{abs_action:?}"),
                            detail: "abstract action not enabled in abstract pre-state".into(),
                        });
                        break;
                    }
                    Some(abs_post) => {
                        if abs_post != view_post {
                            error = Some(RefinementError::StepMismatch {
                                pre: format!("{pre:?}"),
                                action: format!("{action:?}"),
                                abs_action: format!("{abs_action:?}"),
                                detail: format!(
                                    "abstract post {abs_post:?} != view of concrete post {view_post:?}"
                                ),
                            });
                            break;
                        }
                    }
                },
            }
        }
    }

    match error {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concrete: a clock counting 0..2*n-1. Abstract: a half-speed clock
    /// 0..n-1; odd ticks are stutters.
    struct FastClock {
        n: u8,
    }
    struct SlowClock {
        n: u8,
    }

    impl StateMachine for FastClock {
        type State = u8;
        type Action = ();

        fn init_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, _: &u8) -> Vec<()> {
            vec![()]
        }
        fn step(&self, s: &u8, _: &()) -> Option<u8> {
            Some((s + 1) % (2 * self.n))
        }
    }

    impl StateMachine for SlowClock {
        type State = u8;
        type Action = ();

        fn init_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, _: &u8) -> Vec<()> {
            vec![()]
        }
        fn step(&self, s: &u8, _: &()) -> Option<u8> {
            Some((s + 1) % self.n)
        }
    }

    struct HalfSpeed;

    impl RefinementMap for HalfSpeed {
        type Concrete = FastClock;
        type Abstract = SlowClock;

        fn abstraction(&self, s: &u8) -> u8 {
            s / 2
        }
        fn abstract_action(&self, pre: &u8, _a: &()) -> Option<()> {
            // Even -> odd tick keeps the abstract value (stutter); odd ->
            // even tick advances it.
            if pre % 2 == 1 {
                Some(())
            } else {
                None
            }
        }
    }

    #[test]
    fn half_speed_clock_refines() {
        let stats = check_refinement(
            &HalfSpeed,
            FastClock { n: 5 },
            &SlowClock { n: 5 },
            ExploreLimits::default(),
        )
        .expect("refinement should hold");
        assert_eq!(stats.states, 10);
    }

    struct BrokenMap;

    impl RefinementMap for BrokenMap {
        type Concrete = FastClock;
        type Abstract = SlowClock;

        fn abstraction(&self, s: &u8) -> u8 {
            s / 2
        }
        fn abstract_action(&self, _pre: &u8, _a: &()) -> Option<()> {
            // Claiming every tick advances the abstract clock is wrong.
            Some(())
        }
    }

    #[test]
    fn broken_map_is_rejected() {
        let err = check_refinement(
            &BrokenMap,
            FastClock { n: 4 },
            &SlowClock { n: 4 },
            ExploreLimits::default(),
        )
        .unwrap_err();
        match err {
            RefinementError::StepMismatch { .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    struct BadInitMap;

    impl RefinementMap for BadInitMap {
        type Concrete = FastClock;
        type Abstract = SlowClock;

        fn abstraction(&self, s: &u8) -> u8 {
            s + 1
        }
        fn abstract_action(&self, _: &u8, _: &()) -> Option<()> {
            None
        }
    }

    #[test]
    fn bad_init_is_rejected() {
        let err = check_refinement(
            &BadInitMap,
            FastClock { n: 4 },
            &SlowClock { n: 4 },
            ExploreLimits::default(),
        )
        .unwrap_err();
        match err {
            RefinementError::BadInit { .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn errors_render_human_readably() {
        let err = check_refinement(
            &BrokenMap,
            FastClock { n: 4 },
            &SlowClock { n: 4 },
            ExploreLimits::default(),
        )
        .unwrap_err();
        let s = err.to_string();
        assert!(s.contains("abstract"), "{s}");
    }
}
