//! Plain-text rendering of evaluation artifacts.
//!
//! The benchmark binaries regenerate the paper's figures as ASCII charts
//! and aligned tables so `EXPERIMENTS.md` can embed them verbatim. Only
//! rendering lives here; the data comes from [`crate::vc::VcReport`] and
//! the benchmark harnesses.

use std::time::Duration;

/// Renders a CDF as an ASCII chart of `width x height` characters.
///
/// X axis: duration from 0 to `x_max` (defaults to the max sample).
/// Y axis: cumulative fraction 0..1. This is the renderer behind the
/// Figure 1a reproduction.
pub fn render_cdf(points: &[(Duration, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return "(no data)\n".to_string();
    }
    let x_max = points
        .iter()
        .map(|(d, _)| d.as_secs_f64())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    // Plot a step function: for each column, the fraction of samples with
    // duration <= that column's time.
    for (col, cell) in (0..width).zip(0..width) {
        let t = x_max * (cell as f64 + 1.0) / width as f64;
        let frac = points.iter().take_while(|(d, _)| d.as_secs_f64() <= t).count() as f64
            / points.len() as f64;
        let row = ((1.0 - frac) * (height as f64 - 1.0)).round() as usize;
        grid[row.min(height - 1)][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (height as f64 - 1.0);
        out.push_str(&format!("{frac:>5.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "       0{:>width$.2}s\n",
        x_max,
        width = width - 1
    ));
    out
}

/// Renders an XY series chart with one line per labelled series.
///
/// Used for the Figure 1b/1c reproductions (latency vs. core count).
pub fn render_series(
    title: &str,
    x_label: &str,
    y_label: &str,
    xs: &[usize],
    series: &[(&str, Vec<f64>)],
) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:>8} |{}\n",
        x_label,
        series
            .iter()
            .map(|(name, _)| format!(" {name:>20}"))
            .collect::<String>()
    ));
    out.push_str(&format!(
        "---------+{}\n",
        "-".repeat(21 * series.len())
    ));
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>8} |"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => out.push_str(&format!(" {y:>20.3}")),
                None => out.push_str(&format!(" {:>20}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("({y_label})\n"));
    out
}

/// Renders a feature matrix (the Tables 1 and 2 reproduction).
///
/// `cells[r][c]` pairs with `rows[r]` and `cols[c]`.
pub fn render_matrix(title: &str, cols: &[&str], rows: &[&str], cells: &[Vec<&str>]) -> String {
    let row_w = rows.iter().map(|r| r.len()).max().unwrap_or(0).max(4);
    let col_w = cols.iter().map(|c| c.len()).max().unwrap_or(0).max(5);
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:row_w$}", ""));
    for c in cols {
        out.push_str(&format!(" | {c:>col_w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(row_w + cols.len() * (col_w + 3)));
    out.push('\n');
    for (r, row) in rows.iter().enumerate() {
        out.push_str(&format!("{row:row_w$}"));
        for c in 0..cols.len() {
            let cell = cells
                .get(r)
                .and_then(|cr| cr.get(c))
                .copied()
                .unwrap_or("?");
            out.push_str(&format!(" | {cell:>col_w$}"));
        }
        out.push('\n');
    }
    out
}

/// Formats a duration in the most readable unit.
pub fn human_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_renders_all_rows() {
        let pts: Vec<(Duration, f64)> = (1..=100)
            .map(|i| (Duration::from_millis(i), i as f64 / 100.0))
            .collect();
        let chart = render_cdf(&pts, 40, 10);
        assert_eq!(chart.lines().count(), 12);
        assert!(chart.contains('*'));
    }

    #[test]
    fn cdf_handles_empty() {
        assert_eq!(render_cdf(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn series_aligns_columns() {
        let s = render_series(
            "Map Latency",
            "# Cores",
            "us",
            &[1, 8, 16],
            &[("unverified", vec![1.0, 2.0, 3.0]), ("verified", vec![1.1, 2.1, 3.1])],
        );
        assert!(s.contains("Map Latency"));
        assert!(s.contains("unverified"));
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 4);
    }

    #[test]
    fn matrix_renders_cells() {
        let m = render_matrix(
            "Table 1",
            &["seL4", "veros"],
            &["Kernel memory safety", "Process-centric spec"],
            &[vec!["y", "y"], vec!["n", "y"]],
        );
        assert!(m.contains("seL4"));
        assert!(m.contains("Process-centric spec"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(human_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(human_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(human_duration(Duration::from_micros(7)), "7.00us");
    }
}
