//! Bounded-exhaustive state-space exploration.
//!
//! For finitized instances of a specification (small address spaces, few
//! file descriptors, two or three threads) the explorer enumerates *every*
//! reachable state by breadth-first search and checks an invariant on each
//! one. Within the configured bounds this is a proof; outside them it is a
//! systematic test. The paper's Verus proofs quantify over all states —
//! our substitution trades that generality for executability, and the
//! bounds of each check are recorded in the verification-condition report
//! so the coverage story is explicit.

use std::collections::{HashMap, VecDeque};

use crate::state_machine::StateMachine;

/// Resource limits for an exploration run.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum BFS depth (number of actions from an initial state).
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        Self {
            max_states: 1 << 20,
            max_depth: usize::MAX,
        }
    }
}

/// Statistics from a completed exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken (including duplicates).
    pub transitions: usize,
    /// Deepest BFS level reached.
    pub depth: usize,
    /// True when the frontier emptied before hitting any limit, i.e. the
    /// reachable set was enumerated exhaustively.
    pub complete: bool,
}

/// A counterexample trace: the actions leading from an initial state to
/// the violating state, along with that state's debug rendering.
#[derive(Clone, Debug)]
pub struct Trace<M: StateMachine> {
    /// The initial state the trace starts from.
    pub init: M::State,
    /// Actions applied in order.
    pub actions: Vec<M::Action>,
    /// The state that violated the invariant.
    pub violating: M::State,
}

impl<M: StateMachine> Trace<M> {
    /// Renders the trace for error messages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("init: {:?}\n", self.init));
        for (i, a) in self.actions.iter().enumerate() {
            out.push_str(&format!("  {i:>3}: {a:?}\n"));
        }
        out.push_str(&format!("violating state: {:?}", self.violating));
        out
    }
}

/// Result of an exploration: success with statistics, or a counterexample.
pub enum ExploreOutcome<M: StateMachine> {
    /// The invariant held on every visited state.
    Ok(ExploreStats),
    /// The invariant failed; a minimal-depth trace is returned (BFS order
    /// guarantees no shorter counterexample exists).
    Violation(Box<Trace<M>>),
    /// A machine bug: `actions` offered an action that `step` rejected.
    DisabledAction {
        /// The state in which the inconsistency was observed.
        state: String,
        /// The offending action.
        action: String,
    },
}

/// Breadth-first exhaustive explorer over a [`StateMachine`].
/// BFS parent map: each reached state maps to the (predecessor,
/// action) that first produced it; initial states map to `None`.
type ParentMap<M> = HashMap<
    <M as StateMachine>::State,
    Option<(<M as StateMachine>::State, <M as StateMachine>::Action)>,
>;

pub struct Explorer<M: StateMachine> {
    machine: M,
    limits: ExploreLimits,
}

impl<M: StateMachine> Explorer<M> {
    /// Creates an explorer with the given limits.
    pub fn new(machine: M, limits: ExploreLimits) -> Self {
        Self { machine, limits }
    }

    /// Creates an explorer with default (effectively unbounded) limits.
    pub fn unbounded(machine: M) -> Self {
        Self::new(machine, ExploreLimits::default())
    }

    /// Returns the underlying machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Explores all reachable states, checking `invariant` on each.
    ///
    /// Parent pointers are kept so that a violation reproduces the
    /// shortest action sequence that reaches it.
    pub fn check_invariant<F>(&self, invariant: F) -> ExploreOutcome<M>
    where
        F: Fn(&M::State) -> bool,
    {
        self.check_invariant_named(|s| if invariant(s) { None } else { Some(String::new()) })
    }

    /// Like [`check_invariant`](Self::check_invariant) but the predicate
    /// may return a description of *what* failed.
    pub fn check_invariant_named<F>(&self, violation: F) -> ExploreOutcome<M>
    where
        F: Fn(&M::State) -> Option<String>,
    {
        // Parent map: state -> (parent state, action index into trace
        // reconstruction). Initial states map to themselves.
        let mut parent: ParentMap<M> = HashMap::new();
        let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
        let mut stats = ExploreStats::default();

        for init in self.machine.init_states() {
            if parent.contains_key(&init) {
                continue;
            }
            if violation(&init).is_some() {
                return ExploreOutcome::Violation(Box::new(Trace {
                    init: init.clone(),
                    actions: vec![],
                    violating: init,
                }));
            }
            parent.insert(init.clone(), None);
            queue.push_back((init, 0));
            stats.states += 1;
        }

        while let Some((state, depth)) = queue.pop_front() {
            stats.depth = stats.depth.max(depth);
            if depth >= self.limits.max_depth {
                continue;
            }
            for action in self.machine.actions(&state) {
                let Some(next) = self.machine.step(&state, &action) else {
                    return ExploreOutcome::DisabledAction {
                        state: format!("{state:?}"),
                        action: format!("{action:?}"),
                    };
                };
                stats.transitions += 1;
                if parent.contains_key(&next) {
                    continue;
                }
                parent.insert(next.clone(), Some((state.clone(), action.clone())));
                if violation(&next).is_some() {
                    return ExploreOutcome::Violation(Box::new(self.rebuild(&parent, next)));
                }
                stats.states += 1;
                if stats.states >= self.limits.max_states {
                    // Limit hit: stop expanding, report incomplete.
                    return ExploreOutcome::Ok(ExploreStats {
                        complete: false,
                        ..stats
                    });
                }
                queue.push_back((next, depth + 1));
            }
        }

        stats.complete = true;
        ExploreOutcome::Ok(stats)
    }

    /// Explores and calls `visit` on every reachable state (no invariant).
    ///
    /// Returns the statistics of the walk. Useful for collecting the
    /// reachable set, e.g. to seed a refinement check.
    pub fn visit_all<F>(&self, mut visit: F) -> ExploreStats
    where
        F: FnMut(&M::State),
    {
        let mut seen: HashMap<M::State, ()> = HashMap::new();
        let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
        let mut stats = ExploreStats::default();
        for init in self.machine.init_states() {
            if seen.insert(init.clone(), ()).is_none() {
                visit(&init);
                stats.states += 1;
                queue.push_back((init, 0));
            }
        }
        while let Some((state, depth)) = queue.pop_front() {
            stats.depth = stats.depth.max(depth);
            if depth >= self.limits.max_depth {
                continue;
            }
            for action in self.machine.actions(&state) {
                if let Some(next) = self.machine.step(&state, &action) {
                    stats.transitions += 1;
                    if seen.insert(next.clone(), ()).is_none() {
                        visit(&next);
                        stats.states += 1;
                        if stats.states >= self.limits.max_states {
                            return stats;
                        }
                        queue.push_back((next, depth + 1));
                    }
                }
            }
        }
        stats.complete = true;
        stats
    }

    /// Rebuilds the action trace from the parent map.
    fn rebuild(
        &self,
        parent: &ParentMap<M>,
        violating: M::State,
    ) -> Trace<M> {
        let mut actions = Vec::new();
        let mut cur = violating.clone();
        loop {
            match parent.get(&cur) {
                Some(Some((prev, act))) => {
                    actions.push(act.clone());
                    cur = prev.clone();
                }
                Some(None) => break,
                None => break, // The violating state itself is not in the map yet.
            }
        }
        actions.reverse();
        Trace {
            init: cur,
            actions,
            violating,
        }
    }
}

/// Convenience: explore `machine` within `limits` and return `Ok(stats)`
/// or an error message containing the counterexample trace.
///
/// This is the form most verification conditions use.
pub fn prove_invariant<M, F>(
    machine: M,
    limits: ExploreLimits,
    invariant: F,
) -> Result<ExploreStats, String>
where
    M: StateMachine,
    F: Fn(&M::State) -> bool,
{
    let explorer = Explorer::new(machine, limits);
    match explorer.check_invariant(invariant) {
        ExploreOutcome::Ok(stats) => Ok(stats),
        ExploreOutcome::Violation(trace) => Err(format!("invariant violated:\n{}", trace.render())),
        ExploreOutcome::DisabledAction { state, action } => Err(format!(
            "machine offered disabled action {action} in state {state}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tokens moving on a small ring; invariant: never on same cell
    /// unless that cell is 0 (the "home" cell).
    struct Ring {
        size: u8,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct RingState(u8, u8);

    #[derive(Clone, Debug)]
    enum RingAction {
        MoveA,
        MoveB,
    }

    impl StateMachine for Ring {
        type State = RingState;
        type Action = RingAction;

        fn init_states(&self) -> Vec<RingState> {
            vec![RingState(0, 0)]
        }

        fn actions(&self, _s: &RingState) -> Vec<RingAction> {
            vec![RingAction::MoveA, RingAction::MoveB]
        }

        fn step(&self, s: &RingState, a: &RingAction) -> Option<RingState> {
            Some(match a {
                RingAction::MoveA => RingState((s.0 + 1) % self.size, s.1),
                RingAction::MoveB => RingState(s.0, (s.1 + 1) % self.size),
            })
        }
    }

    #[test]
    fn exhaustive_enumeration_counts_all_states() {
        let e = Explorer::unbounded(Ring { size: 4 });
        match e.check_invariant(|_| true) {
            ExploreOutcome::Ok(stats) => {
                assert!(stats.complete);
                assert_eq!(stats.states, 16);
            }
            _ => panic!("expected success"),
        }
    }

    #[test]
    fn violation_produces_shortest_trace() {
        let e = Explorer::unbounded(Ring { size: 4 });
        // Invariant "tokens never collide off home" is false; shortest
        // violation is two moves of the same token? No: collisions happen
        // when both reach the same nonzero cell, shortest is MoveA, MoveB
        // -> (1,1). Trace length must be 2.
        match e.check_invariant(|s| !(s.0 == s.1 && s.0 != 0)) {
            ExploreOutcome::Violation(t) => {
                assert_eq!(t.actions.len(), 2, "trace: {}", t.render());
                assert_eq!(t.violating, RingState(1, 1));
            }
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn depth_limit_truncates() {
        let e = Explorer::new(
            Ring { size: 100 },
            ExploreLimits {
                max_states: usize::MAX >> 1,
                max_depth: 3,
            },
        );
        match e.check_invariant(|_| true) {
            ExploreOutcome::Ok(stats) => {
                // States reachable within 3 steps: positions with a+b<=3:
                // (0,0),(1,0),(0,1),(2,0),(1,1),(0,2),(3,0),(2,1),(1,2),(0,3).
                assert_eq!(stats.states, 10);
            }
            _ => panic!("expected success"),
        }
    }

    #[test]
    fn state_limit_reports_incomplete() {
        let e = Explorer::new(
            Ring { size: 50 },
            ExploreLimits {
                max_states: 100,
                max_depth: usize::MAX,
            },
        );
        match e.check_invariant(|_| true) {
            ExploreOutcome::Ok(stats) => {
                assert!(!stats.complete);
                assert!(stats.states <= 101);
            }
            _ => panic!("expected success"),
        }
    }

    #[test]
    fn initial_state_violation_is_empty_trace() {
        let e = Explorer::unbounded(Ring { size: 4 });
        match e.check_invariant(|s| *s != RingState(0, 0)) {
            ExploreOutcome::Violation(t) => assert!(t.actions.is_empty()),
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn visit_all_sees_every_state() {
        let e = Explorer::unbounded(Ring { size: 5 });
        let mut n = 0;
        let stats = e.visit_all(|_| n += 1);
        assert_eq!(n, 25);
        assert_eq!(stats.states, 25);
        assert!(stats.complete);
    }

    #[test]
    fn prove_invariant_formats_counterexamples() {
        let err = prove_invariant(Ring { size: 3 }, ExploreLimits::default(), |s| s.0 < 2)
            .unwrap_err();
        assert!(err.contains("invariant violated"), "{err}");
        assert!(err.contains("MoveA"), "{err}");
    }
}
