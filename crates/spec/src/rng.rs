//! Deterministic randomness for randomized verification conditions.
//!
//! Obligations that cannot be discharged exhaustively (e.g. round-trip
//! checks over 64-bit values) are checked on a deterministic pseudo-random
//! sample. Determinism matters: a VC report must be reproducible run to
//! run, like a proof. All randomized checks in the workspace draw from
//! [`SpecRng`] seeded with a fixed per-obligation seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for specification checks.
pub struct SpecRng {
    inner: StdRng,
}

impl SpecRng {
    /// Creates an RNG from a fixed seed. Each obligation should use its
    /// own seed (conventionally a hash of its name) so adding obligations
    /// does not perturb existing ones.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates an RNG seeded from an obligation name.
    pub fn for_obligation(name: &str) -> Self {
        Self::seeded(fnv1a(name.as_bytes()))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be nonzero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli trial with probability `num/denom`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.inner.gen_range(0..denom) < num
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// Chooses a random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

/// FNV-1a hash, used to derive stable seeds from obligation names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SpecRng::seeded(42);
        let mut b = SpecRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn obligation_names_give_distinct_streams() {
        let a = SpecRng::for_obligation("pt::map::inv").next_u64();
        let b = SpecRng::for_obligation("pt::unmap::inv").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SpecRng::seeded(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        // Known vector: "a".
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
