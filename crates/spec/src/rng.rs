//! Deterministic randomness for randomized verification conditions.
//!
//! Obligations that cannot be discharged exhaustively (e.g. round-trip
//! checks over 64-bit values) are checked on a deterministic pseudo-random
//! sample. Determinism matters: a VC report must be reproducible run to
//! run, like a proof. All randomized checks in the workspace draw from
//! [`SpecRng`] seeded with a fixed per-obligation seed.
//!
//! The generator is an in-tree xoshiro256++ (public domain, Blackman &
//! Vigna) seeded through SplitMix64, so the workspace needs no external
//! randomness crate and the stream is stable across toolchains.

/// A deterministic RNG for specification checks.
///
/// xoshiro256++ state; the all-zero state is unreachable because the
/// SplitMix64 seeding never produces four zero words.
pub struct SpecRng {
    s: [u64; 4],
}

impl SpecRng {
    /// Creates an RNG from a fixed seed. Each obligation should use its
    /// own seed (conventionally a hash of its name) so adding obligations
    /// does not perturb existing ones.
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64: the recommended way to expand a 64-bit seed into
        // xoshiro state (it cannot produce the forbidden all-zero state
        // for all four outputs).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Creates an RNG seeded from an obligation name.
    pub fn for_obligation(name: &str) -> Self {
        Self::seeded(fnv1a(name.as_bytes()))
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the distribution
    /// is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SpecRng::below bound must be nonzero");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be nonzero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `num/denom`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.below(denom as u64) < num as u64
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Chooses a random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

/// FNV-1a hash, used to derive stable seeds from obligation names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SpecRng::seeded(42);
        let mut b = SpecRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn obligation_names_give_distinct_streams() {
        let a = SpecRng::for_obligation("pt::map::inv").next_u64();
        let b = SpecRng::for_obligation("pt::unmap::inv").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SpecRng::seeded(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_reaches_every_residue() {
        let mut r = SpecRng::seeded(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = SpecRng::seeded(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is vanishingly unlikely");
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        // Known vector: "a".
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
