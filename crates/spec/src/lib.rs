//! Executable specification framework for the `veros` project.
//!
//! This crate stands in for the [Verus] verification language used by the
//! paper ("Beyond isolation: OS verification as a foundation for correct
//! applications", HotOS '23). Where Verus discharges verification
//! conditions with an SMT solver, this crate discharges the *same shaped*
//! obligations executably:
//!
//! * [`StateMachine`] — specs are transition systems, exactly as in the
//!   paper's Section 3 (the `read_spec` state machine) and Section 5 (the
//!   page table's high-level spec).
//! * [`explorer`] — bounded-exhaustive exploration proves invariants on
//!   all reachable states of finitized instances and produces
//!   counterexample traces on failure.
//! * [`refinement`] — forward-simulation checking: every concrete
//!   transition must map to an abstract transition (or a stutter), the
//!   executable analogue of the paper's Section 4.4 refinement theorem.
//! * [`linearizability`] — a Wing–Gong linearizability checker used to
//!   validate node replication once (Section 4.3), after which every
//!   NR-replicated structure inherits a linearizable interface.
//! * [`fault`] — seeded *enumeration* of fault schedules (crash points,
//!   wire loss/duplication/reorder, torn sector writes) swept by the
//!   end-to-end invariant VCs anchored in `INVARIANTS.md`.
//! * [`vc`] — a verification-condition engine that names, runs, and
//!   *times* each obligation; its report regenerates Figure 1a (the CDF
//!   of verification-condition times).
//!
//! [Verus]: https://github.com/verus-lang/verus

pub mod explorer;
pub mod fault;
pub mod history;
pub mod linearizability;
pub mod refinement;
pub mod report;
pub mod rng;
pub mod state_machine;
pub mod vc;

pub use explorer::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer, Trace};
pub use fault::{FaultSchedule, WireFaults};
pub use history::{Event, EventKind, History, Recorder};
pub use linearizability::{check_linearizable, LinearizabilityError, SeqSpec};
pub use refinement::{check_refinement, RefinementError, RefinementMap};
pub use state_machine::StateMachine;
pub use vc::{Vc, VcEngine, VcKind, VcOutcome, VcReport, VcStatus};
