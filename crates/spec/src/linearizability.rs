//! Wing–Gong linearizability checking.
//!
//! Node replication's correctness claim — the one IronSync proved and the
//! one this reproduction checks dynamically — is that a sequential data
//! structure replicated with NR remains *linearizable* (Section 4.1). We
//! check recorded concurrent histories against a sequential specification
//! with the classic Wing & Gong backtracking algorithm: search for a
//! permutation of operations that (a) respects real-time order and (b) is
//! legal for the sequential spec.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

use crate::history::History;

/// A sequential specification for linearizability checking.
pub trait SeqSpec {
    /// Operation type (invocation payload).
    type Op: Clone + Debug;
    /// Return value type.
    type Ret: Clone + Debug + PartialEq;
    /// Sequential state.
    type State: Clone + Eq + Hash + Debug;

    /// The initial sequential state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the new state and the return
    /// value the operation must produce.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// Why a history failed the linearizability check.
#[derive(Debug)]
pub struct LinearizabilityError {
    /// Number of completed operations in the history.
    pub ops: usize,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for LinearizabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "history with {} ops is not linearizable: {}",
            self.ops, self.detail
        )
    }
}

#[derive(Clone, Debug)]
struct OpRecord<Op, Ret> {
    invoke: u64,
    response: u64,
    op: Op,
    ret: Ret,
}

/// Checks that `history` is linearizable with respect to `spec`.
///
/// Pending (incomplete) invocations are treated as optional: the checker
/// may linearize them anywhere after their invocation or drop them, which
/// is the standard treatment (a pending op may or may not have taken
/// effect). Returns the number of sequential states explored on success.
pub fn check_linearizable<S>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> Result<usize, LinearizabilityError>
where
    S: SeqSpec,
{
    let (completed, pending) = history.complete_ops();
    let mut ops: Vec<OpRecord<S::Op, S::Ret>> = completed
        .into_iter()
        .map(|(_t, inv, resp, op, ret)| OpRecord {
            invoke: inv,
            response: resp,
            op,
            ret,
        })
        .collect();
    // Pending operations: model as ops with response at infinity whose
    // return value is unconstrained. We handle them by allowing the
    // search to either schedule them (accepting any return) or skip them
    // entirely once all completed ops are placed.
    let pending_ops: Vec<(u64, S::Op)> = pending.into_iter().map(|(_t, ts, op)| (ts, op)).collect();
    ops.sort_by_key(|o| o.invoke);

    let n = ops.len();
    let mut done = vec![false; n];
    let mut pending_done = vec![false; pending_ops.len()];
    let mut explored = 0usize;
    // Memoization of failed (done-mask, state) pairs. For small histories
    // a bitmask in u128 suffices; histories larger than 128 completed ops
    // are rejected up front.
    if n + pending_ops.len() > 120 {
        return Err(LinearizabilityError {
            ops: n,
            detail: "history too large for the checker (>120 ops)".into(),
        });
    }
    let mut failed: HashSet<(u128, u128, S::State)> = HashSet::new();

    fn mask(done: &[bool]) -> u128 {
        done.iter()
            .enumerate()
            .fold(0u128, |m, (i, &d)| if d { m | (1 << i) } else { m })
    }

    // Iterative depth-first search with an explicit stack of choices.
    // At each point, a completed op can be linearized next if it is not
    // done and no other *not-done* op responded before its invocation
    // (real-time order: an op can only linearize before ops that it
    // strictly precedes in real time).
    #[allow(clippy::too_many_arguments)] // internal DFS worker; the
    // arguments are the search's whole mutable state, grouping them in a
    // struct would only rename the problem.
    fn search<S: SeqSpec>(
        spec: &S,
        ops: &[OpRecord<S::Op, S::Ret>],
        pending_ops: &[(u64, S::Op)],
        done: &mut [bool],
        pending_done: &mut [bool],
        state: &S::State,
        failed: &mut HashSet<(u128, u128, S::State)>,
        explored: &mut usize,
    ) -> bool {
        if done.iter().all(|&d| d) {
            return true;
        }
        let key = (mask(done), mask(pending_done), state.clone());
        if failed.contains(&key) {
            return false;
        }
        *explored += 1;

        // The earliest response among not-done completed ops bounds which
        // ops may linearize next: only those invoked before it.
        let min_resp = ops
            .iter()
            .zip(done.iter())
            .filter(|(_, &d)| !d)
            .map(|(o, _)| o.response)
            .min()
            .unwrap();

        for i in 0..ops.len() {
            if done[i] || ops[i].invoke > min_resp {
                continue;
            }
            let (next, ret) = spec.apply(state, &ops[i].op);
            if ret == ops[i].ret {
                done[i] = true;
                if search(spec, ops, pending_ops, done, pending_done, &next, failed, explored) {
                    return true;
                }
                done[i] = false;
            }
        }
        // Try scheduling a pending op (its effects may be visible even
        // though it never returned). Its return value is unconstrained.
        for j in 0..pending_ops.len() {
            if pending_done[j] || pending_ops[j].0 > min_resp {
                continue;
            }
            let (next, _ret) = spec.apply(state, &pending_ops[j].1);
            pending_done[j] = true;
            if search(spec, ops, pending_ops, done, pending_done, &next, failed, explored) {
                return true;
            }
            pending_done[j] = false;
        }
        failed.insert(key);
        false
    }

    let init = spec.init();
    if search(
        spec,
        &ops,
        &pending_ops,
        &mut done,
        &mut pending_done,
        &init,
        &mut failed,
        &mut explored,
    ) {
        Ok(explored.max(1))
    } else {
        Err(LinearizabilityError {
            ops: n,
            detail: format!(
                "no legal linearization exists (searched {explored} partial schedules)"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Recorder;

    /// A register with read/write ops.
    struct Register;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum RegOp {
        Read,
        Write(u32),
    }

    impl SeqSpec for Register {
        type Op = RegOp;
        type Ret = u32;
        type State = u32;

        fn init(&self) -> u32 {
            0
        }

        fn apply(&self, state: &u32, op: &RegOp) -> (u32, u32) {
            match op {
                RegOp::Read => (*state, *state),
                RegOp::Write(v) => (*v, 0),
            }
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let r = Recorder::new();
        r.invoke(0, RegOp::Write(5));
        r.response(0, 0);
        r.invoke(0, RegOp::Read);
        r.response(0, 5);
        assert!(check_linearizable(&Register, &r.finish()).is_ok());
    }

    #[test]
    fn stale_read_is_rejected() {
        let r = Recorder::new();
        r.invoke(0, RegOp::Write(5));
        r.response(0, 0);
        // Read strictly after the write must observe 5, not 0.
        r.invoke(0, RegOp::Read);
        r.response(0, 0);
        assert!(check_linearizable(&Register, &r.finish()).is_err());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        let r = Recorder::new();
        // Thread 0 writes 5 concurrently with thread 1's read of 0: the
        // read may linearize before the write.
        r.invoke(0, RegOp::Write(5));
        r.invoke(1, RegOp::Read);
        r.response(1, 0);
        r.response(0, 0);
        assert!(check_linearizable(&Register, &r.finish()).is_ok());
    }

    #[test]
    fn overlapping_read_may_also_see_new_value() {
        let r = Recorder::new();
        r.invoke(0, RegOp::Write(5));
        r.invoke(1, RegOp::Read);
        r.response(1, 5);
        r.response(0, 0);
        assert!(check_linearizable(&Register, &r.finish()).is_ok());
    }

    #[test]
    fn pending_write_effect_may_be_visible() {
        let r = Recorder::new();
        // Write(9) never completes, but a later read sees 9: legal,
        // because the pending op may have taken effect.
        r.invoke(0, RegOp::Write(9));
        r.invoke(1, RegOp::Read);
        r.response(1, 9);
        assert!(check_linearizable(&Register, &r.finish()).is_ok());
    }

    #[test]
    fn real_time_order_is_enforced_across_threads() {
        let r = Recorder::new();
        // Thread 0: Write(1) completes. Thread 1: Write(2) completes.
        // Then a read sees 1 even though Write(2) finished after Write(1)
        // and nothing overlaps: illegal.
        r.invoke(0, RegOp::Write(1));
        r.response(0, 0);
        r.invoke(1, RegOp::Write(2));
        r.response(1, 0);
        r.invoke(0, RegOp::Read);
        r.response(0, 1);
        assert!(check_linearizable(&Register, &r.finish()).is_err());
    }

    /// A FIFO queue spec to exercise a richer structure.
    struct Fifo;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum QOp {
        Enq(u32),
        Deq,
    }

    impl SeqSpec for Fifo {
        type Op = QOp;
        type Ret = Option<u32>;
        type State = std::collections::VecDeque<u32>;

        fn init(&self) -> Self::State {
            Default::default()
        }

        fn apply(&self, state: &Self::State, op: &QOp) -> (Self::State, Option<u32>) {
            let mut s = state.clone();
            match op {
                QOp::Enq(v) => {
                    s.push_back(*v);
                    (s, None)
                }
                QOp::Deq => {
                    let v = s.pop_front();
                    (s, v)
                }
            }
        }
    }

    #[test]
    fn queue_fifo_order_is_checked() {
        let r = Recorder::new();
        r.invoke(0, QOp::Enq(1));
        r.response(0, None);
        r.invoke(0, QOp::Enq(2));
        r.response(0, None);
        r.invoke(1, QOp::Deq);
        r.response(1, Some(2)); // LIFO answer: not linearizable for a FIFO.
        assert!(check_linearizable(&Fifo, &r.finish()).is_err());

        let r = Recorder::new();
        r.invoke(0, QOp::Enq(1));
        r.response(0, None);
        r.invoke(0, QOp::Enq(2));
        r.response(0, None);
        r.invoke(1, QOp::Deq);
        r.response(1, Some(1));
        assert!(check_linearizable(&Fifo, &r.finish()).is_ok());
    }
}
