//! Transition-system specifications.
//!
//! A specification in this framework is a labelled transition system: a
//! set of initial states and, for each state, a set of enabled actions and
//! a (deterministic, per action) successor state. This mirrors how the
//! paper writes specs: "The high-level spec for the system call is a state
//! machine, whose state contains the file descriptors' current state.
//! Execution of the syscall corresponds to a transition" (Section 3).
//!
//! Nondeterminism is expressed by offering several enabled actions;
//! determinism per `(state, action)` pair keeps exploration and
//! refinement checking tractable without losing generality (a
//! nondeterministic transition relation can always be determinized by
//! enriching the action with its choice).

use std::fmt::Debug;
use std::hash::Hash;

/// A labelled transition system used as an executable specification.
///
/// `State` must be cheaply clonable and hashable so the [explorer](mod@crate::explorer)
/// can deduplicate the reachable set. `Action` labels
/// identify transitions both for counterexample traces and for
/// refinement mapping.
pub trait StateMachine {
    /// The type of states of this machine.
    type State: Clone + Eq + Hash + Debug;
    /// The type of transition labels.
    type Action: Clone + Debug;

    /// Returns every initial state of the machine.
    fn init_states(&self) -> Vec<Self::State>;

    /// Returns the actions enabled in `state`.
    ///
    /// An action returned here must succeed when passed to
    /// [`step`](Self::step); returning an action whose `step` yields `None` is a
    /// specification bug and is reported as such by the explorer.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action` to `state`.
    ///
    /// Returns `None` when the action is not enabled in `state`. The
    /// successor must be unique per `(state, action)` pair.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// Runs a sequence of actions from `state`, returning the final state.
    ///
    /// Returns `Err` with the index of the first action that was not
    /// enabled.
    fn run(&self, state: &Self::State, actions: &[Self::Action]) -> Result<Self::State, usize> {
        let mut cur = state.clone();
        for (i, a) in actions.iter().enumerate() {
            cur = self.step(&cur, a).ok_or(i)?;
        }
        Ok(cur)
    }
}

/// A state machine together with a named invariant, bundled for
/// registration with the verification-condition engine.
pub struct InvariantSpec<M: StateMachine> {
    /// The machine whose reachable states are constrained.
    pub machine: M,
    /// Human-readable invariant name (used in VC names).
    pub name: &'static str,
    /// The predicate that must hold on every reachable state.
    pub check: fn(&M::State) -> bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded counter: increments up to a cap, resets to zero.
    struct Counter {
        cap: u32,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum CounterAction {
        Inc,
        Reset,
    }

    impl StateMachine for Counter {
        type State = u32;
        type Action = CounterAction;

        fn init_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn actions(&self, state: &u32) -> Vec<CounterAction> {
            let mut out = vec![CounterAction::Reset];
            if *state < self.cap {
                out.push(CounterAction::Inc);
            }
            out
        }

        fn step(&self, state: &u32, action: &CounterAction) -> Option<u32> {
            match action {
                CounterAction::Inc if *state < self.cap => Some(state + 1),
                CounterAction::Inc => None,
                CounterAction::Reset => Some(0),
            }
        }
    }

    #[test]
    fn run_applies_actions_in_order() {
        let m = Counter { cap: 3 };
        let end = m
            .run(&0, &[CounterAction::Inc, CounterAction::Inc, CounterAction::Reset])
            .unwrap();
        assert_eq!(end, 0);
        let end = m.run(&0, &[CounterAction::Inc, CounterAction::Inc]).unwrap();
        assert_eq!(end, 2);
    }

    #[test]
    fn run_reports_first_disabled_action() {
        let m = Counter { cap: 1 };
        let err = m
            .run(&0, &[CounterAction::Inc, CounterAction::Inc])
            .unwrap_err();
        assert_eq!(err, 1);
    }

    #[test]
    fn actions_are_all_enabled() {
        let m = Counter { cap: 2 };
        for s in 0..=2 {
            for a in m.actions(&s) {
                assert!(m.step(&s, &a).is_some(), "action {a:?} disabled in {s}");
            }
        }
    }
}
