//! Verification-condition engine.
//!
//! Verus compiles each function into a set of verification conditions and
//! discharges them with Z3, reporting per-function verification times —
//! that is the population behind the paper's Figure 1a ("CDF of all 220
//! verification conditions", all ≤ 11 s, ≈ 40 s total). Our substitution
//! keeps the same artifact shape: every module registers named
//! obligations (invariant preservation, refinement, hardware
//! interpretation, marshalling round-trips, race freedom, linearizability)
//! and this engine runs each one, records its wall-clock duration and
//! outcome, and renders the CDF.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The kind of obligation a verification condition discharges.
///
/// The kinds mirror the proof structure of the paper's prototype (Fig 2)
/// plus the three Section 3 obligations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VcKind {
    /// A state invariant holds on all reachable states.
    Invariant,
    /// A forward-simulation refinement between two layers.
    Refinement,
    /// The hardware's interpretation of in-memory bits matches the
    /// abstract view (the paper's "lion's share" proof step).
    Interpretation,
    /// Serialization round-trips across the user/kernel boundary.
    Marshalling,
    /// No concurrent access to syscall buffers while a syscall runs.
    RaceFreedom,
    /// A concurrent history is linearizable against a sequential spec.
    Linearizability,
    /// A functional property of an operation (pre/post condition).
    Property,
}

impl VcKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            VcKind::Invariant => "inv",
            VcKind::Refinement => "refine",
            VcKind::Interpretation => "interp",
            VcKind::Marshalling => "marshal",
            VcKind::RaceFreedom => "race",
            VcKind::Linearizability => "linear",
            VcKind::Property => "prop",
        }
    }
}

/// A named verification condition.
#[derive(Clone, Debug)]
pub struct Vc {
    /// Fully qualified name, e.g. `pagetable::map_frame::inv_aligned`.
    pub name: String,
    /// The module (crate) the obligation belongs to.
    pub module: &'static str,
    /// The obligation kind.
    pub kind: VcKind,
}

/// The outcome of running one verification condition.
#[derive(Clone, Debug)]
pub struct VcOutcome {
    /// The obligation.
    pub vc: Vc,
    /// Wall-clock time spent discharging it.
    pub duration: Duration,
    /// Pass/fail.
    pub status: VcStatus,
}

/// Pass/fail status of a VC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VcStatus {
    /// The obligation was discharged.
    Passed,
    /// The obligation failed; the message contains the counterexample.
    Failed(String),
}

type Check = Box<dyn FnOnce() -> Result<(), String> + Send>;

/// Collects obligations and runs them, timing each.
#[derive(Default)]
pub struct VcEngine {
    obligations: Vec<(Vc, Check)>,
}

impl VcEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an obligation. `check` returns `Err(counterexample)` on
    /// failure.
    pub fn register<F>(&mut self, module: &'static str, kind: VcKind, name: impl Into<String>, check: F)
    where
        F: FnOnce() -> Result<(), String> + Send + 'static,
    {
        self.obligations.push((
            Vc {
                name: name.into(),
                module,
                kind,
            },
            Box::new(check),
        ));
    }

    /// Number of registered obligations.
    pub fn len(&self) -> usize {
        self.obligations.len()
    }

    /// True when no obligations are registered.
    pub fn is_empty(&self) -> bool {
        self.obligations.is_empty()
    }

    /// Names of the registered obligations, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.obligations.iter().map(|(vc, _)| vc.name.clone()).collect()
    }

    /// Keeps only the obligations whose [`Vc`] satisfies `pred`,
    /// preserving registration order. Returns how many were dropped.
    pub fn retain<P: FnMut(&Vc) -> bool>(&mut self, mut pred: P) -> usize {
        let before = self.obligations.len();
        self.obligations.retain(|(vc, _)| pred(vc));
        before - self.obligations.len()
    }

    /// Runs every obligation, in registration order, timing each one.
    ///
    /// Each check runs under `catch_unwind`: a panicking check becomes a
    /// `VcStatus::Failed` outcome with the panic payload as the
    /// counterexample, never an aborted audit.
    pub fn run(self) -> VcReport {
        let mut outcomes = Vec::with_capacity(self.obligations.len());
        for (vc, check) in self.obligations {
            outcomes.push(run_one(vc, check));
        }
        VcReport { outcomes }
    }

    /// Runs the obligations satisfying `pred`, dropping the rest — the
    /// selection entry point the incremental audit uses, so
    /// registration code never needs to know about the dependency map.
    pub fn run_subset<P: FnMut(&Vc) -> bool>(mut self, pred: P) -> VcReport {
        self.retain(pred);
        self.run()
    }

    /// Runs every obligation on a pool of `threads` worker threads.
    ///
    /// Workers claim obligations from a shared queue in registration
    /// order; per-VC timing, `catch_unwind` isolation, and the reported
    /// outcome order are identical to [`run`](Self::run) — the report
    /// is sorted back into registration order regardless of completion
    /// order, so serial and parallel runs are byte-identical apart from
    /// the measured durations.
    pub fn run_parallel(self, threads: usize) -> VcReport {
        let n = self.obligations.len();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 || n <= 1 {
            return self.run();
        }
        let queue: Mutex<VecDeque<(usize, Vc, Check)>> = Mutex::new(
            self.obligations
                .into_iter()
                .enumerate()
                .map(|(i, (vc, check))| (i, vc, check))
                .collect(),
        );
        let (tx, rx) = mpsc::channel::<(usize, VcOutcome)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let queue = &queue;
                let tx = tx.clone();
                scope.spawn(move || loop {
                    // Claim under the lock, run outside it: the queue
                    // hold time is a pop, not a check.
                    let next = match queue.lock() {
                        Ok(mut q) => q.pop_front(),
                        Err(_) => None, // A worker panicked mid-pop; drain nothing.
                    };
                    let Some((idx, vc, check)) = next else { break };
                    if tx.send((idx, run_one(vc, check))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });
        let mut slots: Vec<Option<VcOutcome>> = (0..n).map(|_| None).collect();
        for (idx, outcome) in rx {
            slots[idx] = Some(outcome);
        }
        VcReport {
            // A missing slot means a worker died between claiming and
            // sending — surface it as a failure rather than dropping
            // the obligation silently.
            outcomes: slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    s.unwrap_or(VcOutcome {
                        vc: Vc {
                            name: format!("<lost obligation {i}>"),
                            module: "engine",
                            kind: VcKind::Property,
                        },
                        duration: Duration::ZERO,
                        status: VcStatus::Failed("worker lost the outcome".into()),
                    })
                })
                .collect(),
        }
    }
}

/// Runs one check, timing it and converting a panic into a failure.
fn run_one(vc: Vc, check: Check) -> VcOutcome {
    let start = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(check));
    let duration = start.elapsed();
    let status = match result {
        Ok(Ok(())) => VcStatus::Passed,
        Ok(Err(msg)) => VcStatus::Failed(msg),
        Err(payload) => VcStatus::Failed(format!("check panicked: {}", panic_message(&*payload))),
    };
    VcOutcome { vc, duration, status }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// The result of running a set of verification conditions.
#[derive(Clone, Debug, Default)]
pub struct VcReport {
    /// Per-VC outcomes, in execution order.
    pub outcomes: Vec<VcOutcome>,
}

impl VcReport {
    /// Total number of VCs.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Failed VCs.
    pub fn failures(&self) -> Vec<&VcOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status != VcStatus::Passed)
            .collect()
    }

    /// True when every VC passed.
    pub fn all_passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Sum of all VC durations (the paper's "total time to verify",
    /// ≈ 40 s for their prototype).
    pub fn total_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.duration).sum()
    }

    /// The slowest single VC (the paper: "all functions are individually
    /// verified in at most 11 seconds").
    pub fn max_time(&self) -> Duration {
        self.outcomes
            .iter()
            .map(|o| o.duration)
            .max()
            .unwrap_or_default()
    }

    /// Sorted VC durations, the raw series behind the Figure 1a CDF.
    pub fn sorted_durations(&self) -> Vec<Duration> {
        let mut d: Vec<Duration> = self.outcomes.iter().map(|o| o.duration).collect();
        d.sort();
        d
    }

    /// Returns `(duration, cumulative_fraction)` points of the CDF.
    pub fn cdf(&self) -> Vec<(Duration, f64)> {
        let d = self.sorted_durations();
        let n = d.len().max(1) as f64;
        d.into_iter()
            .enumerate()
            .map(|(i, t)| (t, (i + 1) as f64 / n))
            .collect()
    }

    /// The duration below which `fraction` of VCs complete.
    pub fn percentile(&self, fraction: f64) -> Duration {
        let d = self.sorted_durations();
        if d.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((fraction * d.len() as f64).ceil() as usize).clamp(1, d.len()) - 1;
        d[idx]
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: VcReport) {
        self.outcomes.extend(other.outcomes);
    }

    /// Counts VCs per kind.
    pub fn count_by_kind(&self) -> Vec<(VcKind, usize)> {
        let kinds = [
            VcKind::Invariant,
            VcKind::Refinement,
            VcKind::Interpretation,
            VcKind::Marshalling,
            VcKind::RaceFreedom,
            VcKind::Linearizability,
            VcKind::Property,
        ];
        kinds
            .into_iter()
            .map(|k| (k, self.outcomes.iter().filter(|o| o.vc.kind == k).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Renders a one-line summary in the style of the paper's Section 5.
    pub fn summary(&self) -> String {
        format!(
            "{} verification conditions, total {:.2?}, max {:.2?}, median {:.2?}, failures {}",
            self.total(),
            self.total_time(),
            self.max_time(),
            self.percentile(0.5),
            self.failures().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(n: usize, fail_at: Option<usize>) -> VcEngine {
        let mut e = VcEngine::new();
        for i in 0..n {
            let fail = fail_at == Some(i);
            e.register("test", VcKind::Property, format!("vc_{i}"), move || {
                if fail {
                    Err("boom".into())
                } else {
                    Ok(())
                }
            });
        }
        e
    }

    #[test]
    fn runs_all_and_times_them() {
        let report = engine_with(5, None).run();
        assert_eq!(report.total(), 5);
        assert!(report.all_passed());
        assert!(report.total_time() >= report.max_time());
    }

    #[test]
    fn failures_are_reported_with_message() {
        let report = engine_with(3, Some(1)).run();
        assert!(!report.all_passed());
        let fails = report.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].vc.name, "vc_1");
        match &fails[0].status {
            VcStatus::Failed(m) => assert_eq!(m, "boom"),
            _ => panic!(),
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut e = VcEngine::new();
        for i in 0..10u64 {
            e.register("test", VcKind::Invariant, format!("sleepy_{i}"), move || {
                std::thread::sleep(Duration::from_micros(i * 10));
                Ok(())
            });
        }
        let report = e.run();
        let cdf = report.cdf();
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_bounds() {
        let report = engine_with(4, None).run();
        assert!(report.percentile(0.0) <= report.percentile(1.0));
        assert_eq!(report.percentile(1.0), report.max_time());
    }

    #[test]
    fn merge_concatenates() {
        let a = engine_with(2, None).run();
        let mut b = engine_with(3, None).run();
        b.merge(a);
        assert_eq!(b.total(), 5);
    }

    #[test]
    fn count_by_kind_filters_zeroes() {
        let report = engine_with(2, None).run();
        let counts = report.count_by_kind();
        assert_eq!(counts, vec![(VcKind::Property, 2)]);
    }

    #[test]
    fn summary_mentions_count() {
        let report = engine_with(7, None).run();
        assert!(report.summary().contains("7 verification conditions"));
    }

    /// A mixed population with one deterministic failure and one panic,
    /// used by the serial/parallel equivalence tests.
    fn mixed_engine() -> VcEngine {
        let mut e = VcEngine::new();
        for i in 0..12u64 {
            e.register("test", VcKind::Property, format!("mixed_{i}"), move || match i {
                3 => Err(format!("injected failure at {i}")),
                7 => panic!("injected panic at {i}"),
                _ => Ok(()),
            });
        }
        e
    }

    #[test]
    fn panicking_check_becomes_failure_not_abort() {
        // Regression: `run` used to call checks bare, so one panicking
        // obligation aborted the whole audit process mid-run.
        let report = mixed_engine().run();
        assert_eq!(report.total(), 12, "every obligation after the panic still ran");
        let fails = report.failures();
        assert_eq!(fails.len(), 2);
        assert_eq!(fails[1].vc.name, "mixed_7");
        match &fails[1].status {
            VcStatus::Failed(m) => assert_eq!(m, "check panicked: injected panic at 7"),
            _ => panic!(),
        }
    }

    #[test]
    fn parallel_matches_serial_order_and_messages() {
        let serial = mixed_engine().run();
        for threads in [2, 4, 32] {
            let parallel = mixed_engine().run_parallel(threads);
            let s: Vec<(&str, &VcStatus)> = serial
                .outcomes
                .iter()
                .map(|o| (o.vc.name.as_str(), &o.status))
                .collect();
            let p: Vec<(&str, &VcStatus)> = parallel
                .outcomes
                .iter()
                .map(|o| (o.vc.name.as_str(), &o.status))
                .collect();
            assert_eq!(s, p, "ordering and statuses identical at {threads} threads");
        }
    }

    #[test]
    fn parallel_single_thread_is_serial() {
        let report = mixed_engine().run_parallel(1);
        assert_eq!(report.total(), 12);
        assert_eq!(report.failures().len(), 2);
    }

    #[test]
    fn retain_and_run_subset_preserve_order() {
        let mut e = engine_with(10, None);
        let dropped = e.retain(|vc| vc.name.ends_with('3') || vc.name.ends_with('8'));
        assert_eq!(dropped, 8);
        let names = e.names();
        assert_eq!(names, ["vc_3", "vc_8"]);

        let report = engine_with(10, Some(8)).run_subset(|vc| vc.name.ends_with('8'));
        assert_eq!(report.total(), 1);
        assert!(!report.all_passed());
    }

    #[test]
    fn merge_and_percentile_stable_across_modes() {
        let a = mixed_engine().run();
        let b = mixed_engine().run_parallel(4);
        let mut merged = a.clone();
        merged.merge(b.clone());
        assert_eq!(merged.total(), a.total() + b.total());
        // Percentiles of the merged report are drawn from the union of
        // durations and stay monotone.
        let mut prev = Duration::ZERO;
        for f in [0.1, 0.5, 0.9, 1.0] {
            let q = merged.percentile(f);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(merged.percentile(1.0), merged.max_time());
        assert!(merged.max_time() >= a.max_time().min(b.max_time()));
    }
}
