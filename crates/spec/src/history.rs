//! Concurrent history recording.
//!
//! To check linearizability of node replication (Section 4.3) we record
//! *histories*: per-thread invocation and response events with a global
//! order. The recorder is lock-free on the fast path (a per-thread vector
//! indexed by a pre-registered thread id, with a global sequence counter)
//! so that recording perturbs the concurrent execution as little as
//! possible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The two kinds of events in a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<Op, Ret> {
    /// An operation was invoked.
    Invoke(Op),
    /// The most recent invocation on this thread returned.
    Response(Ret),
}

/// One event: which thread, at which global timestamp, did what.
#[derive(Clone, Debug)]
pub struct Event<Op, Ret> {
    /// Registered thread index.
    pub thread: usize,
    /// Globally unique, monotonically assigned timestamp.
    pub timestamp: u64,
    /// Invocation or response payload.
    pub kind: EventKind<Op, Ret>,
}

/// A complete history: events sorted by timestamp.
#[derive(Clone, Debug, Default)]
pub struct History<Op, Ret> {
    /// All events, sorted by `timestamp`.
    pub events: Vec<Event<Op, Ret>>,
}

impl<Op: Clone, Ret: Clone> History<Op, Ret> {
    /// Splits the history into per-thread matched (invoke, response)
    /// pairs plus any pending (unmatched) invocations.
    ///
    /// Returns `(completed, pending)` where `completed[i]` is
    /// `(thread, invoke_ts, response_ts, op, ret)`.
    #[allow(clippy::type_complexity)]
    pub fn complete_ops(&self) -> (Vec<(usize, u64, u64, Op, Ret)>, Vec<(usize, u64, Op)>) {
        let mut open: std::collections::HashMap<usize, (u64, Op)> = Default::default();
        let mut done = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Invoke(op) => {
                    let prev = open.insert(e.thread, (e.timestamp, op.clone()));
                    assert!(
                        prev.is_none(),
                        "thread {} invoked twice without responding",
                        e.thread
                    );
                }
                EventKind::Response(ret) => {
                    let (ts, op) = open
                        .remove(&e.thread)
                        .unwrap_or_else(|| panic!("response without invoke on thread {}", e.thread));
                    done.push((e.thread, ts, e.timestamp, op, ret.clone()));
                }
            }
        }
        let pending = open
            .into_iter()
            .map(|(t, (ts, op))| (t, ts, op))
            .collect();
        (done, pending)
    }
}

/// A thread-safe recorder producing a [`History`].
///
/// Threads call [`invoke`](Recorder::invoke) before an operation and
/// [`response`](Recorder::response) after; a global atomic counter orders
/// the events. Using a mutex-protected vector keeps the implementation
/// simple; the timestamp is taken *inside* the critical section so the
/// recorded order is exactly the order in which events entered the log.
pub struct Recorder<Op, Ret> {
    seq: AtomicU64,
    events: Mutex<Vec<Event<Op, Ret>>>,
}

impl<Op: Clone, Ret: Clone> Default for Recorder<Op, Ret> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Op: Clone, Ret: Clone> Recorder<Op, Ret> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Records an invocation by `thread`.
    pub fn invoke(&self, thread: usize, op: Op) {
        self.push(thread, EventKind::Invoke(op));
    }

    /// Records a response by `thread`.
    pub fn response(&self, thread: usize, ret: Ret) {
        self.push(thread, EventKind::Response(ret));
    }

    fn push(&self, thread: usize, kind: EventKind<Op, Ret>) {
        let mut guard = self.events.lock().unwrap();
        let timestamp = self.seq.fetch_add(1, Ordering::Relaxed);
        guard.push(Event {
            thread,
            timestamp,
            kind,
        });
    }

    /// Consumes the recorder, returning the ordered history.
    pub fn finish(self) -> History<Op, Ret> {
        let mut events = self.events.into_inner().unwrap();
        events.sort_by_key(|e| e.timestamp);
        History { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_order() {
        let r = Recorder::new();
        r.invoke(0, "a");
        r.response(0, 1u32);
        r.invoke(1, "b");
        r.response(1, 2);
        let h = r.finish();
        assert_eq!(h.events.len(), 4);
        let (done, pending) = h.complete_ops();
        assert!(pending.is_empty());
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].3, "a");
        assert_eq!(done[0].4, 1);
    }

    #[test]
    fn pending_invocations_are_reported() {
        let r = Recorder::new();
        r.invoke(0, "a");
        r.invoke(1, "b");
        r.response(1, 7u32);
        let h = r.finish();
        let (done, pending) = h.complete_ops();
        assert_eq!(done.len(), 1);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, 0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    r.invoke(t, i);
                    r.response(t, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let h = Arc::try_unwrap(r).ok().unwrap().finish();
        // Timestamps strictly increasing.
        for w in h.events.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
        }
        let (done, pending) = h.complete_ops();
        assert_eq!(done.len(), 400);
        assert!(pending.is_empty());
    }
}
