//! Randomized tests of the hardware model's encoding invariants, driven
//! by the in-tree deterministic [`SpecRng`] (formerly proptest-based).

use veros_spec::rng::SpecRng;
use veros_hw::{PAddr, PhysMem, PtEntry, PtFlags, VAddr, PAGE_4K};

const CASES: usize = 256;

/// PtEntry round-trips any encodable (addr, flags) pair.
#[test]
fn pt_entry_round_trips() {
    let mut rng = SpecRng::for_obligation("hw::tests::pt_entry_round_trips");
    for _ in 0..CASES {
        let frame = rng.below(1 << 40);
        let flag_bits = rng.below(512);
        let nx = rng.chance(1, 2);
        let addr = PAddr(frame * PAGE_4K);
        let flags = PtFlags(flag_bits | if nx { PtFlags::NX.0 } else { 0 });
        let e = PtEntry::new(addr, flags);
        assert_eq!(e.addr(), addr);
        assert_eq!(e.flags().0, flags.0);
    }
}

/// Virtual-address index decomposition is a bijection with reassembly
/// for canonical addresses.
#[test]
fn vaddr_indices_round_trip() {
    let mut rng = SpecRng::for_obligation("hw::tests::vaddr_indices_round_trip");
    for _ in 0..CASES {
        let (l4, l3, l2, l1) = (rng.index(512), rng.index(512), rng.index(512), rng.index(512));
        let va = VAddr::from_indices(l4, l3, l2, l1);
        assert!(va.is_canonical());
        assert_eq!(va.pml4_index(), l4);
        assert_eq!(va.pdpt_index(), l3);
        assert_eq!(va.pd_index(), l2);
        assert_eq!(va.pt_index(), l1);
        assert_eq!(va.page_offset(), 0);
    }
}

/// Any decomposition of a canonical address reassembles to itself.
#[test]
fn vaddr_decompose_recompose() {
    let mut rng = SpecRng::for_obligation("hw::tests::vaddr_decompose_recompose");
    for _ in 0..CASES {
        let raw = rng.below(1u64 << 47);
        let va = VAddr(raw);
        let re = ((va.pml4_index() as u64) << 39)
            | ((va.pdpt_index() as u64) << 30)
            | ((va.pd_index() as u64) << 21)
            | ((va.pt_index() as u64) << 12)
            | va.page_offset();
        assert_eq!(re, raw);
    }
}

/// Physical memory: writes then reads observe exactly what was written,
/// for arbitrary (possibly overlapping, cross-frame) placements — last
/// write wins.
#[test]
fn physmem_last_write_wins() {
    let mut rng = SpecRng::for_obligation("hw::tests::physmem_last_write_wins");
    for _ in 0..64 {
        let mut mem = PhysMem::new(16);
        let mut shadow = vec![0u8; (16 * PAGE_4K) as usize];
        for _ in 0..(1 + rng.index(9)) {
            let len = 1 + rng.index(63);
            let addr = rng.below(16 * PAGE_4K - 64);
            let mut data = vec![0u8; len];
            rng.fill(&mut data);
            mem.write_bytes(PAddr(addr), &data);
            shadow[addr as usize..addr as usize + len].copy_from_slice(&data);
        }
        let mut all = vec![0u8; shadow.len()];
        mem.read_bytes(PAddr(0), &mut all);
        assert_eq!(all, shadow);
    }
}

/// Alignment helpers: align_down is idempotent, dominated by the input,
/// and within one alignment unit of it.
#[test]
fn alignment_helpers_consistent() {
    let mut rng = SpecRng::for_obligation("hw::tests::alignment_helpers_consistent");
    for _ in 0..CASES {
        let addr = rng.below(1u64 << 47);
        let shift = rng.below(21) as u32;
        let align = 1u64 << (12 + shift % 9);
        let down = VAddr(addr).align_down(align);
        assert!(down.0 <= addr);
        assert!(down.is_aligned(align));
        assert!(addr - down.0 < align);
    }
}
