//! Property-based tests of the hardware model's encoding invariants.

use proptest::prelude::*;
use veros_hw::{PAddr, PhysMem, PtEntry, PtFlags, VAddr, PAGE_4K};

proptest! {
    /// PtEntry round-trips any encodable (addr, flags) pair.
    #[test]
    fn pt_entry_round_trips(frame in 0u64..(1 << 40), flag_bits in 0u64..512, nx: bool) {
        let addr = PAddr(frame * PAGE_4K);
        let flags = PtFlags(flag_bits | if nx { PtFlags::NX.0 } else { 0 });
        let e = PtEntry::new(addr, flags);
        prop_assert_eq!(e.addr(), addr);
        prop_assert_eq!(e.flags().0, flags.0);
    }

    /// Virtual-address index decomposition is a bijection with
    /// reassembly for canonical addresses.
    #[test]
    fn vaddr_indices_round_trip(l4 in 0usize..512, l3 in 0usize..512, l2 in 0usize..512, l1 in 0usize..512) {
        let va = VAddr::from_indices(l4, l3, l2, l1);
        prop_assert!(va.is_canonical());
        prop_assert_eq!(va.pml4_index(), l4);
        prop_assert_eq!(va.pdpt_index(), l3);
        prop_assert_eq!(va.pd_index(), l2);
        prop_assert_eq!(va.pt_index(), l1);
        prop_assert_eq!(va.page_offset(), 0);
    }

    /// Any decomposition of a canonical address reassembles to itself.
    #[test]
    fn vaddr_decompose_recompose(raw in 0u64..(1u64 << 47)) {
        let va = VAddr(raw);
        let re = ((va.pml4_index() as u64) << 39)
            | ((va.pdpt_index() as u64) << 30)
            | ((va.pd_index() as u64) << 21)
            | ((va.pt_index() as u64) << 12)
            | va.page_offset();
        prop_assert_eq!(re, raw);
    }

    /// Physical memory: writes then reads observe exactly what was
    /// written, for arbitrary (possibly overlapping, cross-frame)
    /// placements — last write wins.
    #[test]
    fn physmem_last_write_wins(
        writes in prop::collection::vec((0u64..16 * PAGE_4K - 64, prop::collection::vec(any::<u8>(), 1..64)), 1..10)
    ) {
        let mut mem = PhysMem::new(16);
        let mut shadow = vec![0u8; (16 * PAGE_4K) as usize];
        for (addr, data) in &writes {
            mem.write_bytes(PAddr(*addr), data);
            shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        let mut all = vec![0u8; shadow.len()];
        mem.read_bytes(PAddr(0), &mut all);
        prop_assert_eq!(all, shadow);
    }

    /// The ones'-complement checksum detects any single-bit flip in the
    /// checksummed region (a standard property of the IP checksum for
    /// 16-bit-aligned data).
    #[test]
    fn alignment_helpers_consistent(addr in 0u64..(1u64 << 47), shift in 0u32..21) {
        let align = 1u64 << (12 + shift % 9);
        let down = VAddr(addr).align_down(align);
        prop_assert!(down.0 <= addr);
        prop_assert!(down.is_aligned(align));
        prop_assert!(addr - down.0 < align);
    }
}
