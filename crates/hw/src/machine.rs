//! Single-core machine: memory accesses through address translation.
//!
//! This composes physical memory, the walker, and the TLB into the
//! execution environment of the paper's prototype: "a single-core x86-64
//! processor ... walking the page table, or using cached translations
//! from the TLB". User-level reads and writes go through [`Machine::read`]
//! and [`Machine::write`], which translate like the MMU: TLB first, walk
//! on miss, fill on success, fault on failure or permission violation.

use crate::addr::{PAddr, VAddr};
use crate::physmem::PhysMem;
use crate::tlb::Tlb;
use crate::walker::{walk, Mapping, WalkError};

/// The kind of access being performed, for permission checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch (subject to NX).
    Execute,
}

/// A memory access fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// Translation failed.
    PageFault {
        /// Faulting virtual address.
        va: VAddr,
        /// Underlying walk error.
        cause: WalkError,
    },
    /// Translation succeeded but the access kind is not permitted.
    Protection {
        /// Faulting virtual address.
        va: VAddr,
        /// The attempted access.
        access: AccessKind,
    },
}

/// A single-core machine with translated memory access.
pub struct Machine {
    /// Physical memory.
    pub mem: PhysMem,
    /// The TLB.
    pub tlb: Tlb,
    /// Current page-table root (CR3). `None` models paging disabled, in
    /// which case accesses fault.
    pub cr3: Option<PAddr>,
    /// When true, accesses require the user bit (models CPL 3).
    pub user_mode: bool,
}

impl Machine {
    /// Creates a machine with `frames` of physical memory and a TLB of
    /// `tlb_capacity` entries.
    pub fn new(frames: usize, tlb_capacity: usize) -> Self {
        Self {
            mem: PhysMem::new(frames),
            tlb: Tlb::new(tlb_capacity),
            cr3: None,
            user_mode: true,
        }
    }

    /// Loads a new page-table root, flushing the TLB (non-PCID reload).
    pub fn load_cr3(&mut self, cr3: PAddr) {
        self.cr3 = Some(cr3);
        self.tlb.flush_all();
    }

    /// Translates `va` for `access`, using the TLB exactly like hardware.
    pub fn translate(&mut self, va: VAddr, access: AccessKind) -> Result<Mapping, MemFault> {
        let cr3 = self.cr3.ok_or(MemFault::PageFault {
            va,
            cause: WalkError::NotMapped { level: 4 },
        })?;
        let mapping = match self.tlb.lookup(va) {
            Some(m) => m,
            None => {
                let m = walk(&self.mem, cr3, va).map_err(|cause| MemFault::PageFault { va, cause })?;
                self.tlb.fill(m);
                m
            }
        };
        let allowed = match access {
            AccessKind::Read => true,
            AccessKind::Write => mapping.writable,
            AccessKind::Execute => !mapping.nx,
        } && (!self.user_mode || mapping.user);
        if !allowed {
            return Err(MemFault::Protection { va, access });
        }
        Ok(mapping)
    }

    /// Reads `buf.len()` bytes at virtual address `va`.
    ///
    /// The access may span pages; each page is translated independently,
    /// and a fault on any page aborts the access (no partial read is
    /// reported).
    pub fn read(&mut self, va: VAddr, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = VAddr(va.0 + off as u64);
            let m = self.translate(cur, AccessKind::Read)?;
            let in_page = (m.size - (cur.0 - m.va_base.0)) as usize;
            let chunk = in_page.min(buf.len() - off);
            self.mem.read_bytes(m.translate(cur), &mut buf[off..off + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Writes `buf` at virtual address `va` (see [`read`](Self::read)).
    pub fn write(&mut self, va: VAddr, buf: &[u8]) -> Result<(), MemFault> {
        // Pre-translate every page before writing anything so a fault
        // cannot leave a torn write.
        let mut off = 0usize;
        let mut chunks: Vec<(PAddr, usize, usize)> = Vec::new();
        while off < buf.len() {
            let cur = VAddr(va.0 + off as u64);
            let m = self.translate(cur, AccessKind::Write)?;
            let in_page = (m.size - (cur.0 - m.va_base.0)) as usize;
            let chunk = in_page.min(buf.len() - off);
            chunks.push((m.translate(cur), off, chunk));
            off += chunk;
        }
        for (pa, off, chunk) in chunks {
            self.mem.write_bytes(pa, &buf[off..off + chunk]);
        }
        Ok(())
    }

    /// Reads a `u64` at `va` (little-endian).
    pub fn read_u64(&mut self, va: VAddr) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u64` at `va` (little-endian).
    pub fn write_u64(&mut self, va: VAddr, value: u64) -> Result<(), MemFault> {
        self.write(va, &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PAGE_4K, VAddr};
    use crate::paging::{PtEntry, PtFlags};

    /// Builds a two-page identity-offset table by hand: va 0x10000 ->
    /// pa 0x20000 and va 0x11000 -> pa 0x21000, second page read-only.
    fn setup() -> Machine {
        let mut m = Machine::new(128, 16);
        let cr3 = PAddr(0x1000);
        let l3 = PAddr(0x2000);
        let l2 = PAddr(0x3000);
        let l1 = PAddr(0x4000);
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        let va = VAddr(0x10000);
        m.mem.write_u64(PAddr(cr3.0 + 8 * va.pml4_index() as u64), PtEntry::new(l3, dir).0);
        m.mem.write_u64(PAddr(l3.0 + 8 * va.pdpt_index() as u64), PtEntry::new(l2, dir).0);
        m.mem.write_u64(PAddr(l2.0 + 8 * va.pd_index() as u64), PtEntry::new(l1, dir).0);
        m.mem.write_u64(
            PAddr(l1.0 + 8 * va.pt_index() as u64),
            PtEntry::new(PAddr(0x20000), dir).0,
        );
        m.mem.write_u64(
            PAddr(l1.0 + 8 * (va.pt_index() + 1) as u64),
            PtEntry::new(PAddr(0x21000), PtFlags::PRESENT | PtFlags::USER).0,
        );
        m.load_cr3(cr3);
        m
    }

    #[test]
    fn translated_read_write_round_trip() {
        let mut m = setup();
        m.write(VAddr(0x10010), b"beyond isolation").unwrap();
        let mut buf = [0u8; 16];
        m.read(VAddr(0x10010), &mut buf).unwrap();
        assert_eq!(&buf, b"beyond isolation");
        // The data physically landed at 0x20010.
        let mut phys = [0u8; 16];
        m.mem.read_bytes(PAddr(0x20010), &mut phys);
        assert_eq!(&phys, b"beyond isolation");
    }

    #[test]
    fn cross_page_access_spans_mappings() {
        let mut m = setup();
        let data: Vec<u8> = (0..64).collect();
        // Read-only second page: the write must fault...
        assert!(matches!(
            m.write(VAddr(0x10000 + PAGE_4K - 32), &data),
            Err(MemFault::Protection { .. })
        ));
        // ...without tearing: first page bytes stay zero.
        let mut buf = [0u8; 32];
        m.read(VAddr(0x10000 + PAGE_4K - 32), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        // Cross-page read succeeds (both pages readable).
        let mut buf = vec![0u8; 64];
        m.read(VAddr(0x10000 + PAGE_4K - 32), &mut buf).unwrap();
    }

    #[test]
    fn unmapped_access_page_faults() {
        let mut m = setup();
        let mut buf = [0u8; 1];
        match m.read(VAddr(0x9_0000), &mut buf) {
            Err(MemFault::PageFault { va, .. }) => assert_eq!(va, VAddr(0x9_0000)),
            other => panic!("expected page fault, got {other:?}"),
        }
    }

    #[test]
    fn write_to_readonly_page_is_protection_fault() {
        let mut m = setup();
        match m.write(VAddr(0x11000), b"x") {
            Err(MemFault::Protection { access, .. }) => assert_eq!(access, AccessKind::Write),
            other => panic!("expected protection fault, got {other:?}"),
        }
        // Reading it is fine.
        let mut b = [0u8; 1];
        m.read(VAddr(0x11000), &mut b).unwrap();
    }

    #[test]
    fn supervisor_mode_ignores_user_bit() {
        let mut m = setup();
        // Clear the user bit on page 1 by rewriting its leaf.
        let l1 = PAddr(0x4000);
        let idx = VAddr(0x10000).pt_index();
        m.mem.write_u64(
            PAddr(l1.0 + 8 * idx as u64),
            PtEntry::new(PAddr(0x20000), PtFlags::PRESENT | PtFlags::WRITABLE).0,
        );
        m.tlb.flush_all();
        let mut b = [0u8; 1];
        assert!(m.read(VAddr(0x10000), &mut b).is_err(), "user mode blocked");
        m.user_mode = false;
        assert!(m.read(VAddr(0x10000), &mut b).is_ok(), "supervisor allowed");
    }

    #[test]
    fn tlb_serves_stale_translation_until_invlpg() {
        let mut m = setup();
        let mut b = [0u8; 1];
        m.read(VAddr(0x10000), &mut b).unwrap(); // Fill the TLB.
        // Redirect the leaf to 0x30000 without invalidation.
        let l1 = PAddr(0x4000);
        let idx = VAddr(0x10000).pt_index();
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        m.mem.write_u64(PAddr(l1.0 + 8 * idx as u64), PtEntry::new(PAddr(0x30000), dir).0);
        m.mem.write_bytes(PAddr(0x20000), b"old");
        m.mem.write_bytes(PAddr(0x30000), b"new");
        let mut buf = [0u8; 3];
        m.read(VAddr(0x10000), &mut buf).unwrap();
        assert_eq!(&buf, b"old", "stale TLB entry still used");
        m.tlb.invlpg(VAddr(0x10000));
        m.read(VAddr(0x10000), &mut buf).unwrap();
        assert_eq!(&buf, b"new");
    }

    #[test]
    fn no_cr3_faults() {
        let mut m = Machine::new(16, 4);
        let mut b = [0u8; 1];
        assert!(m.read(VAddr(0x1000), &mut b).is_err());
    }

    #[test]
    fn u64_helpers_round_trip() {
        let mut m = setup();
        m.write_u64(VAddr(0x10100), 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(VAddr(0x10100)).unwrap(), 0xdead_beef_cafe_f00d);
    }
}
