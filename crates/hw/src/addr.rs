//! Address newtypes and x86-64 page geometry.
//!
//! Physical and virtual addresses are distinct types so that the page
//! table code cannot confuse them — the same discipline the verified
//! prototype gets from Verus's type system.

use std::fmt;
use std::ops::{Add, Sub};

/// Size of a 4 KiB page.
pub const PAGE_4K: u64 = 4096;
/// Size of a 2 MiB huge page.
pub const PAGE_2M: u64 = 512 * PAGE_4K;
/// Size of a 1 GiB huge page.
pub const PAGE_1G: u64 = 512 * PAGE_2M;

/// Number of entries in each x86-64 page-table level.
pub const PT_ENTRIES: usize = 512;

/// Highest bit index of the virtual address space covered by 4-level
/// paging (48-bit canonical addresses).
pub const VADDR_BITS: u32 = 48;

/// A physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

/// A virtual address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAddr({:#x})", self.0)
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Add<u64> for PAddr {
    type Output = PAddr;
    fn add(self, rhs: u64) -> PAddr {
        PAddr(self.0 + rhs)
    }
}

impl Sub<PAddr> for PAddr {
    type Output = u64;
    fn sub(self, rhs: PAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0 + rhs)
    }
}

impl Sub<VAddr> for VAddr {
    type Output = u64;
    fn sub(self, rhs: VAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl PAddr {
    /// True when aligned to `align` (a power of two).
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Rounds down to `align`.
    pub fn align_down(self, align: u64) -> PAddr {
        PAddr(self.0 & !(align - 1))
    }

    /// The frame number of a 4 KiB-aligned address.
    pub fn frame(self) -> u64 {
        self.0 / PAGE_4K
    }
}

impl VAddr {
    /// True when aligned to `align` (a power of two).
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Rounds down to `align`.
    pub fn align_down(self, align: u64) -> VAddr {
        VAddr(self.0 & !(align - 1))
    }

    /// Offset within a 4 KiB page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_4K - 1)
    }

    /// True when the address is canonical for 4-level paging: bits 48..63
    /// are copies of bit 47.
    pub fn is_canonical(self) -> bool {
        let upper = self.0 >> (VADDR_BITS - 1);
        upper == 0 || upper == (1 << (65 - VADDR_BITS)) - 1
    }

    /// Index into the PML4 (level-4 table).
    pub fn pml4_index(self) -> usize {
        ((self.0 >> 39) & 0x1ff) as usize
    }

    /// Index into the PDPT (level-3 table).
    pub fn pdpt_index(self) -> usize {
        ((self.0 >> 30) & 0x1ff) as usize
    }

    /// Index into the PD (level-2 table).
    pub fn pd_index(self) -> usize {
        ((self.0 >> 21) & 0x1ff) as usize
    }

    /// Index into the PT (level-1 table).
    pub fn pt_index(self) -> usize {
        ((self.0 >> 12) & 0x1ff) as usize
    }

    /// Reassembles a virtual address from its four table indices.
    ///
    /// The inverse of the four `*_index` functions for canonical
    /// lower-half addresses.
    pub fn from_indices(l4: usize, l3: usize, l2: usize, l1: usize) -> VAddr {
        debug_assert!(l4 < PT_ENTRIES && l3 < PT_ENTRIES && l2 < PT_ENTRIES && l1 < PT_ENTRIES);
        let raw =
            ((l4 as u64) << 39) | ((l3 as u64) << 30) | ((l2 as u64) << 21) | ((l1 as u64) << 12);
        // Sign-extend bit 47 to make the address canonical.
        if raw & (1 << 47) != 0 {
            VAddr(raw | 0xffff_0000_0000_0000)
        } else {
            VAddr(raw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_nest() {
        assert_eq!(PAGE_2M, 0x20_0000);
        assert_eq!(PAGE_1G, 0x4000_0000);
        assert_eq!(PAGE_2M / PAGE_4K, 512);
        assert_eq!(PAGE_1G / PAGE_2M, 512);
    }

    #[test]
    fn index_extraction_matches_manual_decomposition() {
        let va = VAddr(0x0000_7fff_dead_b000);
        let reassembled = ((va.pml4_index() as u64) << 39)
            | ((va.pdpt_index() as u64) << 30)
            | ((va.pd_index() as u64) << 21)
            | ((va.pt_index() as u64) << 12)
            | va.page_offset();
        assert_eq!(reassembled, va.0);
    }

    #[test]
    fn from_indices_round_trips() {
        for (l4, l3, l2, l1) in [(0, 0, 0, 0), (1, 2, 3, 4), (255, 511, 511, 511), (256, 0, 0, 0)] {
            let va = VAddr::from_indices(l4, l3, l2, l1);
            assert!(va.is_canonical(), "{va:?}");
            assert_eq!(va.pml4_index(), l4);
            assert_eq!(va.pdpt_index(), l3);
            assert_eq!(va.pd_index(), l2);
            assert_eq!(va.pt_index(), l1);
        }
    }

    #[test]
    fn canonical_boundary() {
        assert!(VAddr(0x0000_7fff_ffff_ffff).is_canonical());
        assert!(!VAddr(0x0000_8000_0000_0000).is_canonical());
        assert!(VAddr(0xffff_8000_0000_0000).is_canonical());
        assert!(!VAddr(0xfffe_8000_0000_0000).is_canonical());
    }

    #[test]
    fn alignment_helpers() {
        assert!(PAddr(0x2000).is_aligned(PAGE_4K));
        assert!(!PAddr(0x2001).is_aligned(PAGE_4K));
        assert_eq!(PAddr(0x2fff).align_down(PAGE_4K), PAddr(0x2000));
        assert_eq!(VAddr(0x2fff).align_down(PAGE_4K), VAddr(0x2000));
        assert_eq!(VAddr(0x2abc).page_offset(), 0xabc);
        assert_eq!(PAddr(0x3000).frame(), 3);
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(PAddr(0x1000) + 0x10, PAddr(0x1010));
        assert_eq!(PAddr(0x1010) - PAddr(0x1000), 0x10);
        assert_eq!(VAddr(0x1000) + 0x10, VAddr(0x1010));
        assert_eq!(VAddr(0x1010) - VAddr(0x1000), 0x10);
    }
}
