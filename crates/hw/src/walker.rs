//! The MMU's page-walk interpretation function.
//!
//! This is the heart of the hardware spec: given the physical memory and
//! a root pointer (CR3), [`walk`] computes the translation the MMU would
//! produce for one virtual address, and [`interpret_page_table`] computes
//! the *entire* logical map the in-memory page table denotes. The paper's
//! central proof obligation — "given the MMU's interpretation function of
//! the page table in memory, the implemented map, unmap and resolve
//! functions have the same behavior as their counterparts in the abstract
//! high-level spec" — is checked against exactly this function.

use std::collections::BTreeMap;

use crate::addr::{PAddr, VAddr, PAGE_1G, PAGE_2M, PAGE_4K, PT_ENTRIES};
use crate::paging::{PtEntry, PtFlags};
use crate::physmem::PhysMem;

/// A successful translation: the containing mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Virtual base of the mapped page.
    pub va_base: VAddr,
    /// Physical base the page maps to.
    pub pa_base: PAddr,
    /// Page size: 4 KiB, 2 MiB, or 1 GiB.
    pub size: u64,
    /// True when every level of the walk allows writes.
    pub writable: bool,
    /// True when every level of the walk allows user access.
    pub user: bool,
    /// True when any level of the walk disables execution.
    pub nx: bool,
}

impl Mapping {
    /// Translates an address inside this mapping.
    ///
    /// # Panics
    ///
    /// Panics when `va` is outside the mapping.
    pub fn translate(&self, va: VAddr) -> PAddr {
        assert!(va.0 >= self.va_base.0 && va.0 - self.va_base.0 < self.size);
        PAddr(self.pa_base.0 + (va.0 - self.va_base.0))
    }
}

/// Why a walk failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkError {
    /// The virtual address is not canonical.
    NonCanonical,
    /// A non-present entry was hit at the given level (4 = PML4, 1 = PT).
    NotMapped {
        /// Table level of the non-present entry.
        level: u8,
    },
}

/// Walks the 4-level page table rooted at `cr3` for `va`.
///
/// Permissions accumulate architecturally: writable/user are the
/// conjunction over all levels, NX the disjunction. The walk reads
/// physical memory exactly like the MMU does — one 8-byte entry per
/// level.
pub fn walk(mem: &PhysMem, cr3: PAddr, va: VAddr) -> Result<Mapping, WalkError> {
    if !va.is_canonical() {
        return Err(WalkError::NonCanonical);
    }
    let mut writable = true;
    let mut user = true;
    let mut nx = false;

    // Level 4.
    let l4e = read_entry(mem, cr3, va.pml4_index());
    if !l4e.is_present() {
        return Err(WalkError::NotMapped { level: 4 });
    }
    accumulate(&mut writable, &mut user, &mut nx, l4e);

    // Level 3.
    let l3e = read_entry(mem, l4e.addr(), va.pdpt_index());
    if !l3e.is_present() {
        return Err(WalkError::NotMapped { level: 3 });
    }
    accumulate(&mut writable, &mut user, &mut nx, l3e);
    if l3e.is_huge() {
        return Ok(Mapping {
            va_base: va.align_down(PAGE_1G),
            pa_base: l3e.addr(),
            size: PAGE_1G,
            writable,
            user,
            nx,
        });
    }

    // Level 2.
    let l2e = read_entry(mem, l3e.addr(), va.pd_index());
    if !l2e.is_present() {
        return Err(WalkError::NotMapped { level: 2 });
    }
    accumulate(&mut writable, &mut user, &mut nx, l2e);
    if l2e.is_huge() {
        return Ok(Mapping {
            va_base: va.align_down(PAGE_2M),
            pa_base: l2e.addr(),
            size: PAGE_2M,
            writable,
            user,
            nx,
        });
    }

    // Level 1.
    let l1e = read_entry(mem, l2e.addr(), va.pt_index());
    if !l1e.is_present() {
        return Err(WalkError::NotMapped { level: 1 });
    }
    accumulate(&mut writable, &mut user, &mut nx, l1e);
    Ok(Mapping {
        va_base: va.align_down(PAGE_4K),
        pa_base: l1e.addr(),
        size: PAGE_4K,
        writable,
        user,
        nx,
    })
}

fn read_entry(mem: &PhysMem, table: PAddr, index: usize) -> PtEntry {
    debug_assert!(index < PT_ENTRIES);
    PtEntry(mem.read_u64(PAddr(table.0 + 8 * index as u64)))
}

fn accumulate(writable: &mut bool, user: &mut bool, nx: &mut bool, e: PtEntry) {
    let f = e.flags();
    *writable &= f.contains(PtFlags::WRITABLE);
    *user &= f.contains(PtFlags::USER);
    *nx |= f.contains(PtFlags::NX);
}

/// Computes the full logical map denoted by the page table at `cr3`:
/// every present leaf mapping, keyed by virtual base address.
///
/// This is the interpretation function the refinement checks compare the
/// abstract map against. It deliberately re-reads every entry from
/// physical memory rather than consulting any implementation state.
pub fn interpret_page_table(mem: &PhysMem, cr3: PAddr) -> BTreeMap<VAddr, Mapping> {
    let mut out = BTreeMap::new();
    for l4 in 0..PT_ENTRIES {
        let l4e = read_entry(mem, cr3, l4);
        if !l4e.is_present() {
            continue;
        }
        for l3 in 0..PT_ENTRIES {
            let l3e = read_entry(mem, l4e.addr(), l3);
            if !l3e.is_present() {
                continue;
            }
            if l3e.is_huge() {
                insert_leaf(&mut out, mem, cr3, VAddr::from_indices(l4, l3, 0, 0));
                continue;
            }
            for l2 in 0..PT_ENTRIES {
                let l2e = read_entry(mem, l3e.addr(), l2);
                if !l2e.is_present() {
                    continue;
                }
                if l2e.is_huge() {
                    insert_leaf(&mut out, mem, cr3, VAddr::from_indices(l4, l3, l2, 0));
                    continue;
                }
                for l1 in 0..PT_ENTRIES {
                    let l1e = read_entry(mem, l2e.addr(), l1);
                    if l1e.is_present() {
                        insert_leaf(&mut out, mem, cr3, VAddr::from_indices(l4, l3, l2, l1));
                    }
                }
            }
        }
    }
    out
}

fn insert_leaf(out: &mut BTreeMap<VAddr, Mapping>, mem: &PhysMem, cr3: PAddr, va: VAddr) {
    // Re-walk through the front door so the inserted mapping carries the
    // same accumulated permissions a real translation would.
    // lint: allow(panic-freedom) — the caller just observed a present
    // leaf for `va` in this same (immutable) memory, so the walk
    // succeeds by construction.
    let m = walk(mem, cr3, va).expect("leaf just observed present");
    out.insert(m.va_base, m);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a page table mapping one 4 KiB page, without using any
    /// page-table implementation — the walker must be independently
    /// trustworthy since every refinement check leans on it.
    fn build_single_4k(mem: &mut PhysMem, va: VAddr, pa: PAddr, flags: PtFlags) -> PAddr {
        let cr3 = PAddr(0x1000);
        let l3 = PAddr(0x2000);
        let l2 = PAddr(0x3000);
        let l1 = PAddr(0x4000);
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        mem.write_u64(PAddr(cr3.0 + 8 * va.pml4_index() as u64), PtEntry::new(l3, dir).0);
        mem.write_u64(PAddr(l3.0 + 8 * va.pdpt_index() as u64), PtEntry::new(l2, dir).0);
        mem.write_u64(PAddr(l2.0 + 8 * va.pd_index() as u64), PtEntry::new(l1, dir).0);
        mem.write_u64(
            PAddr(l1.0 + 8 * va.pt_index() as u64),
            PtEntry::new(pa, flags | PtFlags::PRESENT).0,
        );
        cr3
    }

    #[test]
    fn walk_finds_hand_built_mapping() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x7f00_0000_3000);
        let pa = PAddr(0x2_8000);
        let cr3 = build_single_4k(&mut mem, va, pa, PtFlags::WRITABLE | PtFlags::USER);
        let m = walk(&mem, cr3, va).unwrap();
        assert_eq!(m.va_base, va);
        assert_eq!(m.pa_base, pa);
        assert_eq!(m.size, PAGE_4K);
        assert!(m.writable && m.user && !m.nx);
        // An address inside the page translates with its offset.
        assert_eq!(m.translate(va + 0x123), PAddr(pa.0 + 0x123));
    }

    #[test]
    fn permissions_accumulate_conjunctively() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x5000_0000);
        // Leaf says writable, but we will clear W at level 2 below.
        let cr3 = build_single_4k(&mut mem, va, PAddr(0x8000), PtFlags::WRITABLE | PtFlags::USER);
        // Rewrite the L2 entry without the writable bit.
        let l2 = PAddr(0x3000);
        let e = PtEntry(mem.read_u64(PAddr(l2.0 + 8 * va.pd_index() as u64)));
        mem.write_u64(
            PAddr(l2.0 + 8 * va.pd_index() as u64),
            PtEntry::new(e.addr(), e.flags().without(PtFlags::WRITABLE)).0,
        );
        let m = walk(&mem, cr3, va).unwrap();
        assert!(!m.writable, "W must AND across levels");
        assert!(m.user);
    }

    #[test]
    fn nx_accumulates_disjunctively() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x5000_0000);
        let cr3 = build_single_4k(&mut mem, va, PAddr(0x8000), PtFlags::WRITABLE | PtFlags::USER | PtFlags::NX);
        let m = walk(&mem, cr3, va).unwrap();
        assert!(m.nx);
    }

    #[test]
    fn unmapped_reports_level() {
        let mem = PhysMem::new(64);
        let cr3 = PAddr(0x1000);
        assert_eq!(
            walk(&mem, cr3, VAddr(0x1234_5000)),
            Err(WalkError::NotMapped { level: 4 })
        );
    }

    #[test]
    fn non_canonical_faults() {
        let mem = PhysMem::new(16);
        assert_eq!(
            walk(&mem, PAddr(0x1000), VAddr(0x0000_8000_0000_0000)),
            Err(WalkError::NonCanonical)
        );
    }

    #[test]
    fn huge_2m_walks_stop_at_level_2() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x4060_0000); // 2 MiB aligned.
        let cr3 = PAddr(0x1000);
        let l3 = PAddr(0x2000);
        let l2 = PAddr(0x3000);
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        mem.write_u64(PAddr(cr3.0 + 8 * va.pml4_index() as u64), PtEntry::new(l3, dir).0);
        mem.write_u64(PAddr(l3.0 + 8 * va.pdpt_index() as u64), PtEntry::new(l2, dir).0);
        mem.write_u64(
            PAddr(l2.0 + 8 * va.pd_index() as u64),
            PtEntry::new(PAddr(0x20_0000), dir | PtFlags::HUGE).0,
        );
        let m = walk(&mem, cr3, va + 0x12345).unwrap();
        assert_eq!(m.size, PAGE_2M);
        assert_eq!(m.va_base, va);
        assert_eq!(m.pa_base, PAddr(0x20_0000));
        assert_eq!(m.translate(va + 0x12345), PAddr(0x20_0000 + 0x12345));
    }

    #[test]
    fn huge_1g_walks_stop_at_level_3() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x1_4000_0000); // 1 GiB aligned (5 GiB).
        let cr3 = PAddr(0x1000);
        let l3 = PAddr(0x2000);
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        mem.write_u64(PAddr(cr3.0 + 8 * va.pml4_index() as u64), PtEntry::new(l3, dir).0);
        mem.write_u64(
            PAddr(l3.0 + 8 * va.pdpt_index() as u64),
            PtEntry::new(PAddr(PAGE_1G), dir | PtFlags::HUGE).0,
        );
        let m = walk(&mem, cr3, va + 0xabcdef).unwrap();
        assert_eq!(m.size, PAGE_1G);
        assert_eq!(m.pa_base, PAddr(PAGE_1G));
    }

    #[test]
    fn interpret_enumerates_exactly_the_present_leaves() {
        let mut mem = PhysMem::new(64);
        let va = VAddr(0x7f00_0000_3000);
        let cr3 = build_single_4k(&mut mem, va, PAddr(0x2_8000), PtFlags::WRITABLE | PtFlags::USER);
        // Add a second leaf in the same L1 table.
        let l1 = PAddr(0x4000);
        let va2 = VAddr(va.0 + PAGE_4K);
        mem.write_u64(
            PAddr(l1.0 + 8 * va2.pt_index() as u64),
            PtEntry::new(PAddr(0x3_0000), PtFlags::PRESENT).0,
        );
        let map = interpret_page_table(&mem, cr3);
        assert_eq!(map.len(), 2);
        assert_eq!(map[&va].pa_base, PAddr(0x2_8000));
        assert_eq!(map[&va2].pa_base, PAddr(0x3_0000));
        // The second mapping has no W/U at the leaf: conjunction is false.
        assert!(!map[&va2].writable && !map[&va2].user);
    }

    #[test]
    fn interpret_of_empty_root_is_empty() {
        let mem = PhysMem::new(16);
        assert!(interpret_page_table(&mem, PAddr(0x1000)).is_empty());
    }
}
