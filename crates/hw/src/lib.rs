//! Hardware model for the `veros` stack.
//!
//! The paper's prototype verifies page table code against a *hardware
//! spec*: "a description of how the MMU translates memory addresses by
//! interpreting the page table bits in memory, i.e., walking the page
//! table, or using cached translations from the TLB" (Section 5). That
//! spec is itself a model — this crate implements it executably:
//!
//! * [`addr`] — physical/virtual address newtypes and page geometry.
//! * [`physmem`] — simulated physical memory with frame-granular
//!   allocation tracking.
//! * [`paging`] — bit-accurate x86-64 page-table entry layout.
//! * [`walker`] — the MMU's 4-level page-walk interpretation function.
//! * [`tlb`] — a translation-lookaside-buffer model with explicit
//!   invalidation, so stale-translation semantics are checkable.
//! * [`machine`] — a single-core machine tying memory accesses to
//!   translation (the environment the page table prototype runs in).
//! * [`disk`] — a block device with a volatile write cache and crash
//!   injection, the substrate for the journaled filesystem.
//! * [`nic`] — a network interface with frame queues, the substrate for
//!   the network stack.
//! * [`clock`] — a virtual clock driving timer interrupts and the
//!   scheduler.

pub mod addr;
pub mod clock;
pub mod disk;
pub mod machine;
pub mod nic;
pub mod paging;
pub mod physmem;
pub mod tlb;
pub mod walker;

pub use addr::{PAddr, VAddr, PAGE_1G, PAGE_2M, PAGE_4K};
pub use clock::VirtualClock;
pub use disk::{DiskError, SimDisk, SECTOR_SIZE};
pub use machine::{AccessKind, Machine, MemFault};
pub use nic::SimNic;
pub use paging::{PtEntry, PtFlags};
pub use physmem::{FrameSource, PhysMem, StackFrameSource};
pub use tlb::{Tlb, TlbEntry};
pub use walker::{interpret_page_table, walk, Mapping, WalkError};
