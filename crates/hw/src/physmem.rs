//! Simulated physical memory.
//!
//! Frame-granular, lazily materialized memory. The page-table walker, the
//! page-table implementations, and the kernel's frame allocator all
//! operate on this model. Accesses are bounds-checked; reading memory
//! that was never written returns zeros, matching RAM that the
//! environment guarantees to be zeroed.

use crate::addr::{PAddr, PAGE_4K};

/// A source of free 4 KiB frames.
///
/// The page-table implementation allocates directory frames through this
/// trait so it can run both against the simple test allocator here and
/// against the kernel's buddy allocator.
pub trait FrameSource {
    /// Allocates a zeroed, 4 KiB-aligned frame, or `None` when exhausted.
    fn alloc_frame(&mut self) -> Option<PAddr>;
    /// Returns a frame to the source.
    ///
    /// The frame must have come from `alloc_frame` and must not be used
    /// after being freed.
    fn free_frame(&mut self, frame: PAddr);

    /// Allocates `frames` physically contiguous 4 KiB frames, returning
    /// the base. Each frame is individually freeable with `free_frame`.
    ///
    /// Sources without contiguity support may decline any multi-frame
    /// request; the default declines everything beyond a single frame.
    fn alloc_contiguous(&mut self, frames: usize) -> Option<PAddr> {
        if frames == 1 {
            self.alloc_frame()
        } else {
            None
        }
    }
}

/// Byte-addressable simulated physical memory.
#[derive(Clone)]
pub struct PhysMem {
    frames: Vec<Option<Box<[u8; PAGE_4K as usize]>>>,
}

impl PhysMem {
    /// Creates a memory of `frames` 4 KiB frames, all zeroed.
    pub fn new(frames: usize) -> Self {
        Self {
            frames: (0..frames).map(|_| None).collect(),
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.frames.len() as u64 * PAGE_4K
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// True when `pa..pa+len` lies inside the memory.
    pub fn contains(&self, pa: PAddr, len: u64) -> bool {
        pa.0.checked_add(len).is_some_and(|end| end <= self.size())
    }

    fn frame_mut(&mut self, index: usize) -> &mut [u8; PAGE_4K as usize] {
        self.frames[index].get_or_insert_with(|| Box::new([0; PAGE_4K as usize]))
    }

    /// Reads `buf.len()` bytes starting at `pa`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the memory — physical accesses in
    /// the model are issued by the kernel/walker, which must stay in
    /// bounds; going outside is a model bug, not a recoverable error.
    pub fn read_bytes(&self, pa: PAddr, buf: &mut [u8]) {
        assert!(
            self.contains(pa, buf.len() as u64),
            "physical read out of bounds: {pa} + {}",
            buf.len()
        );
        let mut off = 0usize;
        while off < buf.len() {
            let addr = pa.0 + off as u64;
            let frame = (addr / PAGE_4K) as usize;
            let inner = (addr % PAGE_4K) as usize;
            let chunk = ((PAGE_4K as usize) - inner).min(buf.len() - off);
            match &self.frames[frame] {
                Some(data) => buf[off..off + chunk].copy_from_slice(&data[inner..inner + chunk]),
                None => buf[off..off + chunk].fill(0),
            }
            off += chunk;
        }
    }

    /// Writes `buf` starting at `pa`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the memory (see [`Self::read_bytes`]
    /// (Self::read_bytes)).
    pub fn write_bytes(&mut self, pa: PAddr, buf: &[u8]) {
        assert!(
            self.contains(pa, buf.len() as u64),
            "physical write out of bounds: {pa} + {}",
            buf.len()
        );
        let mut off = 0usize;
        while off < buf.len() {
            let addr = pa.0 + off as u64;
            let frame = (addr / PAGE_4K) as usize;
            let inner = (addr % PAGE_4K) as usize;
            let chunk = ((PAGE_4K as usize) - inner).min(buf.len() - off);
            self.frame_mut(frame)[inner..inner + chunk].copy_from_slice(&buf[off..off + chunk]);
            off += chunk;
        }
    }

    /// Reads a little-endian `u64` at `pa` (must be 8-byte aligned, as
    /// page-table entries are).
    pub fn read_u64(&self, pa: PAddr) -> u64 {
        debug_assert!(pa.is_aligned(8), "unaligned PTE read at {pa}");
        let mut b = [0u8; 8];
        self.read_bytes(pa, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `pa` (must be 8-byte aligned).
    pub fn write_u64(&mut self, pa: PAddr, value: u64) {
        debug_assert!(pa.is_aligned(8), "unaligned PTE write at {pa}");
        self.write_bytes(pa, &value.to_le_bytes());
    }

    /// Zeroes the 4 KiB frame containing `pa`.
    pub fn zero_frame(&mut self, pa: PAddr) {
        let frame = (pa.0 / PAGE_4K) as usize;
        assert!(frame < self.frames.len());
        self.frames[frame] = None;
    }

    /// Returns the number of frames that have been materialized (written
    /// at least once and not zeroed since). Used by tests to check the
    /// page table frees its directory frames.
    pub fn materialized_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }
}

/// A trivial stack-based frame source handing out frames from a fixed
/// physical range.
pub struct StackFrameSource {
    free: Vec<PAddr>,
    low: u64,
    high: u64,
}

impl StackFrameSource {
    /// Creates a source owning the frames in `[start, end)` (both 4 KiB
    /// aligned).
    pub fn new(start: PAddr, end: PAddr) -> Self {
        assert!(start.is_aligned(PAGE_4K) && end.is_aligned(PAGE_4K) && start <= end);
        let mut free: Vec<PAddr> = (start.0..end.0)
            .step_by(PAGE_4K as usize)
            .map(PAddr)
            .collect();
        free.reverse();
        Self {
            free,
            low: start.0,
            high: end.0,
        }
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }
}

impl FrameSource for StackFrameSource {
    fn alloc_frame(&mut self) -> Option<PAddr> {
        self.free.pop()
    }

    fn free_frame(&mut self, frame: PAddr) {
        assert!(
            frame.0 >= self.low && frame.0 < self.high && frame.is_aligned(PAGE_4K),
            "freed frame {frame} not owned by this source"
        );
        debug_assert!(!self.free.contains(&frame), "double free of {frame}");
        self.free.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = PhysMem::new(4);
        let mut buf = [0xffu8; 16];
        m.read_bytes(PAddr(0x1000), &mut buf);
        assert_eq!(buf, [0; 16]);
        assert_eq!(m.read_u64(PAddr(0)), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = PhysMem::new(4);
        m.write_bytes(PAddr(0x10), b"hello world");
        let mut buf = [0u8; 11];
        m.read_bytes(PAddr(0x10), &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn cross_frame_access_works() {
        let mut m = PhysMem::new(3);
        let data: Vec<u8> = (0..=255).collect();
        // Straddle the frame boundary at 0x1000.
        m.write_bytes(PAddr(0x1000 - 100), &data);
        let mut buf = vec![0u8; 256];
        m.read_bytes(PAddr(0x1000 - 100), &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn u64_round_trip_is_little_endian() {
        let mut m = PhysMem::new(1);
        m.write_u64(PAddr(8), 0x0102_0304_0506_0708);
        let mut b = [0u8; 8];
        m.read_bytes(PAddr(8), &mut b);
        assert_eq!(b, [8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(m.read_u64(PAddr(8)), 0x0102_0304_0506_0708);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let m = PhysMem::new(1);
        let mut buf = [0u8; 8];
        m.read_bytes(PAddr(PAGE_4K - 4), &mut buf);
    }

    #[test]
    fn zero_frame_releases_storage() {
        let mut m = PhysMem::new(2);
        m.write_u64(PAddr(0x1000), 7);
        assert_eq!(m.materialized_frames(), 1);
        m.zero_frame(PAddr(0x1008));
        assert_eq!(m.materialized_frames(), 0);
        assert_eq!(m.read_u64(PAddr(0x1000)), 0);
    }

    #[test]
    fn stack_source_allocates_each_frame_once() {
        let mut s = StackFrameSource::new(PAddr(0x1000), PAddr(0x4000));
        assert_eq!(s.free_frames(), 3);
        let a = s.alloc_frame().unwrap();
        let b = s.alloc_frame().unwrap();
        let c = s.alloc_frame().unwrap();
        assert!(s.alloc_frame().is_none());
        let mut got = [a.0, b.0, c.0];
        got.sort();
        assert_eq!(got, [0x1000, 0x2000, 0x3000]);
        s.free_frame(b);
        assert_eq!(s.alloc_frame().unwrap(), b);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn freeing_foreign_frame_panics() {
        let mut s = StackFrameSource::new(PAddr(0x1000), PAddr(0x2000));
        s.free_frame(PAddr(0x8000));
    }
}
