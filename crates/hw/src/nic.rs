//! Simulated network interface.
//!
//! A NIC here is a pair of frame queues with a MAC address; the wire
//! itself (delivery, loss, duplication, reordering) is modelled by
//! `veros-net`'s simulator, which moves frames between NICs. Keeping the
//! device dumb matches real hardware and keeps the driver boundary clean.

use std::collections::VecDeque;

/// Maximum frame size accepted by the device (standard Ethernet MTU plus
/// header slack).
pub const MAX_FRAME: usize = 1536;

/// A simulated network interface card.
#[derive(Clone, Debug)]
pub struct SimNic {
    mac: [u8; 6],
    tx: VecDeque<Vec<u8>>,
    rx: VecDeque<Vec<u8>>,
    tx_count: u64,
    rx_count: u64,
    dropped_oversize: u64,
}

impl SimNic {
    /// Creates a NIC with the given MAC address.
    pub fn new(mac: [u8; 6]) -> Self {
        Self {
            mac,
            tx: VecDeque::new(),
            rx: VecDeque::new(),
            tx_count: 0,
            rx_count: 0,
            dropped_oversize: 0,
        }
    }

    /// The device's MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    /// Driver side: queues a frame for transmission.
    ///
    /// Oversized frames are dropped and counted, as real devices do.
    pub fn transmit(&mut self, frame: Vec<u8>) {
        if frame.len() > MAX_FRAME {
            self.dropped_oversize += 1;
            return;
        }
        self.tx_count += 1;
        self.tx.push_back(frame);
    }

    /// Driver side: takes the next received frame, if any.
    pub fn receive(&mut self) -> Option<Vec<u8>> {
        self.rx.pop_front()
    }

    /// Wire side: takes the next frame the device wants to send.
    pub fn wire_take_tx(&mut self) -> Option<Vec<u8>> {
        self.tx.pop_front()
    }

    /// Wire side: delivers a frame into the receive queue.
    pub fn wire_deliver(&mut self, frame: Vec<u8>) {
        if frame.len() > MAX_FRAME {
            self.dropped_oversize += 1;
            return;
        }
        self.rx_count += 1;
        self.rx.push_back(frame);
    }

    /// Frames waiting in the transmit queue.
    pub fn tx_pending(&self) -> usize {
        self.tx.len()
    }

    /// Frames waiting in the receive queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// `(transmitted, received, dropped_oversize)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.tx_count, self.rx_count, self.dropped_oversize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_receive_fifo_order() {
        let mut nic = SimNic::new([0, 1, 2, 3, 4, 5]);
        nic.transmit(vec![1]);
        nic.transmit(vec![2]);
        assert_eq!(nic.wire_take_tx(), Some(vec![1]));
        assert_eq!(nic.wire_take_tx(), Some(vec![2]));
        assert_eq!(nic.wire_take_tx(), None);
        nic.wire_deliver(vec![9]);
        assert_eq!(nic.receive(), Some(vec![9]));
        assert_eq!(nic.receive(), None);
    }

    #[test]
    fn oversize_frames_are_dropped_and_counted() {
        let mut nic = SimNic::new([0; 6]);
        nic.transmit(vec![0; MAX_FRAME + 1]);
        nic.wire_deliver(vec![0; MAX_FRAME + 1]);
        assert_eq!(nic.tx_pending(), 0);
        assert_eq!(nic.rx_pending(), 0);
        assert_eq!(nic.stats().2, 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut nic = SimNic::new([0; 6]);
        nic.transmit(vec![1]);
        nic.wire_deliver(vec![2]);
        nic.wire_deliver(vec![3]);
        assert_eq!(nic.stats(), (1, 2, 0));
    }
}
