//! Translation-lookaside-buffer model.
//!
//! The hardware spec must capture that the MMU may serve translations
//! from a cache that is only updated by explicit invalidation — the page
//! table code is only correct if it performs the required `invlpg`/flush
//! after changing entries. The TLB here is a deterministic
//! fixed-capacity, FIFO-evicting cache of *leaf* mappings; determinism
//! keeps verification-condition runs reproducible while still exercising
//! staleness.

use std::collections::VecDeque;

use crate::addr::VAddr;
use crate::walker::Mapping;

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// The cached leaf mapping (its `va_base`/`size` identify the range).
    pub mapping: Mapping,
}

/// A deterministic FIFO TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    capacity: usize,
    entries: VecDeque<TlbEntry>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB holding up to `capacity` translations.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a translation covering `va`.
    pub fn lookup(&mut self, va: VAddr) -> Option<Mapping> {
        let hit = self
            .entries
            .iter()
            .find(|e| {
                va.0 >= e.mapping.va_base.0 && va.0 - e.mapping.va_base.0 < e.mapping.size
            })
            .map(|e| e.mapping);
        match hit {
            Some(m) => {
                self.hits += 1;
                Some(m)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a mapping after a successful walk, evicting FIFO if full.
    pub fn fill(&mut self, mapping: Mapping) {
        if self.capacity == 0 {
            return;
        }
        // Replace any entry for the same base rather than duplicating.
        self.entries.retain(|e| e.mapping.va_base != mapping.va_base);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TlbEntry { mapping });
    }

    /// Invalidates any cached translation covering `va` (the `invlpg`
    /// instruction).
    pub fn invlpg(&mut self, va: VAddr) {
        self.entries.retain(|e| {
            !(va.0 >= e.mapping.va_base.0 && va.0 - e.mapping.va_base.0 < e.mapping.size)
        });
    }

    /// Flushes everything (CR3 reload without PCID).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Number of currently cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PAddr, PAGE_2M, PAGE_4K};

    fn mapping(va: u64, pa: u64, size: u64) -> Mapping {
        Mapping {
            va_base: VAddr(va),
            pa_base: PAddr(pa),
            size,
            writable: true,
            user: true,
            nx: false,
        }
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(0x1000, 0x8000, PAGE_4K));
        assert_eq!(tlb.lookup(VAddr(0x1abc)).unwrap().pa_base, PAddr(0x8000));
        assert!(tlb.lookup(VAddr(0x2000)).is_none());
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn huge_entries_cover_their_whole_range() {
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(PAGE_2M, 0, PAGE_2M));
        assert!(tlb.lookup(VAddr(PAGE_2M + PAGE_2M - 1)).is_some());
        assert!(tlb.lookup(VAddr(2 * PAGE_2M)).is_none());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut tlb = Tlb::new(2);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        tlb.fill(mapping(0x2000, 0xb000, PAGE_4K));
        tlb.fill(mapping(0x3000, 0xc000, PAGE_4K));
        assert!(tlb.lookup(VAddr(0x1000)).is_none(), "oldest evicted");
        assert!(tlb.lookup(VAddr(0x2000)).is_some());
        assert!(tlb.lookup(VAddr(0x3000)).is_some());
    }

    #[test]
    fn refill_same_page_does_not_duplicate() {
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        tlb.fill(mapping(0x1000, 0xb000, PAGE_4K));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(VAddr(0x1000)).unwrap().pa_base, PAddr(0xb000));
    }

    #[test]
    fn invlpg_removes_only_the_target() {
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        tlb.fill(mapping(0x2000, 0xb000, PAGE_4K));
        tlb.invlpg(VAddr(0x1800));
        assert!(tlb.lookup(VAddr(0x1000)).is_none());
        assert!(tlb.lookup(VAddr(0x2000)).is_some());
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        tlb.flush_all();
        assert!(tlb.is_empty());
    }

    #[test]
    fn zero_capacity_tlb_never_caches() {
        let mut tlb = Tlb::new(0);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        assert!(tlb.lookup(VAddr(0x1000)).is_none());
    }

    #[test]
    fn stale_entry_demonstrates_incoherence() {
        // The TLB is a pure cache: changing the "page table" does not
        // change it. This is precisely the hazard the page-table code
        // must handle with invlpg.
        let mut tlb = Tlb::new(4);
        tlb.fill(mapping(0x1000, 0xa000, PAGE_4K));
        // Page table now says 0x1000 -> 0xc000, but without invlpg the
        // TLB still answers 0xa000.
        assert_eq!(tlb.lookup(VAddr(0x1000)).unwrap().pa_base, PAddr(0xa000));
        tlb.invlpg(VAddr(0x1000));
        assert!(tlb.lookup(VAddr(0x1000)).is_none());
    }
}
