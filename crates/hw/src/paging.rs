//! x86-64 page-table entry layout.
//!
//! Bit-accurate encoding/decoding of 64-bit page-table entries, shared by
//! the MMU walker (which *interprets* entries) and the page-table
//! implementations (which *construct* them). Keeping one encoding module
//! is deliberate: the refinement obligation in `veros-pagetable` checks
//! that what the implementation writes means what the walker reads, so
//! the encoding itself must not be duplicated.

use crate::addr::PAddr;

/// Permission/attribute flags of a page-table entry.
///
/// A hand-rolled bitset (no external bitflags dependency): the flag bits
/// are exactly the x86-64 architectural positions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PtFlags(pub u64);

impl PtFlags {
    /// Entry is present.
    pub const PRESENT: PtFlags = PtFlags(1 << 0);
    /// Writes allowed.
    pub const WRITABLE: PtFlags = PtFlags(1 << 1);
    /// User-mode accessible.
    pub const USER: PtFlags = PtFlags(1 << 2);
    /// Write-through caching.
    pub const WRITE_THROUGH: PtFlags = PtFlags(1 << 3);
    /// Caching disabled.
    pub const NO_CACHE: PtFlags = PtFlags(1 << 4);
    /// Set by hardware on access.
    pub const ACCESSED: PtFlags = PtFlags(1 << 5);
    /// Set by hardware on write.
    pub const DIRTY: PtFlags = PtFlags(1 << 6);
    /// Huge page (in PD/PDPT entries).
    pub const HUGE: PtFlags = PtFlags(1 << 7);
    /// Not flushed on CR3 switch.
    pub const GLOBAL: PtFlags = PtFlags(1 << 8);
    /// Execution disabled.
    pub const NX: PtFlags = PtFlags(1 << 63);

    /// The empty flag set.
    pub const fn empty() -> PtFlags {
        PtFlags(0)
    }

    /// Union of two flag sets.
    pub const fn union(self, other: PtFlags) -> PtFlags {
        PtFlags(self.0 | other.0)
    }

    /// True when all bits of `other` are set in `self`.
    pub const fn contains(self, other: PtFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Removes the bits of `other`.
    pub const fn without(self, other: PtFlags) -> PtFlags {
        PtFlags(self.0 & !other.0)
    }
}

impl std::ops::BitOr for PtFlags {
    type Output = PtFlags;
    fn bitor(self, rhs: PtFlags) -> PtFlags {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for PtFlags {
    fn bitor_assign(&mut self, rhs: PtFlags) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Debug for PtFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = [
            (PtFlags::PRESENT, "P"),
            (PtFlags::WRITABLE, "W"),
            (PtFlags::USER, "U"),
            (PtFlags::WRITE_THROUGH, "WT"),
            (PtFlags::NO_CACHE, "NC"),
            (PtFlags::ACCESSED, "A"),
            (PtFlags::DIRTY, "D"),
            (PtFlags::HUGE, "H"),
            (PtFlags::GLOBAL, "G"),
            (PtFlags::NX, "NX"),
        ];
        let mut first = true;
        write!(f, "PtFlags(")?;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, ")")
    }
}

/// Mask of the physical-address bits in an entry (bits 12..=51).
pub const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// Mask of all architecturally defined flag bits we model.
pub const FLAGS_MASK: u64 = 0x8000_0000_0000_01ff;

/// A raw 64-bit page-table entry with typed accessors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PtEntry(pub u64);

impl PtEntry {
    /// Builds an entry from a frame address and flags.
    ///
    /// # Panics
    ///
    /// Panics when `addr` has bits outside [`ADDR_MASK`] — entries can
    /// only name 4 KiB-aligned addresses below 2^52.
    pub fn new(addr: PAddr, flags: PtFlags) -> PtEntry {
        assert_eq!(addr.0 & !ADDR_MASK, 0, "address {addr} not encodable");
        PtEntry(addr.0 | (flags.0 & FLAGS_MASK))
    }

    /// The zero (non-present) entry.
    pub const fn zero() -> PtEntry {
        PtEntry(0)
    }

    /// The physical address named by the entry.
    pub fn addr(self) -> PAddr {
        PAddr(self.0 & ADDR_MASK)
    }

    /// The flag bits of the entry.
    pub fn flags(self) -> PtFlags {
        PtFlags(self.0 & FLAGS_MASK)
    }

    /// True when the present bit is set.
    pub fn is_present(self) -> bool {
        self.flags().contains(PtFlags::PRESENT)
    }

    /// True when the huge-page bit is set.
    pub fn is_huge(self) -> bool {
        self.flags().contains(PtFlags::HUGE)
    }
}

impl std::fmt::Debug for PtEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_present() && self.0 == 0 {
            return write!(f, "PtEntry(empty)");
        }
        write!(f, "PtEntry({} {:?})", self.addr(), self.flags())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_4K;

    #[test]
    fn entry_round_trips_address_and_flags() {
        let flags = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER | PtFlags::NX;
        let e = PtEntry::new(PAddr(0x1234 * PAGE_4K), flags);
        assert_eq!(e.addr(), PAddr(0x1234 * PAGE_4K));
        assert_eq!(e.flags(), flags);
        assert!(e.is_present());
        assert!(!e.is_huge());
    }

    #[test]
    fn architectural_bit_positions() {
        assert_eq!(PtFlags::PRESENT.0, 0x1);
        assert_eq!(PtFlags::WRITABLE.0, 0x2);
        assert_eq!(PtFlags::USER.0, 0x4);
        assert_eq!(PtFlags::HUGE.0, 0x80);
        assert_eq!(PtFlags::NX.0, 1 << 63);
        // A present+writable entry at 0x2000 is literally 0x2003.
        let e = PtEntry::new(PAddr(0x2000), PtFlags::PRESENT | PtFlags::WRITABLE);
        assert_eq!(e.0, 0x2003);
    }

    #[test]
    fn address_and_flag_bits_do_not_overlap() {
        assert_eq!(ADDR_MASK & FLAGS_MASK, 0);
        let e = PtEntry::new(PAddr(ADDR_MASK), PtFlags(FLAGS_MASK));
        assert_eq!(e.addr().0, ADDR_MASK);
        assert_eq!(e.flags().0, FLAGS_MASK);
    }

    #[test]
    #[should_panic(expected = "not encodable")]
    fn unaligned_address_rejected() {
        let _ = PtEntry::new(PAddr(0x1001), PtFlags::PRESENT);
    }

    #[test]
    fn flag_set_operations() {
        let f = PtFlags::PRESENT | PtFlags::USER;
        assert!(f.contains(PtFlags::PRESENT));
        assert!(!f.contains(PtFlags::WRITABLE));
        assert!(!f.contains(PtFlags::PRESENT | PtFlags::WRITABLE));
        assert_eq!(f.without(PtFlags::USER), PtFlags::PRESENT);
        let mut g = PtFlags::empty();
        g |= PtFlags::NX;
        assert!(g.contains(PtFlags::NX));
    }

    #[test]
    fn debug_rendering_names_flags() {
        let e = PtEntry::new(PAddr(0x1000), PtFlags::PRESENT | PtFlags::HUGE);
        let s = format!("{e:?}");
        assert!(s.contains('P') && s.contains('H'), "{s}");
        assert_eq!(format!("{:?}", PtEntry::zero()), "PtEntry(empty)");
    }
}
