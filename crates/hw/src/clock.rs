//! Virtual time.
//!
//! The scheduler and the network simulator run on discrete virtual time:
//! one tick per timer interrupt. Virtual time makes scheduler tests and
//! the refinement traces deterministic — the paper's abstract execution
//! model treats context switches as "just another interleaving of
//! threads", and a deterministic clock lets us enumerate those
//! interleavings.

/// A discrete virtual clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    ticks: u64,
}

impl VirtualClock {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks
    }

    /// Advances by one tick (one timer interrupt) and returns the new
    /// time.
    pub fn tick(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    /// Advances by `n` ticks.
    pub fn advance(&mut self, n: u64) {
        self.ticks += n;
    }

    /// True when `deadline` has been reached.
    pub fn expired(&self, deadline: u64) -> bool {
        self.ticks >= deadline
    }

    /// A deadline `n` ticks in the future.
    pub fn deadline_in(&self, n: u64) -> u64 {
        self.ticks + n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        c.advance(10);
        assert_eq!(c.now(), 11);
    }

    #[test]
    fn deadlines() {
        let mut c = VirtualClock::new();
        let d = c.deadline_in(3);
        assert!(!c.expired(d));
        c.advance(2);
        assert!(!c.expired(d));
        c.tick();
        assert!(c.expired(d));
    }
}
