//! Simulated block device with a volatile write cache and crash injection.
//!
//! The filesystem's crash-safety spec ("committed operations survive a
//! crash") is only meaningful against a disk model in which un-flushed
//! writes can be lost, and lost *out of order* — real drives reorder
//! cached writes. [`SimDisk`] therefore keeps a persistent array plus an
//! ordered cache of pending sector writes; a crash keeps an arbitrary
//! subset of the cache chosen by the injected RNG (or a prefix, for
//! deterministic tests), and `flush` creates a barrier by draining it.

use veros_spec::rng::SpecRng;

/// Sector size in bytes.
pub const SECTOR_SIZE: usize = 512;

/// Errors from disk operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// Sector index beyond the device capacity.
    OutOfRange {
        /// The offending sector.
        sector: u64,
    },
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::OutOfRange { sector } => write!(f, "sector {sector} out of range"),
        }
    }
}

/// A pending (cached, not yet durable) sector write.
#[derive(Clone)]
struct Pending {
    sector: u64,
    data: Box<[u8; SECTOR_SIZE]>,
}

/// A simulated disk.
pub struct SimDisk {
    sectors: u64,
    persistent: Vec<Option<Box<[u8; SECTOR_SIZE]>>>,
    cache: Vec<Pending>,
    writes: u64,
    flushes: u64,
}

impl SimDisk {
    /// Creates a disk with `sectors` zeroed sectors.
    pub fn new(sectors: u64) -> Self {
        Self {
            sectors,
            persistent: (0..sectors).map(|_| None).collect(),
            cache: Vec::new(),
            writes: 0,
            flushes: 0,
        }
    }

    /// Device capacity in sectors.
    pub fn sectors(&self) -> u64 {
        self.sectors
    }

    /// Reads a sector. Reads observe the cache (the drive returns the
    /// latest written data whether or not it is durable yet).
    pub fn read(&self, sector: u64, buf: &mut [u8; SECTOR_SIZE]) -> Result<(), DiskError> {
        self.check(sector)?;
        // Latest cached write wins.
        if let Some(p) = self.cache.iter().rev().find(|p| p.sector == sector) {
            buf.copy_from_slice(&p.data[..]);
            return Ok(());
        }
        match &self.persistent[sector as usize] {
            Some(d) => buf.copy_from_slice(&d[..]),
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Writes a sector into the volatile cache.
    pub fn write(&mut self, sector: u64, data: &[u8; SECTOR_SIZE]) -> Result<(), DiskError> {
        self.check(sector)?;
        self.writes += 1;
        self.cache.push(Pending {
            sector,
            data: Box::new(*data),
        });
        Ok(())
    }

    /// Flush barrier: makes every cached write durable, in order.
    pub fn flush(&mut self) {
        self.flushes += 1;
        for p in self.cache.drain(..) {
            self.persistent[p.sector as usize] = Some(p.data);
        }
    }

    /// Number of cached (not yet durable) writes.
    pub fn dirty(&self) -> usize {
        self.cache.len()
    }

    /// `(writes, flushes)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.writes, self.flushes)
    }

    /// Crash keeping only the first `n` cached writes (deterministic).
    pub fn crash_keep_prefix(&mut self, n: usize) {
        let keep: Vec<Pending> = self.cache.drain(..).take(n).collect();
        for p in keep {
            self.persistent[p.sector as usize] = Some(p.data);
        }
        self.cache.clear();
    }

    /// Crash keeping the first `keep` cached writes whole and the next
    /// one *torn*: only its first `tear_bytes` bytes reach the platter,
    /// the rest of that sector keeping whatever was durable before (or
    /// zeroes for a never-written sector). Everything later is lost.
    /// Models a power cut mid-sector — the failure the journal's record
    /// checksums exist to detect.
    pub fn crash_torn(&mut self, keep: usize, tear_bytes: usize) {
        let pending: Vec<Pending> = self.cache.drain(..).collect();
        let tear_bytes = tear_bytes.min(SECTOR_SIZE);
        for (i, p) in pending.into_iter().enumerate() {
            if i < keep {
                self.persistent[p.sector as usize] = Some(p.data);
            } else if i == keep {
                let mut merged = self.persistent[p.sector as usize]
                    .take()
                    .unwrap_or_else(|| Box::new([0u8; SECTOR_SIZE]));
                merged[..tear_bytes].copy_from_slice(&p.data[..tear_bytes]);
                self.persistent[p.sector as usize] = Some(merged);
            }
        }
    }

    /// Crash keeping an arbitrary subset of cached writes, in order —
    /// modelling drive-internal reordering at sector granularity. Later
    /// kept writes to the same sector still win (ordering per sector is
    /// preserved, which matches single-queue drives).
    pub fn crash_random(&mut self, rng: &mut SpecRng) {
        let pending: Vec<Pending> = self.cache.drain(..).collect();
        for p in pending {
            if rng.chance(1, 2) {
                self.persistent[p.sector as usize] = Some(p.data);
            }
        }
    }

    fn check(&self, sector: u64) -> Result<(), DiskError> {
        if sector < self.sectors {
            Ok(())
        } else {
            Err(DiskError::OutOfRange { sector })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(byte: u8) -> [u8; SECTOR_SIZE] {
        [byte; SECTOR_SIZE]
    }

    #[test]
    fn read_sees_cached_write() {
        let mut d = SimDisk::new(8);
        d.write(3, &sec(7)).unwrap();
        let mut buf = sec(0);
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, sec(7));
        assert_eq!(d.dirty(), 1);
    }

    #[test]
    fn unflushed_write_lost_on_crash() {
        let mut d = SimDisk::new(8);
        d.write(3, &sec(7)).unwrap();
        d.crash_keep_prefix(0);
        let mut buf = sec(1);
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, sec(0), "write was volatile");
    }

    #[test]
    fn flushed_write_survives_crash() {
        let mut d = SimDisk::new(8);
        d.write(3, &sec(7)).unwrap();
        d.flush();
        d.crash_keep_prefix(0);
        let mut buf = sec(0);
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, sec(7));
        assert_eq!(d.dirty(), 0);
    }

    #[test]
    fn prefix_crash_keeps_only_early_writes() {
        let mut d = SimDisk::new(8);
        d.write(1, &sec(1)).unwrap();
        d.write(2, &sec(2)).unwrap();
        d.write(3, &sec(3)).unwrap();
        d.crash_keep_prefix(2);
        let mut buf = sec(0);
        d.read(1, &mut buf).unwrap();
        assert_eq!(buf, sec(1));
        d.read(2, &mut buf).unwrap();
        assert_eq!(buf, sec(2));
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, sec(0));
    }

    #[test]
    fn latest_cached_write_wins_reads() {
        let mut d = SimDisk::new(4);
        d.write(0, &sec(1)).unwrap();
        d.write(0, &sec(2)).unwrap();
        let mut buf = sec(9);
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, sec(2));
    }

    #[test]
    fn random_crash_keeps_subset() {
        let mut d = SimDisk::new(16);
        for s in 0..16 {
            d.write(s, &sec(s as u8 + 1)).unwrap();
        }
        let mut rng = SpecRng::seeded(99);
        d.crash_random(&mut rng);
        let mut survived = 0;
        for s in 0..16 {
            let mut buf = sec(0);
            d.read(s, &mut buf).unwrap();
            if buf == sec(s as u8 + 1) {
                survived += 1;
            } else {
                assert_eq!(buf, sec(0), "must be old or new, never torn");
            }
        }
        assert!(survived > 0 && survived < 16, "seed 99 keeps a strict subset");
    }

    #[test]
    fn torn_crash_keeps_prefix_then_tears_one_sector() {
        let mut d = SimDisk::new(8);
        d.write(5, &sec(9)).unwrap();
        d.flush(); // old durable content for the torn sector
        d.write(1, &sec(1)).unwrap();
        d.write(5, &sec(2)).unwrap();
        d.write(3, &sec(3)).unwrap();
        d.crash_torn(1, 100);
        let mut buf = sec(0);
        d.read(1, &mut buf).unwrap();
        assert_eq!(buf, sec(1), "prefix write is whole");
        d.read(5, &mut buf).unwrap();
        assert_eq!(&buf[..100], &[2u8; 100][..], "torn head holds new bytes");
        assert_eq!(&buf[100..], &[9u8; 412][..], "torn tail holds old bytes");
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, sec(0), "writes past the torn one are lost");
        assert_eq!(d.dirty(), 0);
    }

    #[test]
    fn torn_crash_on_fresh_sector_zero_fills_the_tail() {
        let mut d = SimDisk::new(4);
        d.write(2, &sec(7)).unwrap();
        d.crash_torn(0, 8);
        let mut buf = sec(1);
        d.read(2, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[7u8; 8][..]);
        assert_eq!(&buf[8..], &[0u8; 504][..]);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut d = SimDisk::new(2);
        assert!(d.write(2, &sec(0)).is_err());
        let mut buf = sec(0);
        assert_eq!(d.read(9, &mut buf), Err(DiskError::OutOfRange { sector: 9 }));
    }
}
