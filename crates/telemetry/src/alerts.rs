//! Threshold alerting over telemetry snapshots.
//!
//! A [`Rule`] names a metric and a bound; [`evaluate`] checks every
//! rule against a [`Snapshot`] and returns
//! the violations. The standing fleet policy lives in
//! [`default_rules`]: data-integrity counters that must never tick
//! (a checksum failure is corruption reaching the client boundary) and
//! tail-latency bounds on distributions whose blowup signals a stalled
//! subsystem (a replica that stopped replaying the shared log).
//!
//! `telemetry_report --check` is the consumer: it evaluates the default
//! rules after running the representative workloads and exits nonzero
//! on any violation, which is the CI form of "the instruments say the
//! system is healthy". With telemetry compiled out every reading is
//! zero, so evaluation passes trivially — the check gates observations,
//! not build configuration.

use crate::registry::{MetricValue, Snapshot};

/// One alerting rule.
#[derive(Clone, Copy, Debug)]
pub enum Rule {
    /// The named counter (or gauge) must not exceed `max`.
    CounterAtMost {
        /// Dotted metric name to match in the snapshot.
        metric: &'static str,
        /// Inclusive upper bound.
        max: u64,
    },
    /// The named counter (or gauge) must reach at least `min` — a
    /// liveness floor proving a watched activity actually happened
    /// (e.g. fault schedules swept). Evaluated only in telemetry-enabled
    /// builds: with instruments compiled out every counter reads zero,
    /// and a floor on a no-op is noise, not health.
    CounterAtLeast {
        /// Dotted metric name to match in the snapshot.
        metric: &'static str,
        /// Inclusive lower bound.
        min: u64,
    },
    /// The named histogram's p99 estimate must not exceed `max`.
    P99AtMost {
        /// Dotted metric name to match in the snapshot.
        metric: &'static str,
        /// Inclusive upper bound on the p99 bucket estimate.
        max: u64,
    },
    /// The ratio of two counters must not exceed `max_milli`/1000.
    /// A zero denominator passes (no activity to bound); the rule is
    /// skipped unless both metrics are present.
    RatioAtMost {
        /// Dotted name of the numerator counter.
        numerator: &'static str,
        /// Dotted name of the denominator counter.
        denominator: &'static str,
        /// Inclusive upper bound, in thousandths (1000 = ratio 1.0).
        max_milli: u64,
    },
}

impl Rule {
    /// The metric name this rule watches (the numerator, for ratios).
    pub fn metric(&self) -> &'static str {
        match self {
            Rule::CounterAtMost { metric, .. }
            | Rule::CounterAtLeast { metric, .. }
            | Rule::P99AtMost { metric, .. } => metric,
            Rule::RatioAtMost { numerator, .. } => numerator,
        }
    }
}

/// A rule violation: which metric, what was observed, what was allowed.
#[derive(Clone, Debug)]
pub struct Alert {
    /// The violated rule's metric name.
    pub metric: &'static str,
    /// The reading that broke the bound.
    pub observed: u64,
    /// The bound it broke.
    pub allowed: u64,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The standing alert policy checked by `telemetry_report --check`.
pub fn default_rules() -> Vec<Rule> {
    vec![
        // Corruption must never reach the client boundary silently:
        // every checksum rejection in a healthy run is deliberate test
        // traffic, so in the health check the budget is zero.
        Rule::CounterAtMost { metric: "blockstore.checksum_failures", max: 0 },
        // A replica whose replay lag blows past the log's flat-combining
        // batch scale has effectively stopped consuming the shared log;
        // the bound is generous (the log itself holds 1024 entries in
        // the default sweeps) so only a wedged replica trips it.
        Rule::P99AtMost { metric: "nr.replica.replay_lag", max: 1024 },
        // Chain atomicity is a kernel invariant, not a tuning knob: the
        // engine's defensive self-check (exactly the post-failure
        // suffix cancelled, nothing else) ticking even once means the
        // chain dispatcher broke its contract.
        Rule::CounterAtMost { metric: "uring.chain.atomicity_violations", max: 0 },
        // The burst budget may defer a flooded ring transiently, but on
        // average fewer than one ring per sweep: a ratio at or above
        // 1.0 means some ring's backlog outruns the poller on every
        // pass — the budget is starving, not smoothing.
        Rule::RatioAtMost {
            numerator: "uring.poller.fairness_deferrals",
            denominator: "uring.poller.sweeps",
            max_milli: 999,
        },
        // Chain replication lag is bounded by one chain traversal plus
        // wire retransmissions: a p99 past this means a head is
        // forwarding into a wedged successor instead of a lossy wire
        // (client op timeouts would fire long before).
        Rule::P99AtMost { metric: "cluster.replication.lag", max: 2000 },
        // Failover is local suspicion (op timeout + retry backoff) plus
        // the coordinator's death deadline plus a shard sync; a p99
        // beyond this ceiling means promotion wedged and clients are
        // spinning on a dead chain, not riding out a view change.
        Rule::P99AtMost { metric: "cluster.failover.time", max: 5000 },
        // The end-to-end invariant sweeps (INVARIANTS.md) must never
        // observe a violation outside a deliberate ablation: a tick here
        // means an acked write was lost, a message applied twice, a
        // journal boundary broken, a frame leaked, or a chain torn.
        Rule::CounterAtMost { metric: "invariant.violations", max: 0 },
        // And the sweeps must actually run: a report that registers the
        // invariant instruments but swept nothing is a vacuous health
        // check, not a healthy system.
        Rule::CounterAtLeast { metric: "invariant.schedules_swept", min: 1 },
    ]
}

/// Evaluates `rules` against a snapshot, returning every violation.
/// Metrics absent from the snapshot are not violations (a report may
/// legitimately register a subset of crates); a rule kind mismatching
/// the metric's actual type is reported, since a silently unevaluated
/// rule is worse than a loud one.
pub fn evaluate(snapshot: &Snapshot, rules: &[Rule]) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for rule in rules {
        if let Rule::RatioAtMost { numerator, denominator, max_milli } = rule {
            // Both metrics present (else skipped, like the scalar
            // rules) and both counter-shaped (else loud, like the
            // scalar rules); a zero denominator passes — no activity
            // to bound.
            let lookup = |name: &str| snapshot.metrics.iter().find(|m| m.name == name);
            let (Some(n), Some(d)) = (lookup(numerator), lookup(denominator)) else {
                continue;
            };
            let (
                MetricValue::Counter(num) | MetricValue::Gauge(num),
                MetricValue::Counter(den) | MetricValue::Gauge(den),
            ) = (&n.value, &d.value)
            else {
                alerts.push(Alert {
                    metric: numerator,
                    observed: 0,
                    allowed: 0,
                    message: format!(
                        "{numerator}/{denominator}: ratio rule needs counters on both sides"
                    ),
                });
                continue;
            };
            let (num, den) = (*num, *den);
            if den == 0 {
                continue;
            }
            let milli = num.saturating_mul(1000) / den;
            if milli > *max_milli {
                alerts.push(Alert {
                    metric: numerator,
                    observed: milli,
                    allowed: *max_milli,
                    message: format!(
                        "{numerator}/{denominator} = {num}/{den} ({milli} milli), \
                         allowed at most {max_milli} milli"
                    ),
                });
            }
            continue;
        }
        let Some(metric) = snapshot.metrics.iter().find(|m| m.name == rule.metric()) else {
            continue;
        };
        match (rule, &metric.value) {
            (
                Rule::CounterAtMost { metric: name, max },
                MetricValue::Counter(v) | MetricValue::Gauge(v),
            ) => {
                if v > max {
                    alerts.push(Alert {
                        metric: name,
                        observed: *v,
                        allowed: *max,
                        message: format!("{name} = {v}, allowed at most {max}"),
                    });
                }
            }
            (
                Rule::CounterAtLeast { metric: name, min },
                MetricValue::Counter(v) | MetricValue::Gauge(v),
            ) => {
                if crate::enabled() && v < min {
                    alerts.push(Alert {
                        metric: name,
                        observed: *v,
                        allowed: *min,
                        message: format!("{name} = {v}, expected at least {min}"),
                    });
                }
            }
            (Rule::P99AtMost { metric: name, max }, MetricValue::Histogram(h)) => {
                if h.p99 > *max {
                    alerts.push(Alert {
                        metric: name,
                        observed: h.p99,
                        allowed: *max,
                        message: format!(
                            "{name} p99 = {} (count {}), allowed at most {max}",
                            h.p99, h.count
                        ),
                    });
                }
            }
            (rule, _) => {
                alerts.push(Alert {
                    metric: rule.metric(),
                    observed: 0,
                    allowed: 0,
                    message: format!(
                        "{}: rule kind does not match the metric's type",
                        rule.metric()
                    ),
                });
            }
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Histogram, Registry};

    static CLEAN: Counter = Counter::new();
    static DIRTY: Counter = Counter::new();
    static LAG: Histogram = Histogram::new();

    fn snapshot() -> Snapshot {
        let mut reg = Registry::new();
        reg.counter("test.clean_failures", "events", &CLEAN);
        reg.counter("test.dirty_failures", "events", &DIRTY);
        reg.histogram("test.lag", "entries", &LAG);
        reg.snapshot()
    }

    #[test]
    fn clean_snapshot_raises_no_alerts() {
        let rules = [
            Rule::CounterAtMost { metric: "test.clean_failures", max: 0 },
            Rule::P99AtMost { metric: "test.lag", max: 1024 },
            // Absent metrics are skipped, not violations.
            Rule::CounterAtMost { metric: "test.not_registered", max: 0 },
        ];
        assert!(evaluate(&snapshot(), &rules).is_empty());
    }

    #[test]
    fn violations_surface_with_observed_and_allowed() {
        if !crate::enabled() {
            return;
        }
        DIRTY.inc();
        for _ in 0..100 {
            LAG.record(5000);
        }
        let rules = [
            Rule::CounterAtMost { metric: "test.dirty_failures", max: 0 },
            Rule::P99AtMost { metric: "test.lag", max: 1024 },
        ];
        let alerts = evaluate(&snapshot(), &rules);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].metric, "test.dirty_failures");
        assert_eq!(alerts[0].observed, 1);
        assert_eq!(alerts[0].allowed, 0);
        assert_eq!(alerts[1].metric, "test.lag");
        assert!(alerts[1].observed > 1024, "p99 {}", alerts[1].observed);
    }

    #[test]
    fn kind_mismatch_is_loud() {
        let rules = [Rule::P99AtMost { metric: "test.clean_failures", max: 10 }];
        let alerts = evaluate(&snapshot(), &rules);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("does not match"));
    }

    #[test]
    fn default_rules_cover_integrity_lag_and_the_data_plane() {
        let rules = default_rules();
        assert!(rules
            .iter()
            .any(|r| r.metric() == "blockstore.checksum_failures"));
        assert!(rules.iter().any(|r| r.metric() == "nr.replica.replay_lag"));
        assert!(rules
            .iter()
            .any(|r| r.metric() == "uring.chain.atomicity_violations"));
        assert!(rules
            .iter()
            .any(|r| r.metric() == "uring.poller.fairness_deferrals"));
        assert!(rules
            .iter()
            .any(|r| matches!(r, Rule::P99AtMost { metric: "cluster.replication.lag", .. })));
        assert!(rules
            .iter()
            .any(|r| matches!(r, Rule::P99AtMost { metric: "cluster.failover.time", .. })));
        assert!(rules
            .iter()
            .any(|r| matches!(r, Rule::CounterAtMost { metric: "invariant.violations", max: 0 })));
        assert!(rules.iter().any(
            |r| matches!(r, Rule::CounterAtLeast { metric: "invariant.schedules_swept", .. })
        ));
    }

    static FLOOR: Counter = Counter::new();

    #[test]
    fn counter_at_least_is_a_liveness_floor() {
        let mut reg = Registry::new();
        reg.counter("test.floor", "events", &FLOOR);
        let rules = [
            Rule::CounterAtLeast { metric: "test.floor", min: 1 },
            // Absent metrics are skipped, like the other scalar kinds.
            Rule::CounterAtLeast { metric: "test.not_registered", min: 1 },
        ];
        if crate::enabled() {
            let alerts = evaluate(&reg.snapshot(), &rules);
            assert_eq!(alerts.len(), 1, "zero reading must trip the floor");
            assert!(alerts[0].message.contains("at least"));
            FLOOR.inc();
        }
        // Satisfied floor (or telemetry compiled out): no alerts.
        assert!(evaluate(&reg.snapshot(), &rules).is_empty());
    }

    static RATIO_NUM: Counter = Counter::new();
    static RATIO_DEN: Counter = Counter::new();

    fn ratio_snapshot() -> Snapshot {
        let mut reg = Registry::new();
        reg.counter("test.deferrals", "rings", &RATIO_NUM);
        reg.counter("test.sweeps", "sweeps", &RATIO_DEN);
        reg.histogram("test.lag", "entries", &LAG);
        reg.snapshot()
    }

    #[test]
    fn ratio_rule_bounds_numerator_against_denominator() {
        if !crate::enabled() {
            return;
        }
        let rule = |max_milli| {
            [Rule::RatioAtMost {
                numerator: "test.deferrals",
                denominator: "test.sweeps",
                max_milli,
            }]
        };
        // Zero denominator: no activity, no alert even at bound 0.
        assert!(evaluate(&ratio_snapshot(), &rule(0)).is_empty());
        for _ in 0..10 {
            RATIO_DEN.inc();
        }
        for _ in 0..7 {
            RATIO_NUM.inc();
        }
        // 7/10 = 700 milli: inside 999, outside 500.
        assert!(evaluate(&ratio_snapshot(), &rule(999)).is_empty());
        let alerts = evaluate(&ratio_snapshot(), &rule(500));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].observed, 700);
        assert_eq!(alerts[0].allowed, 500);
        // Absent metrics skip the rule, like the scalar kinds.
        let absent = [Rule::RatioAtMost {
            numerator: "test.not_registered",
            denominator: "test.sweeps",
            max_milli: 0,
        }];
        assert!(evaluate(&ratio_snapshot(), &absent).is_empty());
    }

    #[test]
    fn ratio_rule_rejects_histogram_operands_loudly() {
        let rules = [Rule::RatioAtMost {
            numerator: "test.lag",
            denominator: "test.sweeps",
            max_milli: 1000,
        }];
        let alerts = evaluate(&ratio_snapshot(), &rules);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("needs counters"));
    }
}
