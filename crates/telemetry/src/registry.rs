//! The metric registry and its JSON snapshot.
//!
//! Instrumented crates expose a `metrics` module with `static`
//! instruments and a `pub fn export(&mut Registry)` that registers
//! them under dotted names (`"kernel.tlb.misses"`). A reporting binary
//! builds one [`Registry`], calls every crate's `export`, and renders
//! a single [`Snapshot`] — the JSON document `telemetry_report` mirrors
//! into the `results/` directory (`VEROS_RESULTS_DIR`, the same
//! convention as every other report in the repo; the schema is
//! documented in OBSERVABILITY.md).
//!
//! The registry itself is *not* feature-gated: with telemetry disabled
//! it still renders a structurally complete snapshot whose values are
//! all zero and whose `telemetry_enabled` field is `false`, so report
//! consumers need no second code path.

use std::io::Write as _;
use std::path::PathBuf;

use crate::counter::Counter;
use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot};
use crate::trace::{TraceEvent, TraceRing};

/// A legend mapping trace-event codes to human-readable names.
pub type TraceLegend = &'static [(u64, &'static str)];

enum Entry {
    Counter {
        name: &'static str,
        unit: &'static str,
        counter: &'static Counter,
    },
    Gauge {
        name: &'static str,
        unit: &'static str,
        read: fn() -> u64,
    },
    Histogram {
        name: &'static str,
        unit: &'static str,
        histogram: &'static Histogram,
    },
    Trace {
        name: &'static str,
        ring: &'static TraceRing,
        legend: TraceLegend,
    },
}

/// Collects instrument references and renders snapshots.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under `name` (dotted, crate-prefixed) with a
    /// `unit` (what one tick means: `"count"`, `"bytes"`, `"entries"`).
    pub fn counter(&mut self, name: &'static str, unit: &'static str, counter: &'static Counter) {
        self.entries.push(Entry::Counter { name, unit, counter });
    }

    /// Registers a derived value, sampled by calling `read` at snapshot
    /// time.
    pub fn gauge(&mut self, name: &'static str, unit: &'static str, read: fn() -> u64) {
        self.entries.push(Entry::Gauge { name, unit, read });
    }

    /// Registers a histogram; `unit` describes the recorded values
    /// (`"ns"`, `"ops"`).
    pub fn histogram(
        &mut self,
        name: &'static str,
        unit: &'static str,
        histogram: &'static Histogram,
    ) {
        self.entries.push(Entry::Histogram { name, unit, histogram });
    }

    /// Registers a trace ring and the legend decoding its event codes.
    pub fn trace(&mut self, name: &'static str, ring: &'static TraceRing, legend: TraceLegend) {
        self.entries.push(Entry::Trace { name, ring, legend });
    }

    /// Number of registered scalar metrics (counters, gauges,
    /// histograms; trace rings are events, not metrics).
    pub fn metric_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e, Entry::Trace { .. }))
            .count()
    }

    /// Names of every registered scalar metric.
    pub fn metric_names(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                Entry::Counter { name, .. }
                | Entry::Gauge { name, .. }
                | Entry::Histogram { name, .. } => Some(*name),
                Entry::Trace { .. } => None,
            })
            .collect()
    }

    /// Reads every instrument once and returns the point-in-time view.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self
            .entries
            .iter()
            .map(|e| match e {
                Entry::Counter { name, unit, counter } => Metric {
                    name,
                    unit,
                    value: MetricValue::Counter(counter.get()),
                },
                Entry::Gauge { name, unit, read } => Metric {
                    name,
                    unit,
                    value: MetricValue::Gauge(read()),
                },
                Entry::Histogram { name, unit, histogram } => Metric {
                    name,
                    unit,
                    value: MetricValue::Histogram(histogram.snapshot()),
                },
                Entry::Trace { name, ring, legend } => Metric {
                    name,
                    unit: "events",
                    value: MetricValue::Trace {
                        recorded: ring.recorded(),
                        events: ring.events(),
                        legend,
                    },
                },
            })
            .collect();
        Snapshot {
            enabled: crate::enabled(),
            metrics,
        }
    }

    /// Renders [`Registry::snapshot`] as the JSON report document.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Writes the snapshot JSON to `<results_dir>/<name>`, where the
    /// results directory is `$VEROS_RESULTS_DIR` or `./results`,
    /// creating it first. Returns the written path.
    pub fn write_json(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = match std::env::var_os("VEROS_RESULTS_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => PathBuf::from("results"),
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// One named metric in a [`Snapshot`].
pub struct Metric {
    /// Dotted, crate-prefixed metric name.
    pub name: &'static str,
    /// Unit of the value (`"count"`, `"bytes"`, `"ns"`, …).
    pub unit: &'static str,
    /// The reading.
    pub value: MetricValue,
}

/// A metric reading.
pub enum MetricValue {
    /// Exact monotone event count.
    Counter(u64),
    /// Derived value sampled at snapshot time.
    Gauge(u64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
    /// Recent events plus the code legend.
    Trace {
        /// Total events ever recorded into the ring.
        recorded: u64,
        /// The retained events, oldest first.
        events: Vec<TraceEvent>,
        /// Code → name legend.
        legend: TraceLegend,
    },
}

/// Point-in-time view of every registered instrument.
pub struct Snapshot {
    /// Whether this build carries live instruments.
    pub enabled: bool,
    /// The readings, in registration order.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Renders the snapshot as a JSON document (hand-rolled like every
    /// serializer in this workspace; schema in OBSERVABILITY.md).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"report\": \"telemetry\",\n");
        out.push_str(&format!("  \"telemetry_enabled\": {},\n", self.enabled));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&metric_json(m, "    "));
            out.push_str(comma);
            out.push('\n');
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn metric_json(m: &Metric, indent: &str) -> String {
    let head = format!(
        "{indent}{{ \"name\": {}, \"unit\": {}, ",
        json_str(m.name),
        json_str(m.unit)
    );
    match &m.value {
        MetricValue::Counter(v) => format!("{head}\"kind\": \"counter\", \"value\": {v} }}"),
        MetricValue::Gauge(v) => format!("{head}\"kind\": \"gauge\", \"value\": {v} }}"),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(i, n)| format!("[{i}, {}, {n}]", bucket_upper_bound(i)))
                .collect();
            format!(
                "{head}\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}] }}",
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                buckets.join(", ")
            )
        }
        MetricValue::Trace {
            recorded,
            events,
            legend,
        } => {
            let legend_json: Vec<String> = legend
                .iter()
                .map(|&(code, name)| format!("[{code}, {}]", json_str(name)))
                .collect();
            let events_json: Vec<String> = events
                .iter()
                .map(|e| {
                    format!(
                        "[{}, {}, {}, {}]",
                        e.seq, e.ts_ns, e.code, e.value
                    )
                })
                .collect();
            format!(
                "{head}\"kind\": \"trace\", \"recorded\": {recorded}, \"legend\": [{}], \
                 \"events\": [{}] }}",
                legend_json.join(", "),
                events_json.join(", ")
            )
        }
    }
}

/// Minimal JSON string escaping (names are static identifiers, but the
/// writer refuses to emit malformed documents regardless).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new();
    static H: Histogram = Histogram::new();
    static R: TraceRing = TraceRing::new();
    static LEGEND: &[(u64, &str)] = &[(0, "alpha"), (1, "beta")];

    fn registry() -> Registry {
        let mut reg = Registry::new();
        reg.counter("test.counter", "count", &C);
        reg.gauge("test.gauge", "count", || 42);
        reg.histogram("test.hist", "ns", &H);
        reg.trace("test.trace", &R, LEGEND);
        reg
    }

    #[test]
    fn metric_count_excludes_trace_rings() {
        let reg = registry();
        assert_eq!(reg.metric_count(), 3);
        assert_eq!(
            reg.metric_names(),
            vec!["test.counter", "test.gauge", "test.hist"]
        );
    }

    #[test]
    fn snapshot_renders_every_kind() {
        C.add(3);
        H.record(100);
        R.record(1, 7);
        let json = registry().to_json();
        assert!(json.contains("\"report\": \"telemetry\""));
        assert!(json.contains("\"name\": \"test.counter\""));
        assert!(json.contains("\"kind\": \"gauge\", \"value\": 42"));
        assert!(json.contains("\"kind\": \"histogram\""));
        assert!(json.contains("\"kind\": \"trace\""));
        assert!(json.contains("\"beta\""));
        if crate::enabled() {
            assert!(json.contains("\"telemetry_enabled\": true"));
        } else {
            assert!(json.contains("\"telemetry_enabled\": false"));
        }
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn write_json_honours_results_dir_override() {
        let dir = std::env::temp_dir().join(format!("veros-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("VEROS_RESULTS_DIR", &dir);
        let path = registry().write_json("probe.json").expect("writes");
        std::env::remove_var("VEROS_RESULTS_DIR");
        assert!(path.exists());
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.contains("\"report\": \"telemetry\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
