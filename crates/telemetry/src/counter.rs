//! Exact event counters with per-thread cells.
//!
//! The design target is the NR/TLB fast paths, where a `lock xadd` per
//! event (~6 ns uncontended, far worse contended) would be measurable
//! against operations that complete in single-digit nanoseconds. A
//! [`Counter`] therefore never issues an atomic read-modify-write on
//! the increment path:
//!
//! * Each thread owns a lazily allocated, leaked cell array (a
//!   *shard*). The thread-local handle is a const-initialized raw
//!   pointer, so the common-case increment is one TLS load, a
//!   predicted null check, and a plain relaxed load/add/store on a
//!   cell only this thread ever writes.
//! * Because every cell has exactly one writer, no update is ever
//!   lost: totals are exact, unlike a racy shared-cell counter.
//! * [`Counter::get`] sums the cell across all shards ever created
//!   (shards are leaked, so counts survive thread exit). Increments by
//!   *other* threads use `Relaxed` stores and may be observed late; a
//!   thread always observes its own increments immediately.
//!
//! Counter identity is a process-wide slot index handed out on first
//! use. The slot space is [`MAX_COUNTERS`]; counters allocated past
//! capacity alias the final slot (their totals merge) rather than
//! failing — acceptable for an instrument, and far above the stack's
//! real counter population.

#[cfg(feature = "telemetry")]
use std::cell::Cell;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Mutex, OnceLock};

/// Capacity of the per-thread cell arrays: the maximum number of
/// distinct [`Counter`]s before slot aliasing begins.
pub const MAX_COUNTERS: usize = 256;

#[cfg(feature = "telemetry")]
struct Shard {
    cells: [AtomicU64; MAX_COUNTERS],
}

/// Every shard ever created, for [`Counter::get`] summation. Shards
/// are leaked so a thread's contribution outlives the thread.
#[cfg(feature = "telemetry")]
static SHARDS: Mutex<Vec<&'static Shard>> = Mutex::new(Vec::new());

/// Process-wide slot allocator.
#[cfg(feature = "telemetry")]
static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "telemetry")]
thread_local! {
    /// This thread's shard. Const-initialized to null so the increment
    /// fast path is a single TLS load plus a predicted branch — no
    /// lazy-init state machine.
    static SHARD: Cell<*const Shard> = const { Cell::new(std::ptr::null()) };
}

/// Allocates, leaks, registers, and installs this thread's shard.
#[cfg(feature = "telemetry")]
#[cold]
fn init_shard() -> *const Shard {
    let shard: &'static Shard = Box::leak(Box::new(Shard {
        cells: [const { AtomicU64::new(0) }; MAX_COUNTERS],
    }));
    match SHARDS.lock() {
        Ok(mut all) => all.push(shard),
        Err(poisoned) => poisoned.into_inner().push(shard),
    }
    SHARD.set(shard);
    shard
}

/// An exact, monotonically increasing event count (see the module docs
/// for the sharding design). Const-constructible, so instrumented
/// crates declare counters as plain `static`s.
pub struct Counter {
    #[cfg(feature = "telemetry")]
    id: OnceLock<usize>,
}

impl Counter {
    /// Creates a counter. Its process-wide slot is assigned on first
    /// use, not at construction, so unused counters cost nothing.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "telemetry")]
            id: OnceLock::new(),
        }
    }

    #[cfg(feature = "telemetry")]
    fn slot(&self) -> usize {
        *self
            .id
            // lint: allow(atomics-ordering) — pure ID allocation: only
            // uniqueness of the fetched value matters, no payload is
            // published under it.
            .get_or_init(|| NEXT_ID.fetch_add(1, Ordering::Relaxed).min(MAX_COUNTERS - 1))
    }

    /// Adds `n` to the counter. Never issues an atomic
    /// read-modify-write; see the module docs for the cost model.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            let slot = self.slot();
            let mut ptr = SHARD.get();
            if ptr.is_null() {
                ptr = init_shard();
            }
            // SAFETY: non-null shard pointers come from `Box::leak` in
            // `init_shard` and are never freed, so the dereference is
            // valid for the remainder of the program.
            let cell = unsafe { &(*ptr).cells[slot] };
            cell.store(
                // lint: allow(atomics-ordering) — single-writer cell:
                // the shard is thread-local, so this load/store pair is
                // a private read-modify-write; readers tolerate lag by
                // the documented exactness model.
                cell.load(Ordering::Relaxed).wrapping_add(n),
                // lint: allow(atomics-ordering) — same single-writer
                // cell store.
                Ordering::Relaxed,
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total: the sum of this counter's cell across every
    /// thread's shard. Exact with respect to the calling thread's own
    /// increments; other threads' most recent increments may not be
    /// visible yet (`Relaxed` stores).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            let slot = self.slot();
            let shards = match SHARDS.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            shards
                .iter()
                // lint: allow(atomics-ordering) — statistical read: the
                // sum may lag in-flight writers by design (the module's
                // exactness model); an acquire edge would not close it.
                .map(|s| s.cells[slot].load(Ordering::Relaxed))
                .fold(0u64, u64::wrapping_add)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SOLO: Counter = Counter::new();

    #[test]
    fn add_and_get_are_exact_single_threaded() {
        let before = SOLO.get();
        SOLO.inc();
        SOLO.add(41);
        if crate::enabled() {
            assert_eq!(SOLO.get() - before, 42);
        } else {
            assert_eq!(SOLO.get(), 0);
        }
    }

    static STRESS: Counter = Counter::new();

    #[test]
    fn concurrent_increments_are_never_lost() {
        const THREADS: usize = 8;
        // Exactness needs volume natively; under Miri the point is the
        // memory model, which a short run exercises just as well.
        #[cfg(miri)]
        const PER_THREAD: u64 = 500;
        #[cfg(not(miri))]
        const PER_THREAD: u64 = 50_000;
        let before = STRESS.get();
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..PER_THREAD {
                        STRESS.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress worker");
        }
        // After join, every worker's stores happen-before this read.
        let delta = STRESS.get() - before;
        if crate::enabled() {
            assert_eq!(delta, THREADS as u64 * PER_THREAD);
        } else {
            assert_eq!(STRESS.get(), 0);
        }
    }

    #[test]
    fn counts_survive_thread_exit() {
        static SURVIVOR: Counter = Counter::new();
        let before = SURVIVOR.get();
        std::thread::spawn(|| SURVIVOR.add(7))
            .join()
            .expect("worker");
        if crate::enabled() {
            assert_eq!(SURVIVOR.get() - before, 7);
        }
    }
}
