//! Observability substrate for the veros stack.
//!
//! Three instruments, one registry:
//!
//! * [`Counter`] — an exact, monotonically increasing event count.
//!   Increments go to a per-thread cell (no `lock`-prefixed
//!   instructions, no lost updates), reads sum every thread's cell.
//! * [`Histogram`] — a log2-bucketed value distribution with
//!   `count`/`sum`/`max` and quantile estimates (p50/p95/p99). Updates
//!   are plain relaxed load/store pairs: statistically faithful, not
//!   exact under contention — by design, so recording stays off the
//!   coherence fabric.
//! * [`TraceRing`] — a fixed-capacity lock-free ring of timestamped
//!   `(code, value)` events for "what happened recently" forensics.
//!
//! A [`Registry`] collects references to the instruments each crate
//! exports (every instrumented crate has a `metrics` module with a
//! `pub fn export(&mut Registry)`) and renders one JSON snapshot in the
//! `results/` report format (honouring `VEROS_RESULTS_DIR`). The
//! [`alerts`] module evaluates threshold rules over those snapshots —
//! the health-check half of the report pipeline.
//!
//! # The no-overhead contract
//!
//! Everything here is behind the `telemetry` cargo feature (default
//! on). With the feature off, every instrument is a zero-sized type and
//! every recording method an empty `#[inline]` function, so call sites
//! in the kernel/NR hot paths compile to nothing — the same erasure
//! argument the refinement theorem makes for ghost state (DESIGN.md
//! §10). [`enabled`] reports which world this build is.

#![warn(missing_docs)]

pub mod alerts;
pub mod counter;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use alerts::{default_rules, evaluate, Alert, Rule};
pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, Timer};
pub use registry::{Registry, Snapshot};
pub use trace::{TraceEvent, TraceRing};

/// True when this build carries live instruments (the `telemetry`
/// feature); false when every instrument is a no-op.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Cheap per-thread sampling tick: true once every `2^period_log2`
/// calls *on this thread*. Used to bound instrumentation cost on paths
/// hot enough that even a histogram record per operation is measurable
/// (the NR combiner); always false when telemetry is disabled.
#[inline]
pub fn sample(period_log2: u32) -> bool {
    #[cfg(feature = "telemetry")]
    {
        use std::cell::Cell;
        thread_local! {
            static TICK: Cell<u64> = const { Cell::new(0) };
        }
        TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v & ((1u64 << period_log2) - 1) == 0
        })
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = period_log2;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(enabled(), cfg!(feature = "telemetry"));
    }

    #[test]
    fn sample_fires_at_the_declared_period() {
        if !enabled() {
            assert!(!sample(0));
            return;
        }
        // Period 2^0 = every call.
        assert!(sample(0));
        assert!(sample(0));
        // Period 4: exactly one quarter of a long run fires.
        let fired = (0..4000).filter(|_| sample(2)).count();
        assert_eq!(fired, 1000);
    }
}
