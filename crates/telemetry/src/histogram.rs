//! Log2-bucketed value histograms with quantile estimates.
//!
//! A [`Histogram`] sorts each recorded value into one of [`BUCKETS`]
//! power-of-two buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
//! holds values in `[2^(b-1), 2^b - 1]`, and the final bucket absorbs
//! everything above. Alongside the buckets it tracks `count`, `sum`,
//! and `max`, which is enough for mean, tail quantiles (reported as the
//! bucket's inclusive upper bound — a ≤2× overestimate, the standard
//! log-bucket trade), and "worst ever".
//!
//! Updates are plain `Relaxed` load/add/store pairs, not atomic RMWs:
//! under concurrent recording a tick can be lost, making histograms
//! *statistically* faithful rather than exact. That is the deliberate
//! half of the telemetry cost model (DESIGN.md §10): counters — which
//! verification conditions consume — are exact; distributions — which
//! humans consume — trade exactness for staying off the coherence
//! fabric. Paths hot enough that even this matters record through
//! [`crate::sample`].

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Number of buckets: 0, then one per power of two up to `2^62`, with
/// bucket 63 absorbing the rest.
pub const BUCKETS: usize = 64;

/// A log2-bucketed distribution. Const-constructible, so instrumented
/// crates declare histograms as plain `static`s.
pub struct Histogram {
    #[cfg(feature = "telemetry")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "telemetry")]
    count: AtomicU64,
    #[cfg(feature = "telemetry")]
    sum: AtomicU64,
    #[cfg(feature = "telemetry")]
    max: AtomicU64,
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`,
/// clamped to the final bucket.
#[cfg(feature = "telemetry")]
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (what quantiles report).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "telemetry")]
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            #[cfg(feature = "telemetry")]
            count: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            sum: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (see the module docs for the exactness model).
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "telemetry")]
        {
            let bump = |cell: &AtomicU64, n: u64| {
                // lint: allow(atomics-ordering) — statistical cells:
                // racing bumps may drop increments by the module's
                // documented exactness model; no payload rides on them.
                cell.store(cell.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
            };
            bump(&self.buckets[bucket_index(v)], 1);
            bump(&self.count, 1);
            bump(&self.sum, v);
            // lint: allow(atomics-ordering) — statistical max: a racing
            // larger value may win or lose either way; ordering cannot
            // change that.
            if v > self.max.load(Ordering::Relaxed) {
                // lint: allow(atomics-ordering) — same statistical max.
                self.max.store(v, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }

    /// Starts a drop-timer: on drop, the elapsed wall time in
    /// nanoseconds is recorded into this histogram. With telemetry
    /// disabled no clock is read.
    #[inline]
    pub fn timer(&self) -> Timer<'_> {
        Timer {
            #[cfg(feature = "telemetry")]
            hist: self,
            #[cfg(feature = "telemetry")]
            start: Instant::now(),
            #[cfg(not(feature = "telemetry"))]
            _hist: std::marker::PhantomData,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — statistical read;
            // see the module exactness model.
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — statistical read;
            // see the module exactness model.
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — statistical read;
            // see the module exactness model.
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Quantile estimate: the upper bound of the first bucket at which
    /// the cumulative count reaches `q` (0.0–1.0) of the total. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            let counts: Vec<u64> = self
                .buckets
                .iter()
                // lint: allow(atomics-ordering) — statistical bucket
                // snapshot; see the module exactness model.
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            quantile_from_buckets(&counts, q)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = q;
            0
        }
    }

    /// Folds another histogram into this one: bucket-wise count add,
    /// `count`/`sum` add, `max` of maxes. The usual consumer is a
    /// report aggregating per-shard histograms (e.g. one per replica or
    /// per worker) into a single distribution; the merge is as
    /// statistically faithful as the inputs (see the module docs).
    /// With telemetry compiled out this is a no-op on two empty shells.
    pub fn merge(&self, other: &Histogram) {
        #[cfg(feature = "telemetry")]
        {
            let bump = |cell: &AtomicU64, n: u64| {
                // lint: allow(atomics-ordering) — statistical cells, as
                // in `record`; merging tolerates racing bumps.
                cell.store(cell.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
            };
            for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
                // lint: allow(atomics-ordering) — statistical read of
                // the source histogram; see the module exactness model.
                let n = theirs.load(Ordering::Relaxed);
                if n > 0 {
                    bump(mine, n);
                }
            }
            // lint: allow(atomics-ordering) — statistical reads of
            // the source histogram; see the module exactness model.
            bump(&self.count, other.count.load(Ordering::Relaxed));
            // lint: allow(atomics-ordering) — same statistical read.
            bump(&self.sum, other.sum.load(Ordering::Relaxed));
            // lint: allow(atomics-ordering) — same statistical read.
            let theirs = other.max.load(Ordering::Relaxed);
            // lint: allow(atomics-ordering) — statistical max, as in
            // `record`.
            if theirs > self.max.load(Ordering::Relaxed) {
                // lint: allow(atomics-ordering) — same statistical max.
                self.max.store(theirs, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = other;
    }

    /// A coherent-enough copy of the whole distribution for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "telemetry")]
        {
            let buckets: Vec<(usize, u64)> = self
                .buckets
                .iter()
                .enumerate()
                // lint: allow(atomics-ordering) — statistical bucket
                // snapshot; see the module exactness model.
                .map(|(i, b)| (i, b.load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect();
            let counts: Vec<u64> = {
                let mut v = vec![0u64; BUCKETS];
                for &(i, n) in &buckets {
                    v[i] = n;
                }
                v
            };
            HistogramSnapshot {
                count: self.count(),
                sum: self.sum(),
                max: self.max(),
                p50: quantile_from_buckets(&counts, 0.50),
                p95: quantile_from_buckets(&counts, 0.95),
                p99: quantile_from_buckets(&counts, 0.99),
                buckets,
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                buckets: Vec::new(),
            }
        }
    }
}

/// Quantile over an explicit bucket-count array (the shared math behind
/// [`Histogram::quantile`], snapshots, and snapshot diffs). Ungated:
/// snapshot diffing works on plain data and must behave identically in
/// telemetry-off builds, where snapshots are simply empty.
fn quantile_from_buckets(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // ceil(q * total), clamped to [1, total]: the rank of the target.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cumulative += n;
        if cumulative >= target {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time view of a [`Histogram`], as reported in snapshots.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: u64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: u64,
    /// `(bucket_index, count)` for every non-empty bucket.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// The distribution recorded *between* two snapshots of the same
    /// histogram: per-bucket saturating subtraction of `earlier` from
    /// `self`, with `count`/`sum` diffed the same way and quantiles
    /// recomputed over the interval's buckets. The saturation absorbs
    /// the racy-recording model (a bucket observed slightly ahead in
    /// the earlier snapshot must not underflow into a 2^64 count).
    ///
    /// `max` cannot be windowed from bucket data — it stays the
    /// lifetime max (`self.max`), which is the conservative reading for
    /// alerting.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        for &(i, n) in &self.buckets {
            if i < BUCKETS {
                counts[i] = n;
            }
        }
        for &(i, n) in &earlier.buckets {
            if i < BUCKETS {
                counts[i] = counts[i].saturating_sub(n);
            }
        }
        let buckets: Vec<(usize, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            p50: quantile_from_buckets(&counts, 0.50),
            p95: quantile_from_buckets(&counts, 0.95),
            p99: quantile_from_buckets(&counts, 0.99),
            buckets,
        }
    }
}

/// Drop-guard returned by [`Histogram::timer`].
pub struct Timer<'a> {
    #[cfg(feature = "telemetry")]
    hist: &'a Histogram,
    #[cfg(feature = "telemetry")]
    start: Instant,
    #[cfg(not(feature = "telemetry"))]
    _hist: std::marker::PhantomData<&'a Histogram>,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        self.hist
            .record(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        if !crate::enabled() {
            return;
        }
        // (value, expected bucket): 0 is special, then [2^(b-1), 2^b).
        for (v, want) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1023, 10),
            (1024, 11),
            (u64::MAX, 63),
        ] {
            let h = Histogram::new();
            h.record(v);
            let snap = h.snapshot();
            assert_eq!(snap.buckets, vec![(want, 1)], "value {v}");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn count_sum_max_track_recordings() {
        let h = Histogram::new();
        for v in [5u64, 10, 100] {
            h.record(v);
        }
        if crate::enabled() {
            assert_eq!(h.count(), 3);
            assert_eq!(h.sum(), 115);
            assert_eq!(h.max(), 100);
        } else {
            assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        if !crate::enabled() {
            return;
        }
        let h = Histogram::new();
        // 90 values of 3 (bucket 2, upper bound 3), 10 values of 1000
        // (bucket 10, upper bound 1023).
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.50), 3);
        assert_eq!(h.quantile(0.90), 3);
        assert_eq!(h.quantile(0.91), 1023);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        // Degenerate inputs.
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert_eq!(h.quantile(0.0), 3); // rank clamps to 1, not 0
    }

    #[test]
    fn merge_folds_buckets_count_sum_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 3, 1000] {
            a.record(v);
        }
        for v in [3u64, 7, 4000] {
            b.record(v);
        }
        a.merge(&b);
        if crate::enabled() {
            assert_eq!(a.count(), 6);
            assert_eq!(a.sum(), 3 + 3 + 1000 + 3 + 7 + 4000);
            assert_eq!(a.max(), 4000);
            // Bucket 2 (values 2-3) now holds three entries.
            let snap = a.snapshot();
            assert_eq!(snap.buckets.iter().find(|&&(i, _)| i == 2), Some(&(2, 3)));
            // b is untouched.
            assert_eq!(b.count(), 3);
        } else {
            assert_eq!((a.count(), a.sum(), a.max()), (0, 0, 0));
        }
    }

    #[test]
    fn snapshot_diff_isolates_the_interval() {
        if !crate::enabled() {
            return;
        }
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(3);
        }
        let before = h.snapshot();
        for _ in 0..10 {
            h.record(1000);
        }
        let after = h.snapshot();
        let window = after.diff(&before);
        // Only the interval's 10 large recordings remain, so the
        // whole-window quantiles sit in the 1000s bucket even though
        // the lifetime p50 is still 3.
        assert_eq!(window.count, 10);
        assert_eq!(window.sum, 10_000);
        assert_eq!(window.buckets, vec![(10, 10)]);
        assert_eq!(window.p50, 1023);
        assert_eq!(window.p99, 1023);
        assert_eq!(after.p50, 3);
        // Diffing identical snapshots yields an empty window.
        let empty = after.diff(&after);
        assert_eq!(empty.count, 0);
        assert!(empty.buckets.is_empty());
        assert_eq!(empty.p99, 0);
        // Saturation: a stale "later" snapshot cannot underflow.
        let inverted = before.diff(&after);
        assert_eq!(inverted.count, 0);
        assert!(inverted.buckets.is_empty());
    }

    #[test]
    fn timer_records_elapsed_nanoseconds() {
        let h = Histogram::new();
        {
            let _t = h.timer();
            std::hint::black_box(1 + 1);
        }
        if crate::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }
}
