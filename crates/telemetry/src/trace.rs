//! A fixed-capacity lock-free ring of timestamped events.
//!
//! A [`TraceRing`] answers "what happened recently": writers take an
//! index with one `fetch_add` on the head, claim the slot by swapping
//! a `WRITING` marker into its sequence stamp, publish the event
//! fields, then release the slot by storing its sequence number.
//! Readers ([`TraceRing::events`]) walk the last [`CAPACITY`] slots
//! and keep only the ones whose sequence stamp is stable across the
//! field reads — a torn slot (mid-overwrite by a lapping writer) is
//! skipped, never misreported. If two writers a full ring-lap apart
//! collide on one slot, the one that finds the `WRITING` marker
//! forfeits its event instead of interleaving fields. Nothing blocks
//! and nothing allocates on the write path.
//!
//! Slot accesses use `SeqCst` throughout: rings record control-path
//! events (syscall entries, replication acks — microsecond-scale
//! paths), so tens of nanoseconds per event buy an ordering argument
//! that needs no subtlety. The data-path instruments ([`crate::Counter`],
//! [`crate::Histogram`]) are where the cost model gets aggressive.
//!
//! Event payloads are two `u64`s: a `code` (an index into a legend the
//! instrumented crate registers alongside the ring — e.g. the
//! `Syscall` variant) and a free `value`. Timestamps are nanoseconds
//! since the first telemetry event of the process, so cross-crate
//! orderings within a snapshot are comparable.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::OnceLock;
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Number of slots a ring retains (events beyond it are overwritten
/// oldest-first).
pub const CAPACITY: usize = 256;

/// Nanoseconds since the process's first telemetry timestamp request.
#[cfg(feature = "telemetry")]
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Sequence-stamp marker for "a writer holds this slot". Unreachable
/// as a real stamp (`2^64` events would have to be recorded first).
#[cfg(feature = "telemetry")]
const WRITING: u64 = u64::MAX;

#[cfg(feature = "telemetry")]
struct Slot {
    /// 0 = never written; `i + 1` = holds the `i`-th event (1-based so
    /// the empty state is distinguishable); [`WRITING`] = claimed by a
    /// writer mid-publish.
    seq: AtomicU64,
    // protocol: seqlock(seq)
    ts_ns: AtomicU64,
    // protocol: seqlock(seq)
    code: AtomicU64,
    // protocol: seqlock(seq)
    value: AtomicU64,
}

#[cfg(feature = "telemetry")]
impl Slot {
    const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            code: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// One decoded event from a [`TraceRing`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global position of this event in the ring's history (0-based).
    pub seq: u64,
    /// Nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Event code (index into the registered legend).
    pub code: u64,
    /// Free event payload.
    pub value: u64,
}

/// The ring (see the module docs for the protocol).
/// Const-constructible, so instrumented crates declare rings as plain
/// `static`s.
pub struct TraceRing {
    #[cfg(feature = "telemetry")]
    head: AtomicU64,
    #[cfg(feature = "telemetry")]
    slots: [Slot; CAPACITY],
}

impl TraceRing {
    /// Creates an empty ring.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "telemetry")]
            head: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            slots: [const { Slot::new() }; CAPACITY],
        }
    }

    /// Records one event. Lock-free and allocation-free. In the rare
    /// writer-writer collision (two writers a full ring-lap apart on
    /// one slot) the later claimant's event is dropped, never torn.
    #[inline]
    pub fn record(&self, code: u64, value: u64) {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — the head only hands
            // out positions; slot contents are published by the slot's
            // own SeqCst stamp protocol, not by this counter.
            let i = self.head.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[(i % CAPACITY as u64) as usize];
            // Claim: the marker both excludes the colliding writer and
            // invalidates the slot for readers before any field store.
            if slot.seq.swap(WRITING, Ordering::SeqCst) == WRITING {
                return; // Another writer holds the slot; forfeit.
            }
            slot.ts_ns.store(now_ns(), Ordering::SeqCst);
            slot.code.store(code, Ordering::SeqCst);
            slot.value.store(value, Ordering::SeqCst);
            // Publish: readers accept the fields only under this stamp.
            slot.seq.store(i + 1, Ordering::SeqCst);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (code, value);
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — monotonic counter read
            // for reporting; no payload is acquired through it.
            self.head.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// The retained events, oldest first. Slots being overwritten
    /// concurrently (sequence stamp unstable across the field reads)
    /// are skipped rather than misreported, so under active writing
    /// the result can have gaps.
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — the head is only a
            // position counter: every store to it is a Relaxed
            // `fetch_add`, so an acquiring load here would synchronize
            // with nothing. Slot consistency comes from the `seq`
            // stamps, not the head.
            let head = self.head.load(Ordering::Relaxed);
            let start = head.saturating_sub(CAPACITY as u64);
            let mut out = Vec::new();
            for i in start..head {
                let slot = &self.slots[(i % CAPACITY as u64) as usize];
                let seq_before = slot.seq.load(Ordering::SeqCst);
                if seq_before != i + 1 {
                    continue; // Never written, lapped, or mid-write.
                }
                let ev = TraceEvent {
                    seq: i,
                    ts_ns: slot.ts_ns.load(Ordering::SeqCst),
                    code: slot.code.load(Ordering::SeqCst),
                    value: slot.value.load(Ordering::SeqCst),
                };
                // Re-check: a writer that started overwriting mid-read
                // swapped the claim marker in first, so the stamp can
                // no longer read `i + 1` if any field was replaced.
                if slot.seq.load(Ordering::SeqCst) == i + 1 {
                    out.push(ev);
                }
            }
            out
        }
        #[cfg(not(feature = "telemetry"))]
        {
            Vec::new()
        }
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let ring = TraceRing::new();
        for i in 0..10u64 {
            ring.record(i, i * 100);
        }
        let events = ring.events();
        if !crate::enabled() {
            assert!(events.is_empty());
            return;
        }
        assert_eq!(events.len(), 10);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.code, i as u64);
            assert_eq!(ev.value, i as u64 * 100);
        }
        // Timestamps are monotone within one writer thread.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn wraparound_keeps_the_newest_capacity_events() {
        if !crate::enabled() {
            return;
        }
        let ring = TraceRing::new();
        let total = CAPACITY as u64 * 3 + 17;
        for i in 0..total {
            ring.record(i, 0);
        }
        assert_eq!(ring.recorded(), total);
        let events = ring.events();
        assert_eq!(events.len(), CAPACITY);
        // Exactly the last CAPACITY events, oldest first.
        assert_eq!(events.first().map(|e| e.code), Some(total - CAPACITY as u64));
        assert_eq!(events.last().map(|e| e.code), Some(total - 1));
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        if !crate::enabled() {
            return;
        }
        static RING: TraceRing = TraceRing::new();
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    #[cfg(miri)]
                    const EVENTS: u64 = 200;
                    #[cfg(not(miri))]
                    const EVENTS: u64 = 2_000;
                    for i in 0..EVENTS {
                        // code and value carry the same tag so a torn
                        // read is detectable.
                        RING.record(t * 1_000_000 + i, t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        // Read while writers are lapping the ring.
        for _ in 0..50 {
            for ev in RING.events() {
                assert_eq!(ev.code, ev.value, "torn event surfaced");
            }
        }
        for w in writers {
            w.join().expect("writer");
        }
        let events = RING.events();
        assert!(!events.is_empty());
        for ev in events {
            assert_eq!(ev.code, ev.value);
        }
    }
}
