//! Anti-vacuity regression: every invariant family must *fail* when its
//! single fault-injected defense is disabled.
//!
//! A fault-schedule sweep that keeps passing after the journal barrier
//! is removed (or replication skipped, or the transport bypassed…) is
//! not verifying anything. Each test here mutates exactly one such site
//! via [`Ablation`], asserts the family reports a violation, and then
//! re-runs the *identical schedules* un-ablated to show the defense —
//! not the workload — is what the sweep depends on.

use veros_core::invariants::{self, Ablation};

#[test]
fn durability_fails_without_replication() {
    // Ordinal 0 exercises the failover mode: a put acked without
    // replication is lost the moment the primary dies.
    let err = invariants::durability(0, 3, Ablation::UnreplicatedPut)
        .expect_err("unreplicated puts must not survive failover");
    assert!(err.contains("durability"), "{err}");
    invariants::durability(0, 3, Ablation::None).expect("real system holds");
}

#[test]
fn exactly_once_fails_over_raw_datagrams() {
    // Four schedules include mild and hostile wire tiers: a raw
    // datagram stream loses, duplicates, or reorders at least one of
    // them.
    let err = invariants::exactly_once(0, 4, Ablation::RawDatagrams)
        .expect_err("raw datagrams must break exactly-once under wire faults");
    assert!(err.contains("exactly_once"), "{err}");
    invariants::exactly_once(0, 4, Ablation::None).expect("real transport holds");
}

#[test]
fn fs_journal_fails_without_the_commit_barrier() {
    // Ordinal 0 crashes at the zero boundary: with the flush barrier
    // skipped, the committed records are still volatile and vanish.
    let err = invariants::fs_journal(0, 3, Ablation::SkipCommitBarrier)
        .expect_err("commits without a barrier must not survive a crash");
    assert!(err.contains("fs_journal"), "{err}");
    invariants::fs_journal(0, 3, Ablation::None).expect("real journal holds");
}

#[test]
fn frames_fail_when_the_rollback_path_leaks() {
    // Ordinal 0 puts the allocation-pressure point at step 0, so the
    // ablated release path holds frames back and teardown comes up
    // short.
    let err = invariants::frames(0, 3, Ablation::LeakFrames)
        .expect_err("a leaking rollback path must fail the conservation audit");
    assert!(err.contains("frames"), "{err}");
    invariants::frames(0, 3, Ablation::None).expect("real allocator holds");
}

#[test]
fn cluster_durability_fails_without_chain_replication() {
    // With every chain one replica wide, schedule 0 kills the acked
    // write's only holder: the promoted owner syncs an empty shard and
    // serves NotFound — the ack bought nothing.
    let err = invariants::cluster_durability(0, 2, Ablation::UnreplicatedChain)
        .expect_err("a 1-wide chain must lose acked writes with its only holder");
    assert!(err.contains("cluster_durability"), "{err}");
    invariants::cluster_durability(0, 2, Ablation::None).expect("3-way chains hold");
}

#[test]
fn uring_chain_fails_when_recovery_replays_from_the_start() {
    // Mid-stream crash points leave a non-empty dispatch log; replaying
    // it twice re-executes non-idempotent links (opens, maps, even
    // clock reads) and diverges from the crashed kernel.
    let err = invariants::uring_chain(0, 5, Ablation::ReplayLogTwice)
        .expect_err("replay-from-start recovery must diverge");
    assert!(err.contains("uring_chain"), "{err}");
    invariants::uring_chain(0, 5, Ablation::None).expect("resume-at-boundary holds");
}
