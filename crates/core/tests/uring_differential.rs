//! Differential proof that the asynchronous ring path is invisible.
//!
//! Each run drives two freshly booted kernels through the same random
//! workload — one via the uring engine (batched submission, out-of-order
//! completion of blocking ops), one via a synchronous twin that mirrors
//! the engine's worker policy through the plain trap path — and demands
//! completion-for-completion agreement plus identical final abstract
//! kernel states ([`veros_core::view`]). This is the acceptance-test
//! form of the `uring::ring_linearizes_to_sync_dispatch` VCs.

#[test]
fn ring_and_sync_paths_reach_identical_kernel_state() {
    for seed in 0..6u64 {
        veros_core::uring::differential_run(seed, 96)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn tiny_ring_under_backpressure_delivers_exactly_once() {
    for seed in 0..4u64 {
        veros_core::uring::ring_exactly_once(seed, 600)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
