//! Differential proof that the asynchronous ring path is invisible.
//!
//! Each run drives two freshly booted kernels through the same random
//! workload — one via the uring engine (batched submission, out-of-order
//! completion of blocking ops), one via a synchronous twin that mirrors
//! the engine's worker policy through the plain trap path — and demands
//! completion-for-completion agreement plus identical final abstract
//! kernel states ([`veros_core::view`]). This is the acceptance-test
//! form of the `uring::ring_linearizes_to_sync_dispatch` VCs.

#[test]
fn ring_and_sync_paths_reach_identical_kernel_state() {
    for seed in 0..6u64 {
        veros_core::uring::differential_run(seed, 96)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn tiny_ring_under_backpressure_delivers_exactly_once() {
    for seed in 0..4u64 {
        veros_core::uring::ring_exactly_once(seed, 600)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn multi_ring_poller_linearizes_against_the_set_twin() {
    for seed in 0..4u64 {
        veros_core::uring::multi_ring_differential(seed, 2 + (seed as usize % 3), 72)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn chains_on_a_tiny_ring_abort_exactly_their_suffix() {
    for seed in 0..4u64 {
        veros_core::uring::chain_atomicity(seed, 72)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn burst_budget_bounds_sweeps_to_completion() {
    for seed in 0..4u64 {
        veros_core::uring::poller_fairness_bound(seed, 96)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// The SQPOLL-style poller is a scheduling policy, not a semantics
/// change: when per-ring workloads commute (disjoint address ranges,
/// no cross-ring state), sweeping the rings round-robin with a burst
/// budget leaves the kernel in exactly the state an inline
/// ring-at-a-time drain produces.
#[test]
fn poller_sweep_equals_inline_drain_on_commuting_workloads() {
    use veros_kernel::syscall::Syscall;
    use veros_kernel::{Kernel, KernelConfig};
    use veros_uring::{pair, Engine, RingSet};

    const RINGS: usize = 3;
    // Disjoint per-ring VA pools: the rings' operations commute.
    let va_of = |r: usize, i: u64| 0x40_0000 + (r as u64) * 0x10_0000 + i * 0x1000;

    let build = |k: &Kernel| {
        let owner = (k.init_pid, k.init_tid);
        let mut users = Vec::new();
        let mut engines = Vec::new();
        for _ in 0..RINGS {
            let (user, kring) = pair(8);
            users.push(user);
            engines.push(Engine::new(kring, owner));
        }
        (users, engines)
    };
    let submit_all = |users: &mut Vec<veros_uring::UserRing>| {
        let mut token = 0u64;
        for (r, user) in users.iter_mut().enumerate() {
            for i in 0..3u64 {
                user.submit(token, &Syscall::Map { va: va_of(r, i), pages: 1, writable: true })
                    .unwrap();
                token += 1;
            }
            user.submit(token, &Syscall::Unmap { va: va_of(r, 1), pages: 1 }).unwrap();
            token += 1;
            user.submit(token, &Syscall::ClockRead).unwrap();
            token += 1;
        }
    };

    // Kernel A: poller sweeps, burst 2 (interleaves the rings).
    let mut ka = Kernel::boot(KernelConfig::default()).unwrap();
    let (mut users_a, engines_a) = build(&ka);
    let mut set = RingSet::new(2);
    for e in engines_a {
        set.add(e);
    }
    submit_all(&mut users_a);
    while !set.sweep(&mut ka).idle() {}

    // Kernel B: inline drain, ring by ring (no interleaving).
    let mut kb = Kernel::boot(KernelConfig::default()).unwrap();
    let (mut users_b, mut engines_b) = build(&kb);
    submit_all(&mut users_b);
    for e in &mut engines_b {
        e.submit_batch(&mut kb);
        e.reap(&mut kb);
    }

    for (r, (ua, ub)) in users_a.iter_mut().zip(users_b.iter_mut()).enumerate() {
        let a: Vec<_> = std::iter::from_fn(|| ua.complete()).collect();
        let b: Vec<_> = std::iter::from_fn(|| ub.complete()).collect();
        assert_eq!(a, b, "ring {r} completions diverge between poller and inline drain");
    }
    assert_eq!(
        veros_core::view(&ka),
        veros_core::view(&kb),
        "poller sweep and inline drain left different kernel states"
    );
}
