//! The three §3 verification obligations, executable.
//!
//! "It further entails three verification obligations: marshalling,
//! mapping, and data-race freedom."

use veros_kernel::syscall::{abi, marshal, SysError};
use veros_kernel::{Kernel, KernelConfig, Syscall};
use veros_spec::rng::SpecRng;

use crate::sys_spec::SysState;

// --- marshalling -----------------------------------------------------------

/// Round-trip of every syscall variant through the register ABI.
pub fn marshalling_regs_roundtrip() -> Result<(), String> {
    for call in abi::sample_calls() {
        let regs = abi::encode_regs(&call);
        match abi::decode_regs(&regs) {
            Ok(back) if back == call => {}
            other => return Err(format!("{call:?} -> {regs:?} -> {other:?}")),
        }
    }
    for ret in [
        Ok(0),
        Ok(u64::MAX),
        Err(SysError::BadAddress),
        Err(SysError::NoSpace),
    ] {
        let (s, v) = abi::encode_ret(ret);
        if abi::decode_ret(s, v) != Ok(ret) {
            return Err(format!("return {ret:?} did not round-trip"));
        }
    }
    Ok(())
}

/// Randomized argument sweep: encode/decode identity over arbitrary
/// in-domain argument values.
pub fn marshalling_random_args(seed: u64, iters: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0x3a5);
    for _ in 0..iters {
        let call = match rng.below(10) {
            0 => Syscall::Wait { pid: rng.next_u64() },
            1 => Syscall::Map {
                va: rng.next_u64(),
                pages: rng.next_u64(),
                writable: rng.chance(1, 2),
            },
            2 => Syscall::Unmap {
                va: rng.next_u64(),
                pages: rng.next_u64(),
            },
            3 => Syscall::Open {
                path_ptr: rng.next_u64(),
                path_len: rng.next_u64(),
                create: rng.chance(1, 2),
            },
            4 => Syscall::Read {
                fd: rng.next_u64() as u32,
                buf_ptr: rng.next_u64(),
                buf_len: rng.next_u64(),
            },
            5 => Syscall::Write {
                fd: rng.next_u64() as u32,
                buf_ptr: rng.next_u64(),
                buf_len: rng.next_u64(),
            },
            6 => Syscall::Seek {
                fd: rng.next_u64() as u32,
                offset: rng.next_u64(),
            },
            7 => Syscall::FutexWait {
                va: rng.next_u64(),
                expected: rng.next_u64() as u32,
            },
            8 => Syscall::FutexWake {
                va: rng.next_u64(),
                count: rng.next_u64() as u32,
            },
            _ => Syscall::Exit {
                code: rng.next_u64() as u32 as i32,
            },
        };
        let back = abi::decode_regs(&abi::encode_regs(&call))
            .map_err(|e| format!("{call:?} rejected: {e:?}"))?;
        if back != call {
            return Err(format!("{call:?} -> {back:?}"));
        }
    }
    Ok(())
}

/// Fuzz: decoding arbitrary register contents must never panic (errors
/// are fine — corrupted registers reach the kernel in practice).
pub fn marshalling_decode_fuzz(seed: u64, iters: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0xf22);
    for _ in 0..iters {
        let regs = [
            rng.below(24), // Bias toward near-valid numbers.
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ];
        let _ = abi::decode_regs(&regs); // Must not panic.
        let _ = abi::decode_ret(rng.below(32), rng.next_u64());
    }
    Ok(())
}

/// Byte-level serializer round-trips over random typed sequences.
pub fn marshalling_bytes_roundtrip(seed: u64, iters: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0xb17e);
    for _ in 0..iters {
        // A random schema of up to 8 fields.
        let n = 1 + rng.index(8);
        let mut enc = marshal::Encoder::new();
        let mut fields: Vec<(u8, Vec<u8>)> = Vec::new();
        for _ in 0..n {
            match rng.below(5) {
                0 => {
                    let v = rng.next_u64() as u8;
                    enc.u8(v);
                    fields.push((0, vec![v]));
                }
                1 => {
                    let v = rng.next_u64() as u32;
                    enc.u32(v);
                    fields.push((1, v.to_le_bytes().to_vec()));
                }
                2 => {
                    let v = rng.next_u64();
                    enc.u64(v);
                    fields.push((2, v.to_le_bytes().to_vec()));
                }
                3 => {
                    let mut b = vec![0u8; rng.index(64)];
                    rng.fill(&mut b);
                    enc.bytes(&b);
                    fields.push((3, b));
                }
                _ => {
                    let v = rng.chance(1, 2);
                    enc.bool(v);
                    fields.push((4, vec![v as u8]));
                }
            }
        }
        let wire = enc.finish();
        let mut dec = marshal::Decoder::new(&wire);
        for (kind, want) in &fields {
            let ok = match kind {
                0 => dec.u8().map(|v| vec![v] == *want).unwrap_or(false),
                1 => dec
                    .u32()
                    .map(|v| v.to_le_bytes().to_vec() == *want)
                    .unwrap_or(false),
                2 => dec
                    .u64()
                    .map(|v| v.to_le_bytes().to_vec() == *want)
                    .unwrap_or(false),
                3 => dec.bytes().map(|v| v == *want).unwrap_or(false),
                _ => dec.bool().map(|v| vec![v as u8] == *want).unwrap_or(false),
            };
            if !ok {
                return Err("field did not round-trip".into());
            }
        }
        dec.finish().map_err(|e| format!("trailing bytes: {e:?}"))?;
    }
    Ok(())
}

// --- mapping ----------------------------------------------------------------

/// The mapping obligation: the kernel reaches user buffers exactly where
/// the page tables say they live. Checked by comparing `read_user`/
/// `write_user` against the MMU-grounded abstract memory over random
/// layouts and accesses.
pub fn mapping_obligation(seed: u64, steps: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0x3a9);
    let mut kernel = Kernel::boot(KernelConfig::default()).map_err(|e| format!("{e:?}"))?;
    let c = (kernel.init_pid, kernel.init_tid);
    // Random layout: a handful of mapped regions, some read-only.
    let mut regions: Vec<(u64, u64, bool)> = Vec::new();
    for i in 0..6 {
        let va = 0x10_0000 + i * 0x10_0000 + rng.below(4) * 0x1000;
        let pages = 1 + rng.below(4);
        let writable = rng.chance(3, 4);
        if kernel
            .syscall(c, Syscall::Map { va, pages, writable })
            .is_ok()
        {
            regions.push((va, pages, writable));
        }
    }
    for step in 0..steps {
        let spec = crate::view::view(&kernel);
        // Random access, biased to region edges.
        let (va, pages, _w) = regions[rng.index(regions.len())];
        let addr = va + rng.below(pages * 4096 + 4096) - 2048;
        let len = rng.below(6000) + 1;
        if rng.chance(1, 2) {
            let got = kernel.read_user(c.0, addr, len);
            let want = spec.mem_read(c.0 .0, addr, len);
            if got != want {
                return Err(format!(
                    "seed {seed} step {step}: read_user({addr:#x},{len}) = {:?} vs spec {:?}",
                    got.as_ref().map(|v| v.len()),
                    want.as_ref().map(|v| v.len())
                ));
            }
        } else {
            let mut data = vec![0u8; len.min(512) as usize];
            rng.fill(&mut data);
            let got = kernel.write_user(c.0, addr, &data);
            let mut predicted = spec.clone();
            let want = predicted.mem_write(c.0 .0, addr, &data);
            if got != want {
                return Err(format!(
                    "seed {seed} step {step}: write_user({addr:#x},{}) = {got:?} vs spec {want:?}",
                    data.len()
                ));
            }
            let post = crate::view::view(&kernel);
            if post != predicted {
                return Err(format!(
                    "seed {seed} step {step}: memory view diverged after write"
                ));
            }
        }
    }
    Ok(())
}

// --- data-race freedom -------------------------------------------------------

/// An access-interval log for the dynamic data-race-freedom check: each
/// record says thread `tid` accessed `[start, end)` during logical time
/// `[t0, t1]`, writing iff `write`.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    records: Vec<AccessRecord>,
}

/// One recorded buffer access.
#[derive(Clone, Debug)]
pub struct AccessRecord {
    /// Accessing thread.
    pub tid: u64,
    /// Buffer start address.
    pub start: u64,
    /// Buffer end (exclusive).
    pub end: u64,
    /// Logical start time.
    pub t0: u64,
    /// Logical end time.
    pub t1: u64,
    /// Whether the access writes.
    pub write: bool,
}

impl AccessLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access.
    pub fn record(&mut self, rec: AccessRecord) {
        self.records.push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finds a conflicting pair: different threads, overlapping byte
    /// ranges, overlapping time intervals, at least one writer.
    pub fn find_conflict(&self) -> Option<(usize, usize)> {
        for i in 0..self.records.len() {
            for j in i + 1..self.records.len() {
                let (a, b) = (&self.records[i], &self.records[j]);
                if a.tid != b.tid
                    && (a.write || b.write)
                    && a.start < b.end
                    && b.start < a.end
                    && a.t0 <= b.t1
                    && b.t0 <= a.t1
                {
                    return Some((i, j));
                }
            }
        }
        None
    }
}

/// The data-race-freedom obligation over a kernel execution: syscall
/// buffer accesses are atomic kernel transitions (each holds `&mut
/// Kernel` for its whole duration — the ownership argument of §3), so a
/// log of a serialized execution can never conflict. This check replays
/// a random workload, logging every buffer access with its serialized
/// timestamps, and asserts no conflict — plus, as a sanity check of the
/// checker itself, that an artificial overlapping pair *is* flagged.
pub fn race_freedom_obligation(seed: u64, steps: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0xace);
    let mut kernel = Kernel::boot(KernelConfig::default()).map_err(|e| format!("{e:?}"))?;
    let c = (kernel.init_pid, kernel.init_tid);
    kernel
        .syscall(c, Syscall::Map { va: 0x10_0000, pages: 8, writable: true })
        .map_err(|e| format!("{e:?}"))?;
    let t2 = kernel
        .syscall(c, Syscall::ThreadSpawn { affinity_plus_one: 0 })
        .map_err(|e| format!("{e:?}"))?;
    let mut log = AccessLog::new();
    for now in 0..steps as u64 {
        let tid = if rng.chance(1, 2) { c.1 .0 } else { t2 };
        let va = 0x10_0000 + rng.below(8 * 4096 - 64);
        let len = 1 + rng.below(64);
        let write = rng.chance(1, 2);
        // The syscall runs atomically: its access interval is [now, now].
        if write {
            let data = vec![rng.below(255) as u8; len as usize];
            kernel.write_user(c.0, va, &data).map_err(|e| format!("{e:?}"))?;
        } else {
            kernel.read_user(c.0, va, len).map_err(|e| format!("{e:?}"))?;
        }
        log.record(AccessRecord {
            tid,
            start: va,
            end: va + len,
            t0: now,
            t1: now,
            write,
        });
    }
    if let Some((i, j)) = log.find_conflict() {
        return Err(format!("serialized execution reported a race: {i} vs {j}"));
    }
    // Checker sanity: an overlapping concurrent write pair is caught.
    let mut bad = AccessLog::new();
    bad.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 5, write: true });
    bad.record(AccessRecord { tid: 2, start: 4, end: 12, t0: 3, t1: 9, write: false });
    if bad.find_conflict().is_none() {
        return Err("race checker failed to flag a genuine conflict".into());
    }
    Ok(())
}

/// The literal `read_spec` ensures clause over the whole-system views
/// (delegating to the fd-level predicate in `veros-fs`).
pub fn read_ensures(
    pre: &SysState,
    post: &SysState,
    pid: u64,
    fd: u32,
    data: &[u8],
    read_len: u64,
) -> bool {
    let (Some(pre_p), Some(post_p)) = (pre.procs.get(&pid), post.procs.get(&pid)) else {
        return false;
    };
    let (Some(pre_fd), Some(post_fd)) = (pre_p.fds.get(&fd), post_p.fds.get(&fd)) else {
        return false;
    };
    let contents = pre.fs.get(&pre_fd.path).cloned().unwrap_or_default();
    let size = contents.len() as u64;
    read_len == data.len() as u64
        && read_len <= size.saturating_sub(pre_fd.offset)
        && data[..] == contents[pre_fd.offset as usize..(pre_fd.offset + read_len) as usize]
        && post_fd.offset == pre_fd.offset + read_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshalling_obligations_pass() {
        marshalling_regs_roundtrip().unwrap();
        marshalling_random_args(1, 500).unwrap();
        marshalling_decode_fuzz(1, 500).unwrap();
        marshalling_bytes_roundtrip(1, 200).unwrap();
    }

    #[test]
    fn mapping_obligation_passes() {
        for seed in 0..3 {
            mapping_obligation(seed, 40).unwrap();
        }
    }

    #[test]
    fn race_freedom_passes_and_checker_detects() {
        race_freedom_obligation(5, 100).unwrap();
    }

    #[test]
    fn access_log_conflict_semantics() {
        let mut log = AccessLog::new();
        // Same thread: never a conflict.
        log.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 5, write: true });
        log.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 5, write: true });
        assert!(log.find_conflict().is_none());
        // Two readers: no conflict.
        let mut log = AccessLog::new();
        log.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 5, write: false });
        log.record(AccessRecord { tid: 2, start: 0, end: 8, t0: 0, t1: 5, write: false });
        assert!(log.find_conflict().is_none());
        // Disjoint times: no conflict.
        let mut log = AccessLog::new();
        log.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 2, write: true });
        log.record(AccessRecord { tid: 2, start: 0, end: 8, t0: 3, t1: 5, write: true });
        assert!(log.find_conflict().is_none());
        // Disjoint ranges: no conflict.
        let mut log = AccessLog::new();
        log.record(AccessRecord { tid: 1, start: 0, end: 8, t0: 0, t1: 5, write: true });
        log.record(AccessRecord { tid: 2, start: 8, end: 16, t0: 0, t1: 5, write: true });
        assert!(log.find_conflict().is_none());
    }
}
