//! The client application contract — the paper's primary contribution.
//!
//! Section 3 proposes defining OS correctness "based on the behavior of
//! applications running on top": a high-level spec with two parts, the
//! *execution model* (virtualized memory and CPU, threads interleaving)
//! and the *system calls* (state-machine transitions over the abstract
//! state each process perceives). This crate is that contract,
//! executable:
//!
//! * [`sys_spec`] — the abstract system state ([`sys_spec::SysState`]:
//!   processes with virtual memory, fd tables, threads; the shared
//!   filesystem) and the transition function for every syscall,
//!   value-level (buffers are sequences, not pointers).
//! * [mod@view] — the abstraction function from a live [`veros_kernel::
//!   Kernel`] to [`sys_spec::SysState`]. Memory is abstracted through
//!   the **MMU's interpretation of the page tables** — the process-
//!   centric spec the paper argues for.
//! * [`sys`] — the `Sys` handle of §3: typed operations whose `ensures`
//!   clauses (the spec transitions) are checked against the before/after
//!   views on every call in audit mode.
//! * [`obligations`] — the three §3 proof obligations, executable:
//!   marshalling round-trips, the mapping obligation, and data-race
//!   freedom over syscall buffers.
//! * [`theorem`] — the §4.4 refinement theorem check: every observable
//!   behaviour (syscall return values, memory read results) of the
//!   kernel-on-hardware matches the abstract model, over randomized
//!   multi-process workloads.
//! * [`uring`] — differential verification of the asynchronous
//!   submission/completion rings: a ring-driven kernel against a
//!   synchronous twin, compared on every completion and on the final
//!   abstract state.
//! * [`invariants`] — the end-to-end safety invariants of
//!   `INVARIANTS.md`, each swept under enumerated fault schedules
//!   (crash points, wire faults, torn writes) rather than single seeds,
//!   with per-family ablations proving the sweeps are not vacuous.
//! * [`vcs`] — the verification-condition population for the whole OS
//!   contract (scheduler sanity, NR linearizability, FS crash safety,
//!   network transport spec, uring linearization, the fault-schedule
//!   invariant families, and the above), complementing the page table's
//!   220 VCs.

pub mod invariants;
pub mod metrics;
pub mod obligations;
pub mod sys;
pub mod sys_spec;
pub mod theorem;
pub mod uring;
pub mod vcs;
pub mod view;

pub use sys::Sys;
pub use sys_spec::{AbsOp, AbsRet, ProcSpec, SysState};
pub use view::view;
