//! Verification conditions for the full OS contract.
//!
//! The page table's 220 VCs ([`veros_pagetable::vcs`]) regenerate the
//! paper's Figure 1a. This module is the *vision* part made concrete:
//! obligations for every component of the §1 inventory, so `cargo run -p
//! veros-bench --bin audit` discharges the whole stack:
//!
//! * the three §3 obligations (marshalling, mapping, race freedom),
//! * the §4.4 refinement theorem over randomized traces,
//! * scheduler sanity (the execution-model invariants),
//! * node-replication linearizability (the §4.3 "verify NR once" step),
//! * filesystem crash safety,
//! * the network transport's prefix-delivery spec,
//! * the userspace mutex's mutual exclusion (the §3 futex example),
//! * the block-store wire protocol's marshalling + checksum integrity.

use veros_spec::rng::SpecRng;
use veros_spec::{check_linearizable, Recorder, SeqSpec, VcEngine, VcKind};

use crate::obligations;
use crate::theorem;

/// Sizing profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Runs inside `cargo test`.
    Quick,
    /// Audit-scale (release binary).
    Full,
}

struct Params {
    refine_steps: usize,
    refine_seeds: u64,
    marshal_iters: usize,
    mapping_steps: usize,
    sched_steps: usize,
    nr_ops_per_thread: usize,
    fs_crash_seeds: u64,
    rdt_seeds: u64,
    uring_seeds: u64,
    uring_steps: usize,
    mutex_workers: u32,
    mutex_incs: u32,
    wire_iters: usize,
    invariant_seeds: u64,
    invariant_schedules: usize,
}

impl Profile {
    fn params(self) -> Params {
        match self {
            Profile::Quick => Params {
                refine_steps: 120,
                refine_seeds: 4,
                marshal_iters: 300,
                mapping_steps: 30,
                sched_steps: 200,
                nr_ops_per_thread: 6,
                fs_crash_seeds: 4,
                rdt_seeds: 4,
                uring_seeds: 4,
                uring_steps: 48,
                mutex_workers: 3,
                mutex_incs: 5,
                wire_iters: 200,
                invariant_seeds: 2,
                invariant_schedules: 2,
            },
            Profile::Full => Params {
                refine_steps: 3_000,
                refine_seeds: 24,
                marshal_iters: 200_000,
                mapping_steps: 600,
                sched_steps: 20_000,
                nr_ops_per_thread: 10,
                fs_crash_seeds: 24,
                rdt_seeds: 16,
                uring_seeds: 8,
                uring_steps: 240,
                mutex_workers: 4,
                mutex_incs: 40,
                wire_iters: 20_000,
                invariant_seeds: 8,
                invariant_schedules: 4,
            },
        }
    }
}

const MODULE: &str = "os-contract";

/// Registers the full-stack VC population.
pub fn register_all(engine: &mut VcEngine, profile: Profile) {
    register_all_with(engine, profile, None);
}

/// [`register_all`] with the invariant fault-schedule depth overridden
/// — the audit's `--schedules N` deep-sweep knob. `None` keeps the
/// profile's sizing. The override changes only how many schedules each
/// `invariant::*` VC sweeps, never which VCs exist, so names (and the
/// dependency map's anchors) are stable across depths; sweeps of ≥ 8
/// schedules keep the lattice corner-pinning guarantee
/// (`veros_spec::fault::FaultSchedule::sweep`).
pub fn register_all_with(
    engine: &mut VcEngine,
    profile: Profile,
    invariant_schedules: Option<usize>,
) {
    let mut p = profile.params();
    if let Some(n) = invariant_schedules {
        p.invariant_schedules = n.max(1);
    }

    // --- §3 obligations ---------------------------------------------------
    engine.register(MODULE, VcKind::Marshalling, "abi::all_variants_roundtrip", || {
        obligations::marshalling_regs_roundtrip()
    });
    for seed in 0..4u64 {
        let iters = p.marshal_iters;
        engine.register(
            MODULE,
            VcKind::Marshalling,
            format!("abi::random_args_s{seed}"),
            move || obligations::marshalling_random_args(seed, iters),
        );
        engine.register(
            MODULE,
            VcKind::Marshalling,
            format!("abi::decode_fuzz_s{seed}"),
            move || obligations::marshalling_decode_fuzz(seed, iters),
        );
        engine.register(
            MODULE,
            VcKind::Marshalling,
            format!("wire::typed_roundtrip_s{seed}"),
            move || obligations::marshalling_bytes_roundtrip(seed, iters / 4),
        );
    }
    for seed in 0..6u64 {
        let steps = p.mapping_steps;
        engine.register(
            MODULE,
            VcKind::Interpretation,
            format!("mapping::user_buffers_via_page_table_s{seed}"),
            move || obligations::mapping_obligation(seed, steps),
        );
    }
    for seed in 0..4u64 {
        let steps = p.mapping_steps;
        engine.register(
            MODULE,
            VcKind::RaceFreedom,
            format!("race::serialized_buffer_access_s{seed}"),
            move || obligations::race_freedom_obligation(seed, steps),
        );
    }

    // --- §4.4 refinement theorem -------------------------------------------
    // The random traces exercise the complete syscall surface; veros-lint's
    // obligation-coverage check cross-references this list against the
    // `Syscall` enum.
    // covers: Syscall::Spawn, Syscall::Exit, Syscall::Wait, Syscall::Map
    // covers: Syscall::Unmap, Syscall::Open, Syscall::Read, Syscall::Write
    // covers: Syscall::Seek, Syscall::Close, Syscall::Unlink
    // covers: Syscall::FutexWait, Syscall::FutexWake, Syscall::ThreadSpawn
    // covers: Syscall::Yield, Syscall::ClockRead
    for seed in 0..p.refine_seeds {
        let steps = p.refine_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("theorem::kernel_refines_sys_spec_s{seed}"),
            move || theorem::refinement_run(seed, steps, 25).map(|_| ()),
        );
    }

    // --- scheduler sanity ----------------------------------------------------
    for seed in 0..6u64 {
        let steps = p.sched_steps;
        engine.register(
            MODULE,
            VcKind::Invariant,
            format!("scheduler::sanity_s{seed}"),
            move || scheduler_sanity(seed, steps),
        );
    }

    // --- NR linearizability ---------------------------------------------------
    for (tag, replicas, threads) in [("r1t2", 1usize, 2usize), ("r2t2", 2, 2), ("r2t3", 2, 3)] {
        let ops = p.nr_ops_per_thread;
        engine.register(
            MODULE,
            VcKind::Linearizability,
            format!("nr::counter_history_{tag}"),
            move || nr_linearizable(replicas, threads, ops),
        );
    }

    // --- NR-replicated address space ------------------------------------------
    // Drives the replicated memory system (the Fig 1b/1c workload
    // structure) against a sequential reference replica.
    // covers: VSpaceWriteOp::MapNew, VSpaceWriteOp::Unmap
    // covers: VSpaceWriteOp::MapRange, VSpaceWriteOp::UnmapRange
    // covers: VSpaceReadOp::Resolve, VSpaceReadOp::MappedBytes
    for seed in 0..4u64 {
        let steps = p.mapping_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("nr::vspace_replicas_match_reference_s{seed}"),
            move || vspace_replication_consistent(seed, steps),
        );
    }

    // --- translation cache coherence ------------------------------------------
    // The resolve fast path (veros-kernel's software TLB) must be
    // invisible: cached answers always equal what the high-level spec
    // map says, across random map/unmap/range traffic.
    for seed in 0..4u64 {
        let steps = p.mapping_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("tlb::cache_agrees_with_spec_map_s{seed}"),
            move || translation_cache_coherent(seed, steps),
        );
    }

    // --- filesystem crash safety ------------------------------------------------
    for seed in 0..p.fs_crash_seeds {
        engine.register(
            MODULE,
            VcKind::Property,
            format!("fs::crash_recovers_committed_boundary_s{seed}"),
            move || fs_crash_safety(seed),
        );
    }

    // --- network transport spec ----------------------------------------------
    for seed in 0..p.rdt_seeds {
        engine.register(
            MODULE,
            VcKind::Property,
            format!("net::rdt_prefix_delivery_s{seed}"),
            move || rdt_prefix_spec(seed),
        );
    }

    // --- uring: asynchronous submission/completion rings ----------------------
    // The ring path must be invisible to the OS contract: every CQE
    // result equals the synchronous dispatch result of its SQE in the
    // single order the engine performed them (witnessed by its dispatch
    // log and by a policy-mirroring synchronous twin on a second
    // kernel), non-blocking submissions complete FIFO, and the final
    // abstract kernel states are identical.
    for seed in 0..p.uring_seeds {
        let steps = p.uring_steps;
        engine.register(
            MODULE,
            VcKind::Linearizability,
            format!("uring::ring_linearizes_to_sync_dispatch_s{seed}"),
            move || crate::uring::differential_run(seed, steps),
        );
    }
    // Exactly-once delivery across wraparound and full/empty boundaries
    // of a deliberately tiny ring (depth 4, constant backpressure).
    for seed in 0..p.uring_seeds {
        let steps = p.uring_steps * 4;
        engine.register(
            MODULE,
            VcKind::Property,
            format!("uring::no_entry_lost_or_duplicated_s{seed}"),
            move || crate::uring::ring_exactly_once(seed, steps),
        );
    }
    engine.register(
        MODULE,
        VcKind::Property,
        "uring::telemetry_counters_coherent",
        crate::uring::telemetry_counters_coherent,
    );
    // Multi-ring linearization: several per-thread rings drained by one
    // SQPOLL-style poller still linearize, ring for ring, against a
    // poller-policy-mirroring twin — and the kernels converge.
    for seed in 0..p.uring_seeds {
        let steps = p.uring_steps;
        let rings = 2 + (seed as usize % 3);
        engine.register(
            MODULE,
            VcKind::Linearizability,
            format!("uring::multi_ring_linearizes_s{seed}"),
            move || crate::uring::multi_ring_differential(seed, rings, steps),
        );
    }
    // Chain atomicity: a failing link cancels exactly its suffix —
    // never the completed prefix, never a later chain — across
    // wraparound and drain-split chains on a tiny ring.
    for seed in 0..p.uring_seeds {
        let steps = p.uring_steps;
        engine.register(
            MODULE,
            VcKind::Property,
            format!("uring::chain_atomicity_s{seed}"),
            move || crate::uring::chain_atomicity(seed, steps),
        );
    }
    // Poller fairness: the per-ring burst budget bounds how many sweeps
    // any entry waits, no matter how hard other rings flood.
    for seed in 0..p.uring_seeds {
        let rounds = p.uring_steps / 2;
        engine.register(
            MODULE,
            VcKind::Property,
            format!("uring::poller_fairness_bound_s{seed}"),
            move || crate::uring::poller_fairness_bound(seed, rounds),
        );
    }

    // --- userspace mutex: the §3 futex example ---------------------------------
    // Mutual exclusion of the ulib futex mutex over the model kernel:
    // cooperative workers hold the lock across scheduler yields, so any
    // exclusion break shows up as a counter moving under a held lock or
    // as a lost update that wedges the workload.
    for seed in 0..4u64 {
        let (workers, incs) = (p.mutex_workers, p.mutex_incs);
        engine.register(
            MODULE,
            VcKind::RaceFreedom,
            format!("ulib::futex_mutex_mutual_exclusion_s{seed}"),
            move || ulib_mutex_exclusion(seed, workers, incs),
        );
    }

    // --- block-store wire protocol ---------------------------------------------
    // The storage protocol's marshalling obligation: random messages
    // round-trip, ids echo, truncations decode to None, and the
    // end-to-end checksum catches single-byte corruption.
    for seed in 0..2u64 {
        let iters = p.wire_iters;
        engine.register(
            MODULE,
            VcKind::Marshalling,
            format!("blockstore::wire_roundtrip_checksum_s{seed}"),
            move || blockstore_wire_roundtrip(seed, iters),
        );
    }

    // --- telemetry coherence ---------------------------------------------------
    // The observability layer must agree with spec-visible behaviour:
    // with instruments live, counters are exact and own-thread
    // increments immediately visible, so a single-threaded workload's
    // deltas are hard lower bounds (concurrent VCs can only inflate
    // them); with the feature off, every instrument must read zero.
    engine.register(
        MODULE,
        VcKind::Property,
        "telemetry::tlb_counters_match_resolve_behaviour",
        telemetry_tlb_counters_coherent,
    );
    engine.register(
        MODULE,
        VcKind::Property,
        "telemetry::journal_counters_match_commit_replay",
        telemetry_journal_counters_coherent,
    );

    // --- end-to-end invariants under fault schedules ---------------------------
    // The INVARIANTS.md families. Each VC sweeps a seeded *enumeration*
    // of fault schedules (crash point × wire faults × torn writes, via
    // `veros_spec::fault`), never a single seed. The names self-anchor
    // to the doc's backticked `invariant::<family>::*` globs; the
    // audit's invariant-coverage check enforces that mapping in both
    // directions.
    {
        use crate::invariants::{self, Ablation};
        for seed in 0..p.invariant_seeds {
            let n = p.invariant_schedules;
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::durability::acked_survives_crash_s{seed}"),
                move || invariants::durability(seed, n, Ablation::None),
            );
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::exactly_once::applied_once_in_order_s{seed}"),
                move || invariants::exactly_once(seed, n, Ablation::None),
            );
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::fs_journal::recovers_committed_boundary_s{seed}"),
                move || invariants::fs_journal(seed, n, Ablation::None),
            );
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::frames::conservation_under_pressure_s{seed}"),
                move || invariants::frames(seed, n, Ablation::None),
            );
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::uring_chain::crash_leaves_exact_prefix_s{seed}"),
                move || invariants::uring_chain(seed, n, Ablation::None),
            );
            engine.register(
                MODULE,
                VcKind::Invariant,
                format!("invariant::cluster_durability::acked_survives_any_chain_loss_s{seed}"),
                move || invariants::cluster_durability(seed, n, Ablation::None),
            );
        }
    }
}

/// Random scheduler workouts asserting the sanity invariant throughout.
fn scheduler_sanity(seed: u64, steps: usize) -> Result<(), String> {
    use veros_kernel::thread::BlockReason;
    use veros_kernel::{Pid, Scheduler};

    let mut rng = SpecRng::seeded(seed ^ 0x5c4ed);
    let cores = 1 + rng.index(4);
    let mut sched = Scheduler::new(cores);
    let mut tids = Vec::new();
    for _ in 0..(2 + rng.index(6)) {
        let aff = if rng.chance(1, 3) {
            Some(rng.index(cores))
        } else {
            None
        };
        tids.push(sched.spawn_thread(Pid(1), aff).map_err(|e| format!("{e:?}"))?);
    }
    for step in 0..steps {
        match rng.below(10) {
            0..=4 => {
                let core = rng.index(cores);
                sched.schedule(core).map_err(|e| format!("{e:?}"))?;
            }
            5 => {
                let core = rng.index(cores);
                if sched.running_on(core).is_some() {
                    sched
                        .block_current(core, BlockReason::Futex(rng.next_u64()))
                        .map_err(|e| format!("{e:?}"))?;
                }
            }
            6 => {
                let tid = *rng.choose(&tids);
                let _ = sched.unblock(tid); // WrongState is fine.
            }
            7 => {
                let core = rng.index(cores);
                sched.tick(core).map_err(|e| format!("{e:?}"))?;
            }
            8 => {
                if rng.chance(1, 10) {
                    let tid = *rng.choose(&tids);
                    let _ = sched.exit_thread(tid);
                }
            }
            _ => {
                if tids.len() < 12 {
                    tids.push(
                        sched
                            .spawn_thread(Pid(1), None)
                            .map_err(|e| format!("{e:?}"))?,
                    );
                }
            }
        }
        sched
            .invariant()
            .map_err(|e| format!("seed {seed} step {step}: {e}"))?;
    }
    Ok(())
}

/// Sequential spec for the NR counter used in history checking.
struct CounterSpec;

#[derive(Clone, Debug, PartialEq, Eq)]
enum CounterOp {
    Add(u64),
    Get,
}

impl SeqSpec for CounterSpec {
    type Op = CounterOp;
    type Ret = u64;
    type State = u64;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &CounterOp) -> (u64, u64) {
        match op {
            CounterOp::Add(n) => (state + n, state + n),
            CounterOp::Get => (*state, *state),
        }
    }
}

/// NR dispatch for the counter.
#[derive(Clone, Default)]
struct NrCounter(u64);

impl veros_nr::Dispatch for NrCounter {
    type ReadOp = ();
    type WriteOp = u64;
    type Response = u64;

    fn dispatch(&self, _: ()) -> u64 {
        self.0
    }

    fn dispatch_mut(&mut self, n: &u64) -> u64 {
        self.0 += n;
        self.0
    }
}

/// Records a concurrent NR history on real threads and checks it with
/// the Wing–Gong linearizability checker — "verify NR once", §4.3.
fn nr_linearizable(replicas: usize, threads: usize, ops_per_thread: usize) -> Result<(), String> {
    use std::sync::Arc;

    let nr = Arc::new(veros_nr::NodeReplicated::new(
        replicas,
        threads,
        64,
        NrCounter::default,
    ));
    let recorder = Arc::new(Recorder::<CounterOp, u64>::new());
    let mut handles = Vec::new();
    for t in 0..threads * replicas {
        let nr = Arc::clone(&nr);
        let recorder = Arc::clone(&recorder);
        handles.push(std::thread::spawn(move || {
            let tkn = nr.register(t % replicas).expect("slot");
            for i in 0..ops_per_thread {
                if i % 3 == 2 {
                    recorder.invoke(t, CounterOp::Get);
                    let v = nr.execute((), tkn);
                    recorder.response(t, v);
                } else {
                    let add = (t * 10 + i + 1) as u64;
                    recorder.invoke(t, CounterOp::Add(add));
                    let v = nr.execute_mut(add, tkn);
                    recorder.response(t, v);
                }
            }
        }));
    }
    for h in handles {
        h.join().map_err(|_| "worker panicked".to_string())?;
    }
    let history = Arc::try_unwrap(recorder)
        .map_err(|_| "recorder still shared".to_string())?
        .finish();
    check_linearizable(&CounterSpec, &history)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// The NR-replicated address space agrees with a sequential reference on
/// random operation sequences, observed from every replica.
///
/// Replica state is deterministic (same log order, same buddy allocator
/// decisions), so each response — including the physical addresses
/// `Resolve` returns — must equal the reference's, and reads must be
/// fresh on whichever replica serves them.
fn vspace_replication_consistent(seed: u64, steps: usize) -> Result<(), String> {
    use veros_kernel::vspace::{PtKind, VSpaceDispatch, VSpaceReadOp, VSpaceWriteOp};
    use veros_nr::{Dispatch, NodeReplicated};

    let replicas = 2;
    let nr = NodeReplicated::new(replicas, 1, 32, || VSpaceDispatch::new(256, PtKind::Verified));
    let mut reference = VSpaceDispatch::new(256, PtKind::Verified);
    let tkns: Vec<_> = (0..replicas)
        .map(|r| nr.register(r).ok_or(format!("replica {r} full")))
        .collect::<Result<_, _>>()?;
    let mut rng = SpecRng::seeded(seed ^ 0x5bace);
    let vas: Vec<u64> = (0..8).map(|i| 0x40_0000 + i * 0x1000).collect();
    for step in 0..steps {
        let va = *rng.choose(&vas);
        match rng.below(6) {
            0 | 1 => {
                let op = if rng.chance(1, 2) {
                    VSpaceWriteOp::MapNew { va }
                } else {
                    VSpaceWriteOp::Unmap { va }
                };
                let got = nr.execute_mut(op, tkns[rng.index(replicas)]);
                let want = reference.dispatch_mut(&op);
                if got != want {
                    return Err(format!(
                        "seed {seed} step {step}: {op:?} -> {got:?}, reference {want:?}"
                    ));
                }
            }
            2 => {
                let pages = 1 + rng.below(6);
                let op = if rng.chance(1, 2) {
                    VSpaceWriteOp::MapRange { va, pages }
                } else {
                    VSpaceWriteOp::UnmapRange { va, pages }
                };
                let got = nr.execute_mut(op, tkns[rng.index(replicas)]);
                let want = reference.dispatch_mut(&op);
                if got != want {
                    return Err(format!(
                        "seed {seed} step {step}: {op:?} -> {got:?}, reference {want:?}"
                    ));
                }
            }
            3 | 4 => {
                let op = VSpaceReadOp::Resolve { va };
                let want = reference.dispatch(op);
                for &tkn in &tkns {
                    let got = nr.execute(op, tkn);
                    if got != want {
                        return Err(format!(
                            "seed {seed} step {step}: replica {} {op:?} -> {got:?}, reference {want:?}",
                            tkn.replica
                        ));
                    }
                }
            }
            _ => {
                let op = VSpaceReadOp::MappedBytes;
                let want = reference.dispatch(op);
                for &tkn in &tkns {
                    let got = nr.execute(op, tkn);
                    if got != want {
                        return Err(format!(
                            "seed {seed} step {step}: replica {} mapped bytes {got:?}, reference {want:?}",
                            tkn.replica
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// The translation cache never changes what `resolve` answers: after
/// every operation, resolving twice (a cold walk that fills the cache,
/// then the cached hit) must agree with the high-level specification map
/// mirroring the successful operations.
///
/// This is the coherence obligation for the resolve fast path: the cache
/// is an implementation detail below the spec line, so any divergence —
/// a stale entry surviving an unmap, a wrong offset reconstruction, an
/// entry outliving a remap — shows up as a spec mismatch here.
fn translation_cache_coherent(seed: u64, steps: usize) -> Result<(), String> {
    use veros_hw::{PAddr, PhysMem, VAddr, PAGE_4K};
    use veros_kernel::vspace::{PtKind, VSpace};
    use veros_kernel::BuddyAllocator;
    use veros_pagetable::{HighSpec, MapFlags, MapRequest, PageSize};

    let mut mem = PhysMem::new(512);
    let mut alloc = BuddyAllocator::new(PAddr(16 * PAGE_4K), 496);
    let mut v = VSpace::new(&mut mem, &mut alloc, PtKind::Verified).map_err(|e| format!("{e:?}"))?;
    // The spec mirror: exactly the mappings the successful operations
    // installed. Failed operations change neither side.
    let mut spec = HighSpec::new();
    let mut rng = SpecRng::seeded(seed ^ 0x71b);
    let vas: Vec<u64> = (0..10).map(|i| 0x40_0000 + i * 0x1000).collect();
    for step in 0..steps {
        let va = VAddr(*rng.choose(&vas));
        match rng.below(4) {
            0 => {
                if let Ok(pa) = v.map_new(&mut mem, &mut alloc, va, MapFlags::user_rw()) {
                    let req = MapRequest { va, pa, size: PageSize::Size4K, flags: MapFlags::user_rw() };
                    spec.apply_map(&req)
                        .map_err(|e| format!("seed {seed} step {step}: spec rejects map: {e:?}"))?;
                }
            }
            1 => {
                let pages = 1 + rng.below(6);
                if let Ok(base) = v.map_range_new(&mut mem, &mut alloc, va, pages, MapFlags::user_rw()) {
                    for i in 0..pages {
                        let req = MapRequest {
                            va: VAddr(va.0 + i * PAGE_4K),
                            pa: PAddr(base.0 + i * PAGE_4K),
                            size: PageSize::Size4K,
                            flags: MapFlags::user_rw(),
                        };
                        spec.apply_map(&req).map_err(|e| {
                            format!("seed {seed} step {step}: spec rejects range page {i}: {e:?}")
                        })?;
                    }
                }
            }
            2 => {
                if v.unmap(&mut mem, &mut alloc, va).is_ok() {
                    spec.apply_unmap(va)
                        .map_err(|e| format!("seed {seed} step {step}: spec rejects unmap: {e:?}"))?;
                }
            }
            _ => {
                let pages = 1 + rng.below(6);
                if let Ok(bytes) = v.unmap_range(&mut mem, &mut alloc, va, pages) {
                    let mut spec_bytes = 0u64;
                    for i in 0..pages {
                        let m = spec.apply_unmap(VAddr(va.0 + i * PAGE_4K)).map_err(|e| {
                            format!("seed {seed} step {step}: spec rejects range slot {i}: {e:?}")
                        })?;
                        spec_bytes += m.size.bytes();
                    }
                    if spec_bytes != bytes {
                        return Err(format!(
                            "seed {seed} step {step}: unmap_range freed {bytes} bytes, spec {spec_bytes}"
                        ));
                    }
                }
            }
        }
        // Probe: cold walk (fills the cache), then the cached hit; both
        // must equal the spec's answer. Off-page-base offsets exercise
        // the cache's physical-address reconstruction.
        for &probe in &vas {
            for offset in [0u64, 0x123] {
                let pv = VAddr(probe + offset);
                let want = spec.resolve(pv);
                for pass in ["cold", "cached"] {
                    let got = v.resolve(&mem, pv);
                    if got != want {
                        return Err(format!(
                            "seed {seed} step {step}: {pass} resolve({pv:?}) -> {got:?}, spec {want:?}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Telemetry coherence: the TLB counters must track resolve-path
/// behaviour (misses, epoch invalidations) as exact lower bounds, the
/// *uninstrumented* hit path must leave the miss counter untouched, and
/// everything reads zero in a telemetry-off build.
fn telemetry_tlb_counters_coherent() -> Result<(), String> {
    use veros_hw::{PAddr, PhysMem, VAddr, PAGE_4K};
    use veros_kernel::metrics::{TLB_EPOCH_INVALIDATIONS, TLB_MISSES};
    use veros_kernel::vspace::{PtKind, VSpace};
    use veros_kernel::BuddyAllocator;
    use veros_pagetable::MapFlags;

    let misses0 = TLB_MISSES.get();
    let inval0 = TLB_EPOCH_INVALIDATIONS.get();

    let mut mem = PhysMem::new(512);
    let mut alloc = BuddyAllocator::new(PAddr(16 * PAGE_4K), 496);
    let mut v = VSpace::new(&mut mem, &mut alloc, PtKind::Verified).map_err(|e| format!("{e:?}"))?;
    let vas: Vec<u64> = (0..8).map(|i| 0x40_0000 + i * PAGE_4K).collect();
    for &va in &vas {
        v.map_new(&mut mem, &mut alloc, VAddr(va), MapFlags::user_rw())
            .map_err(|e| format!("map {va:#x}: {e:?}"))?;
    }
    // Warm pass: every resolve is a cold walk (8 misses), filling the
    // cache; then 50 hot rounds (400 hits — uncounted by design, the
    // hit path carries no instrument; see DESIGN.md §10).
    for &va in &vas {
        v.resolve(&mem, VAddr(va)).map_err(|e| format!("warm resolve: {e:?}"))?;
    }
    for _ in 0..50 {
        for &va in &vas {
            v.resolve(&mem, VAddr(va)).map_err(|e| format!("hot resolve: {e:?}"))?;
        }
    }
    // Unmap one page: the whole cache is epoch-invalidated, so the next
    // pass over all 8 addresses misses again (including the failing
    // resolve of the unmapped page, counted before the walk).
    v.unmap(&mut mem, &mut alloc, VAddr(vas[0]))
        .map_err(|e| format!("unmap: {e:?}"))?;
    let misses_before_repass = TLB_MISSES.get();
    for &va in &vas {
        let _ = v.resolve(&mem, VAddr(va)); // vas[0] now errs, by design.
    }

    if !veros_telemetry::enabled() {
        if TLB_MISSES.get() != 0 || TLB_EPOCH_INVALIDATIONS.get() != 0 {
            return Err("telemetry disabled but TLB counters are nonzero".into());
        }
        return Ok(());
    }
    let d_misses = TLB_MISSES.get() - misses0;
    let d_inval = TLB_EPOCH_INVALIDATIONS.get() - inval0;
    let d_repass = TLB_MISSES.get() - misses_before_repass;
    if d_misses < 8 {
        return Err(format!("8 cold walks recorded only {d_misses} misses"));
    }
    if d_inval < 1 {
        return Err(format!("unmap recorded {d_inval} epoch invalidations"));
    }
    if d_repass < 8 {
        return Err(format!(
            "post-invalidation pass over 8 pages recorded only {d_repass} misses"
        ));
    }
    Ok(())
}

/// Telemetry coherence: journal counters must track commits, recovery
/// replay (cross-checked against the instance-exact `replayed_ops`),
/// and the WAL's on-disk footprint; and read zero with telemetry off.
fn telemetry_journal_counters_coherent() -> Result<(), String> {
    use veros_fs::journal::{FsOp, JournaledFs};
    use veros_fs::metrics::{JOURNAL_COMMITS, JOURNAL_REPLAYED, WAL_BYTES};
    use veros_hw::{SimDisk, SECTOR_SIZE};

    let commits0 = JOURNAL_COMMITS.get();
    let replayed0 = JOURNAL_REPLAYED.get();
    let wal0 = WAL_BYTES.get();

    let mut jfs = JournaledFs::format(SimDisk::new(1024));
    for i in 0..5u32 {
        let f = format!("/vc{i}");
        jfs.apply(FsOp::Create(f.clone())).map_err(|e| e.to_string())?;
        jfs.apply(FsOp::WriteAt(f, 0, vec![i as u8; 64])).map_err(|e| e.to_string())?;
        jfs.commit().map_err(|e| e.to_string())?;
    }
    let recovered = JournaledFs::recover(jfs.into_disk());
    if recovered.replayed_ops != 10 {
        return Err(format!(
            "recovery replayed {} ops, spec says exactly 10",
            recovered.replayed_ops
        ));
    }

    if !veros_telemetry::enabled() {
        if JOURNAL_COMMITS.get() != 0 || JOURNAL_REPLAYED.get() != 0 || WAL_BYTES.get() != 0 {
            return Err("telemetry disabled but journal counters are nonzero".into());
        }
        return Ok(());
    }
    let d_commits = JOURNAL_COMMITS.get() - commits0;
    let d_replayed = JOURNAL_REPLAYED.get() - replayed0;
    let d_wal = WAL_BYTES.get() - wal0;
    if d_commits < 5 {
        return Err(format!("5 commits recorded only {d_commits}"));
    }
    if d_replayed < 10 {
        return Err(format!("10 replayed ops recorded only {d_replayed}"));
    }
    // 10 op records + 5 commit records, each at least one padded sector.
    let floor = 15 * SECTOR_SIZE as u64;
    if d_wal < floor {
        return Err(format!("WAL footprint {d_wal} below the {floor}-byte floor"));
    }
    Ok(())
}

/// Journal crash-safety over random histories (the spec from
/// `veros-fs::journal`).
fn fs_crash_safety(seed: u64) -> Result<(), String> {
    use veros_fs::journal::{FsOp, JournaledFs};
    use veros_fs::MemFs;
    use veros_hw::SimDisk;

    let mut rng = SpecRng::seeded(seed ^ 0xc4a5);
    let mut jfs = JournaledFs::format(SimDisk::new(4096));
    let mut boundaries = vec![MemFs::new()];
    for i in 0..40 {
        let f = format!("/f{}", rng.below(6));
        let op = match rng.below(4) {
            0 => FsOp::Create(f),
            1 => FsOp::WriteAt(f, rng.below(128), vec![rng.below(255) as u8; 16]),
            2 => FsOp::Truncate(f, rng.below(64)),
            _ => FsOp::Unlink(f),
        };
        let _ = jfs.apply(op);
        if i % 7 == 6 {
            jfs.commit().map_err(|e| e.to_string())?;
            boundaries.push(jfs.fs.clone());
        }
    }
    let _ = jfs.apply(FsOp::Create("/uncommitted".into()));
    let mut disk = jfs.into_disk();
    disk.crash_random(&mut rng);
    let recovered = JournaledFs::recover(disk);
    if !boundaries.contains(&recovered.fs) {
        return Err(format!("seed {seed}: recovered state is not a committed boundary"));
    }
    Ok(())
}

/// The reliable transport's prefix-delivery spec under a hostile wire.
fn rdt_prefix_spec(seed: u64) -> Result<(), String> {
    use veros_net::rdt::RdtEndpoint;
    use veros_net::sim::{FaultPlan, Network};

    let mut net = Network::new(2, FaultPlan::hostile(), seed ^ 0x2d7);
    let sa = net.host(0).bind(7000).map_err(|e| format!("{e:?}"))?;
    let sb = net.host(1).bind(7001).map_err(|e| format!("{e:?}"))?;
    let ip0 = net.host(0).ip();
    let ip1 = net.host(1).ip();
    let mut a = RdtEndpoint::new(sa, (ip1, 7001));
    let mut b = RdtEndpoint::new(sb, (ip0, 7000));
    let sent: Vec<Vec<u8>> = (0..25u8).map(|i| vec![i, i ^ 0x5a]).collect();
    for m in &sent {
        a.send(net.host(0), 0, m.clone()).map_err(|e| format!("{e:?}"))?;
    }
    let mut got = Vec::new();
    let mut done_at = None;
    for now in 0..5000u64 {
        net.step();
        a.poll(net.host(0), now).map_err(|e| format!("{e:?}"))?;
        b.poll(net.host(1), now).map_err(|e| format!("{e:?}"))?;
        a.on_tick(net.host(0), now).map_err(|e| format!("{e:?}"))?;
        b.on_tick(net.host(1), now).map_err(|e| format!("{e:?}"))?;
        while let Some(m) = b.recv() {
            got.push(m);
        }
        // Prefix property must hold at *every* instant, not just the end.
        if got.len() > sent.len() || got[..] != sent[..got.len()] {
            return Err(format!("seed {seed} t={now}: delivery is not a prefix"));
        }
        if a.fully_acked() && done_at.is_none() {
            done_at = Some(now);
        }
        if done_at.is_some() && got.len() == sent.len() {
            return Ok(());
        }
    }
    Err(format!(
        "seed {seed}: transport did not deliver everything ({} of {})",
        got.len(),
        sent.len()
    ))
}

/// The §3 futex example as a checked obligation: cooperative workers
/// increment a shared counter under the ulib mutex, each deliberately
/// holding the lock across a scheduler reschedule. Exclusion failures
/// are witnessed two ways: a worker that sees the counter move while it
/// holds the lock exits nonzero, and a lost update leaves the count
/// short so some worker never reaches its quota and the run wedges.
fn ulib_mutex_exclusion(seed: u64, workers: u32, incs_per_worker: u32) -> Result<(), String> {
    use veros_kernel::{Kernel, KernelConfig, Syscall};
    use veros_ulib::{LockAttempt, LockState, Runtime, Step, UMutex};

    let kernel = Kernel::boot(KernelConfig { cores: 2, ..Default::default() })
        .map_err(|e| format!("boot: {e:?}"))?;
    let (pid, tid) = (kernel.init_pid, kernel.init_tid);
    let mut rt = Runtime::new(kernel);
    rt.kernel.sched.timeslice = 1 + seed % 3;
    rt.kernel
        .syscall(
            (pid, tid),
            Syscall::Map { va: 0x10_0000, pages: 1, writable: true },
        )
        .map_err(|e| format!("map: {e:?}"))?;
    const MUTEX: u64 = 0x10_0000;
    const COUNT: u64 = 0x10_0008;
    rt.attach(pid, tid, Box::new(|_| Step::Done(0)));
    let mut worker_tids = Vec::new();
    for _ in 0..workers {
        let mut done = 0u32;
        let mut lock = LockState::default();
        let mut holding = false;
        let mut stash = 0u32;
        let t = rt
            .spawn_task(
                (pid, tid),
                None,
                Box::new(move |ctx| {
                    if done == incs_per_worker {
                        return Step::Done(0);
                    }
                    let m = UMutex::at(MUTEX);
                    if !holding {
                        return match m.lock_attempt(ctx, &mut lock) {
                            Ok(LockAttempt::Acquired) => {
                                holding = true;
                                stash = ctx.read_u32(COUNT).unwrap_or(u32::MAX);
                                // Keep holding across a reschedule: a
                                // broken lock now lets another worker
                                // read the same counter value.
                                Step::Yield
                            }
                            Ok(_) => Step::Yield,
                            Err(_) => Step::Done(2),
                        };
                    }
                    let now = ctx.read_u32(COUNT).unwrap_or(u32::MAX);
                    if now != stash {
                        return Step::Done(1);
                    }
                    if ctx.write_u32(COUNT, now + 1).is_err() || m.unlock(ctx).is_err() {
                        return Step::Done(2);
                    }
                    holding = false;
                    done += 1;
                    Step::Yield
                }),
            )
            .map_err(|e| format!("spawn: {e:?}"))?;
        worker_tids.push(t);
    }
    if !rt.run(400_000) {
        return Err(format!(
            "seed {seed}: mutex workload wedged (lost update or deadlock)"
        ));
    }
    for t in worker_tids {
        match rt.exit_code(t) {
            Some(0) => {}
            Some(1) => {
                return Err(format!(
                    "seed {seed}: counter moved while a worker held the mutex"
                ))
            }
            other => return Err(format!("seed {seed}: worker {t:?} exited {other:?}")),
        }
    }
    Ok(())
}

/// Block-store wire marshalling: random requests and responses
/// round-trip exactly, ids echo, every truncation decodes to `None`,
/// and the end-to-end block checksum changes under single-byte flips.
fn blockstore_wire_roundtrip(seed: u64, iters: usize) -> Result<(), String> {
    use veros_blockstore::wire::{block_checksum, Request, Response};

    let mut rng = SpecRng::seeded(seed ^ 0xb10c);
    for i in 0..iters {
        let id = rng.next_u64();
        let key = format!("k{}", rng.below(1000));
        let data: Vec<u8> = (0..rng.below(64)).map(|_| rng.below(256) as u8).collect();
        let req = match rng.below(4) {
            0 => Request::Put {
                id,
                key: key.clone(),
                checksum: block_checksum(&data),
                data: data.clone(),
                replicate: rng.chance(1, 2),
            },
            1 => Request::Get { id, key: key.clone() },
            2 => Request::Delete { id, key: key.clone(), replicate: rng.chance(1, 2) },
            _ => Request::List { id },
        };
        let bytes = req.encode();
        match Request::decode(&bytes) {
            Some(back) if back == req && back.id() == id => {}
            other => {
                return Err(format!("seed {seed} iter {i}: request round-trip gave {other:?}"))
            }
        }
        let cut = rng.index(bytes.len());
        if cut < bytes.len() && Request::decode(&bytes[..cut]).is_some() {
            return Err(format!("seed {seed} iter {i}: truncation at {cut} decoded"));
        }
        let resp = match rng.below(5) {
            0 => Response::PutOk { id },
            1 => Response::GetOk { id, checksum: block_checksum(&data), data: data.clone() },
            2 => Response::NotFound { id },
            3 => Response::Keys { id, keys: vec![key.clone(), format!("{key}x")] },
            _ => Response::Error { id, reason: "checksum mismatch".into() },
        };
        let rbytes = resp.encode();
        match Response::decode(&rbytes) {
            Some(back) if back == resp && back.id() == id => {}
            other => {
                return Err(format!("seed {seed} iter {i}: response round-trip gave {other:?}"))
            }
        }
        if !data.is_empty() {
            let mut bad = data.clone();
            let at = rng.index(bad.len());
            bad[at] ^= 0x41;
            if block_checksum(&bad) == block_checksum(&data) {
                return Err(format!(
                    "seed {seed} iter {i}: checksum unchanged under a single-byte flip"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_all_pass() {
        let mut engine = VcEngine::new();
        register_all(&mut engine, Profile::Quick);
        let report = engine.run();
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|o| format!("{}: {:?}", o.vc.name, o.status))
            .collect();
        assert!(failures.is_empty(), "failed VCs:\n{}", failures.join("\n"));
    }

    #[test]
    fn population_covers_all_kinds() {
        let mut engine = VcEngine::new();
        register_all(&mut engine, Profile::Quick);
        assert!(engine.len() >= 40, "population too small: {}", engine.len());
    }
}
