//! The `Sys` handle — the verified application's interface to the OS.
//!
//! §3 shows the shape: `pub fn read(sys: &mut Sys, ...) requires ...
//! ensures read_spec(old(sys).view(), sys.view(), ...)`. Verus erases
//! those clauses after proving them; here they are *checked*: in audit
//! mode every operation snapshots `view()` before and after, predicts
//! the transition with the abstract spec, and asserts both the return
//! value and the entire post-view match. An application written against
//! `Sys` therefore runs against exactly the contract the paper proposes.
//!
//! `&mut Sys` in every signature is the data-race-freedom obligation
//! discharged by Rust's ownership, as the paper argues: "the mutable
//! reference to buffer is guaranteed to be unique by the type system".

use veros_kernel::syscall::{abi, SysError, SysRet, Syscall};
use veros_kernel::{Kernel, Pid, Tid};

use crate::sys_spec::SysState;
use crate::view::view;

/// The system handle for one calling thread.
pub struct Sys<'k> {
    kernel: &'k mut Kernel,
    caller: (Pid, Tid),
    audit: bool,
}

/// A contract violation discovered in audit mode.
#[derive(Debug)]
pub struct ContractViolation {
    /// The operation that violated its ensures clause.
    pub call: String,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated its contract: {}", self.call, self.detail)
    }
}

impl<'k> Sys<'k> {
    /// Wraps a kernel for `caller`. With `audit`, every call checks its
    /// ensures clause against the abstract spec.
    pub fn new(kernel: &'k mut Kernel, caller: (Pid, Tid), audit: bool) -> Self {
        Self {
            kernel,
            caller,
            audit,
        }
    }

    /// The caller identity.
    pub fn caller(&self) -> (Pid, Tid) {
        self.caller
    }

    /// The abstract view of the system (the paper's `sys.view()`).
    pub fn view(&self) -> SysState {
        view(self.kernel)
    }

    /// Performs `call` through the register ABI, checking the contract
    /// in audit mode.
    pub fn call(&mut self, call: Syscall) -> Result<SysRet, ContractViolation> {
        if !self.audit {
            let regs = abi::encode_regs(&call);
            let (status, value) = self.kernel.syscall_regs(self.caller, regs);
            return Ok(abi::decode_ret(status, value).expect("well-formed return"));
        }
        // requires: the calling thread must exist and be runnable —
        // otherwise the transition is not enabled.
        let pre = self.view();
        let caller_ids = (self.caller.0 .0, self.caller.1 .0);
        let runnable = pre.runnable();
        if !runnable.contains(&caller_ids) {
            return Err(ContractViolation {
                call: format!("{call:?}"),
                detail: format!("caller {caller_ids:?} is not runnable in the pre-state"),
            });
        }
        // Predict with the spec.
        let mut predicted = pre.clone();
        let want_ret = predicted.syscall(caller_ids, &call);
        // Execute on the kernel via the full ABI.
        let regs = abi::encode_regs(&call);
        let (status, value) = self.kernel.syscall_regs(self.caller, regs);
        let got_ret = abi::decode_ret(status, value).expect("well-formed return");
        if got_ret != want_ret {
            return Err(ContractViolation {
                call: format!("{call:?}"),
                detail: format!("returned {got_ret:?}, spec says {want_ret:?}"),
            });
        }
        let post = self.view();
        if post != predicted {
            return Err(ContractViolation {
                call: format!("{call:?}"),
                detail: diff_summary(&predicted, &post),
            });
        }
        Ok(got_ret)
    }

    /// The paper's worked example: `read` with its ensures clause.
    ///
    /// Returns `(read_len, data)`; in audit mode additionally checks the
    /// literal `read_spec` predicate over the fd fragment of the views.
    pub fn read(
        &mut self,
        fd: u32,
        buf_ptr: u64,
        buf_len: u64,
    ) -> Result<Result<(u64, Vec<u8>), SysError>, ContractViolation> {
        let pre = self.audit.then(|| self.view());
        let ret = self.call(Syscall::Read {
            fd,
            buf_ptr,
            buf_len,
        })?;
        let read_len = match ret {
            Ok(n) => n,
            Err(e) => return Ok(Err(e)),
        };
        let data = self
            .kernel
            .read_user(self.caller.0, buf_ptr, read_len)
            .expect("buffer was just written");
        if let Some(pre) = pre {
            let post = self.view();
            if !crate::obligations::read_ensures(&pre, &post, self.caller.0 .0, fd, &data, read_len)
            {
                return Err(ContractViolation {
                    call: format!("read(fd={fd})"),
                    detail: "read_spec rejected the transition".into(),
                });
            }
        }
        Ok(Ok((read_len, data)))
    }

    /// Direct user-memory load through the execution model (checked
    /// against the abstract memory in audit mode).
    pub fn mem_read(&mut self, va: u64, len: u64) -> Result<Vec<u8>, SysError> {
        let got = self.kernel.read_user(self.caller.0, va, len);
        if self.audit {
            let want = self.view().mem_read(self.caller.0 .0, va, len);
            assert_eq!(got, want, "execution-model load diverged from the spec");
        }
        got
    }

    /// Direct user-memory store through the execution model.
    pub fn mem_write(&mut self, va: u64, data: &[u8]) -> Result<(), SysError> {
        let want = if self.audit {
            let mut spec = self.view();
            let r = spec.mem_write(self.caller.0 .0, va, data);
            Some((spec, r))
        } else {
            None
        };
        let got = self.kernel.write_user(self.caller.0, va, data);
        if let Some((spec, want_ret)) = want {
            assert_eq!(got, want_ret, "execution-model store result diverged");
            assert_eq!(self.view(), spec, "execution-model store state diverged");
        }
        got
    }
}

/// A short human-readable summary of where two views diverge (used by
/// the contract checker and the refinement driver).
pub fn diff_summary(want: &SysState, got: &SysState) -> String {
    if want.procs != got.procs {
        for (pid, wp) in &want.procs {
            match got.procs.get(pid) {
                None => return format!("process {pid} missing from post-view"),
                Some(gp) if gp != wp => {
                    if wp.mem != gp.mem {
                        return format!("process {pid}: memory diverged");
                    }
                    if wp.fds != gp.fds {
                        return format!(
                            "process {pid}: fds diverged (want {:?}, got {:?})",
                            wp.fds, gp.fds
                        );
                    }
                    if wp.threads != gp.threads {
                        return format!(
                            "process {pid}: threads diverged (want {:?}, got {:?})",
                            wp.threads, gp.threads
                        );
                    }
                    return format!("process {pid} diverged");
                }
                _ => {}
            }
        }
        return "post-view has extra processes".into();
    }
    if want.fs != got.fs {
        return "filesystem diverged".into();
    }
    if want.futexes != got.futexes {
        return format!(
            "futex queues diverged (want {:?}, got {:?})",
            want.futexes, got.futexes
        );
    }
    "counter/clock state diverged".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_kernel::KernelConfig;

    fn booted() -> (Kernel, (Pid, Tid)) {
        let k = Kernel::boot(KernelConfig::default()).unwrap();
        let c = (k.init_pid, k.init_tid);
        (k, c)
    }

    #[test]
    fn audited_calls_pass_their_contracts() {
        let (mut k, c) = booted();
        let mut sys = Sys::new(&mut k, c, true);
        sys.call(Syscall::Map {
            va: 0x4000,
            pages: 2,
            writable: true,
        })
        .unwrap()
        .unwrap();
        sys.mem_write(0x4000, b"/file").unwrap();
        let fd = sys
            .call(Syscall::Open {
                path_ptr: 0x4000,
                path_len: 5,
                create: true,
            })
            .unwrap()
            .unwrap() as u32;
        sys.mem_write(0x4100, b"contract checked").unwrap();
        sys.call(Syscall::Write {
            fd,
            buf_ptr: 0x4100,
            buf_len: 16,
        })
        .unwrap()
        .unwrap();
        sys.call(Syscall::Seek { fd, offset: 9 }).unwrap().unwrap();
        let (n, data) = sys.read(fd, 0x4200, 100).unwrap().unwrap();
        assert_eq!(n, 7);
        assert_eq!(data, b"checked");
        sys.call(Syscall::Close { fd }).unwrap().unwrap();
    }

    #[test]
    fn error_paths_match_the_spec_too() {
        let (mut k, c) = booted();
        let mut sys = Sys::new(&mut k, c, true);
        assert_eq!(
            sys.call(Syscall::Unmap { va: 0x4000, pages: 1 }).unwrap(),
            Err(SysError::NotMapped)
        );
        assert_eq!(
            sys.call(Syscall::Read { fd: 42, buf_ptr: 0, buf_len: 1 }).unwrap(),
            Err(SysError::BadFd)
        );
        assert_eq!(
            sys.call(Syscall::Wait { pid: 999 }).unwrap(),
            Err(SysError::NoSuchProcess)
        );
    }

    #[test]
    fn spawn_and_lifecycle_audited() {
        let (mut k, c) = booted();
        let mut sys = Sys::new(&mut k, c, true);
        let child = sys.call(Syscall::Spawn).unwrap().unwrap();
        assert_eq!(
            sys.call(Syscall::Wait { pid: child }).unwrap(),
            Err(SysError::StillRunning)
        );
        // The caller is now blocked; issuing another call from it must
        // be rejected by the *requires* clause.
        let err = sys.call(Syscall::Yield).unwrap_err();
        assert!(err.detail.contains("not runnable"), "{err}");
    }

    #[test]
    fn unaudited_calls_still_work() {
        let (mut k, c) = booted();
        let mut sys = Sys::new(&mut k, c, false);
        sys.call(Syscall::Map {
            va: 0x4000,
            pages: 1,
            writable: true,
        })
        .unwrap()
        .unwrap();
    }
}
