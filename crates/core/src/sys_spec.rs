//! The high-level OS specification (§3).
//!
//! "An abstract model which only has virtualized memory, processes,
//! threads, and the abstract state of the network and file system." The
//! state is what each process perceives; the transition function covers
//! every syscall plus the execution-model operations (memory loads and
//! stores). Transitions take the *same* [`Syscall`] values the kernel
//! takes — pointer arguments and all — and resolve them against the
//! abstract memory, so the spec genuinely predicts the kernel's
//! observable behaviour, return values included.

use std::collections::BTreeMap;

use veros_hw::PAGE_4K;
use veros_kernel::syscall::{SysError, SysRet, Syscall};


/// One abstract page: permissions + contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSpec {
    /// Writes allowed.
    pub writable: bool,
    /// The 4096 bytes of the page.
    pub data: Vec<u8>,
}

impl PageSpec {
    fn zeroed(writable: bool) -> Self {
        Self {
            writable,
            data: vec![0; PAGE_4K as usize],
        }
    }
}

/// One abstract open file descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdSpec {
    /// The file's path.
    pub path: String,
    /// Current offset.
    pub offset: u64,
}

/// Abstract thread state — Running and Ready collapse to `Runnable`:
/// "when the OS makes a context switch, processes view this as just
/// another interleaving of threads" (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadSpec {
    /// Schedulable (running or ready — indistinguishable abstractly).
    Runnable,
    /// Parked on the futex word at the address.
    BlockedFutex(u64),
    /// Waiting for a child process to exit.
    BlockedWait(u64),
}

/// One abstract process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcSpec {
    /// Parent pid.
    pub parent: Option<u64>,
    /// `Some(code)` once exited (zombie until reaped).
    pub zombie: Option<i32>,
    /// Virtual memory: page base address → page.
    pub mem: BTreeMap<u64, PageSpec>,
    /// Open files.
    pub fds: BTreeMap<u32, FdSpec>,
    /// Next fd to hand out.
    pub next_fd: u32,
    /// Live threads.
    pub threads: BTreeMap<u64, ThreadSpec>,
}

impl ProcSpec {
    fn fresh(parent: Option<u64>) -> Self {
        Self {
            parent,
            zombie: None,
            mem: BTreeMap::new(),
            fds: BTreeMap::new(),
            next_fd: 3,
            threads: BTreeMap::new(),
        }
    }
}

/// The abstract system state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysState {
    /// All processes (alive and zombie).
    pub procs: BTreeMap<u64, ProcSpec>,
    /// The filesystem as the syscall interface can observe it: a flat
    /// map of file paths to contents (no mkdir syscall exists, so all
    /// files are root-level).
    pub fs: BTreeMap<String, Vec<u8>>,
    /// Futex wait queues: `(pid, va)` → FIFO of tids.
    pub futexes: BTreeMap<(u64, u64), Vec<u64>>,
    /// Next pid the kernel will assign.
    pub next_pid: u64,
    /// Next tid the kernel will assign.
    pub next_tid: u64,
    /// The virtual clock.
    pub clock: u64,
    /// Number of cores (bounds thread affinity).
    pub cores: u64,
}

/// Operations of the execution model (memory loads/stores) — the other
/// half of the §3 contract besides syscalls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsOp {
    /// A syscall by `(pid, tid)`.
    Call(u64, u64, Syscall),
    /// A memory load.
    MemRead {
        /// Process issuing the load.
        pid: u64,
        /// Address.
        va: u64,
        /// Length.
        len: u64,
    },
    /// A memory store.
    MemWrite {
        /// Process issuing the store.
        pid: u64,
        /// Address.
        va: u64,
        /// Bytes.
        data: Vec<u8>,
    },
    /// A timer tick.
    Tick,
}

/// Results of abstract operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsRet {
    /// A syscall result.
    Sys(SysRet),
    /// Bytes from a memory load.
    Bytes(Result<Vec<u8>, SysError>),
    /// A store or tick completed.
    Unit(Result<(), SysError>),
}

impl SysState {
    /// The post-boot state: one init process with one thread.
    pub fn boot(cores: u64) -> Self {
        let mut procs = BTreeMap::new();
        let mut init = ProcSpec::fresh(None);
        init.threads.insert(1, ThreadSpec::Runnable);
        procs.insert(1, init);
        Self {
            procs,
            fs: BTreeMap::new(),
            futexes: BTreeMap::new(),
            next_pid: 2,
            next_tid: 2,
            clock: 0,
            cores,
        }
    }

    /// Applies any abstract operation.
    pub fn apply(&mut self, op: &AbsOp) -> AbsRet {
        match op {
            AbsOp::Call(pid, tid, call) => AbsRet::Sys(self.syscall((*pid, *tid), call)),
            AbsOp::MemRead { pid, va, len } => AbsRet::Bytes(self.mem_read(*pid, *va, *len)),
            AbsOp::MemWrite { pid, va, data } => AbsRet::Unit(self.mem_write(*pid, *va, data)),
            AbsOp::Tick => {
                self.clock += 1;
                AbsRet::Unit(Ok(()))
            }
        }
    }

    /// The abstract memory load (the execution-model read transition).
    pub fn mem_read(&self, pid: u64, va: u64, len: u64) -> Result<Vec<u8>, SysError> {
        if len > (1 << 24) {
            return Err(SysError::Invalid);
        }
        let p = self.procs.get(&pid).ok_or(SysError::NoSuchProcess)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = va;
        let end = va.checked_add(len).ok_or(SysError::BadAddress)?;
        while cur < end {
            let base = cur & !(PAGE_4K - 1);
            let page = p.mem.get(&base).ok_or(SysError::BadAddress)?;
            let off = (cur - base) as usize;
            let take = ((PAGE_4K - (cur - base)) as usize).min((end - cur) as usize);
            out.extend_from_slice(&page.data[off..off + take]);
            cur += take as u64;
        }
        Ok(out)
    }

    /// The abstract memory store.
    pub fn mem_write(&mut self, pid: u64, va: u64, data: &[u8]) -> Result<(), SysError> {
        let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
        // Validate first: stores are not torn (matches the kernel).
        let end = va.checked_add(data.len() as u64).ok_or(SysError::BadAddress)?;
        let mut cur = va;
        while cur < end {
            let base = cur & !(PAGE_4K - 1);
            let page = p.mem.get(&base).ok_or(SysError::BadAddress)?;
            if !page.writable {
                return Err(SysError::BadAddress);
            }
            cur = base + PAGE_4K;
        }
        let mut off = 0usize;
        let mut cur = va;
        while cur < end {
            let base = cur & !(PAGE_4K - 1);
            let page = p.mem.get_mut(&base).expect("validated");
            let poff = (cur - base) as usize;
            let take = ((PAGE_4K - (cur - base)) as usize).min((end - cur) as usize);
            page.data[poff..poff + take].copy_from_slice(&data[off..off + take]);
            off += take;
            cur += take as u64;
        }
        Ok(())
    }

    fn read_path(&self, pid: u64, ptr: u64, len: u64) -> Result<String, SysError> {
        let bytes = self.mem_read(pid, ptr, len)?;
        let s = std::str::from_utf8(&bytes).map_err(|_| SysError::Invalid)?;
        // Mirror the kernel's Path::parse validity conditions.
        veros_fs::Path::parse(s)
            .map(|p| p.as_str().to_string())
            .map_err(|_| SysError::Invalid)
    }

    /// True when the path's parent is the root (the only creatable
    /// location through the syscall surface, which has no mkdir).
    fn parent_is_root(path: &str) -> bool {
        path.rfind('/') == Some(0) && path.len() > 1
    }

    /// The abstract syscall transition. Returns exactly what the kernel
    /// returns (that is the refinement claim).
    pub fn syscall(&mut self, caller: (u64, u64), call: &Syscall) -> SysRet {
        let (pid, _tid) = caller;
        match call {
            Syscall::Spawn => {
                let child = self.next_pid;
                self.next_pid += 1;
                let mut proc = ProcSpec::fresh(Some(pid));
                let tid = self.next_tid;
                self.next_tid += 1;
                proc.threads.insert(tid, ThreadSpec::Runnable);
                self.procs.insert(child, proc);
                Ok(child)
            }
            Syscall::Exit { code } => self.do_exit(pid, *code).map(|()| 0),
            Syscall::Wait { pid: child } => self.do_wait(caller, *child),
            Syscall::Map { va, pages, writable } => self.do_map(pid, *va, *pages, *writable),
            Syscall::Unmap { va, pages } => self.do_unmap(pid, *va, *pages),
            Syscall::Open {
                path_ptr,
                path_len,
                create,
            } => self.do_open(pid, *path_ptr, *path_len, *create),
            Syscall::Read { fd, buf_ptr, buf_len } => self.do_read(pid, *fd, *buf_ptr, *buf_len),
            Syscall::Write { fd, buf_ptr, buf_len } => self.do_write(pid, *fd, *buf_ptr, *buf_len),
            Syscall::Seek { fd, offset } => {
                let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
                let f = p.fds.get_mut(fd).ok_or(SysError::BadFd)?;
                f.offset = *offset;
                Ok(*offset)
            }
            Syscall::Close { fd } => {
                let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
                p.fds.remove(fd).map(|_| 0).ok_or(SysError::BadFd)
            }
            Syscall::Unlink { path_ptr, path_len } => {
                let path = self.read_path(pid, *path_ptr, *path_len)?;
                if self.fs.remove(&path).is_some() {
                    Ok(0)
                } else {
                    Err(SysError::NoSuchPath)
                }
            }
            Syscall::FutexWait { va, expected } => self.do_futex_wait(caller, *va, *expected),
            Syscall::FutexWake { va, count } => self.do_futex_wake(pid, *va, *count),
            Syscall::ThreadSpawn { affinity_plus_one } => {
                if *affinity_plus_one > self.cores {
                    return Err(SysError::Invalid);
                }
                let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
                if p.zombie.is_some() {
                    return Err(SysError::NoSuchProcess);
                }
                let tid = self.next_tid;
                self.next_tid += 1;
                p.threads.insert(tid, ThreadSpec::Runnable);
                Ok(tid)
            }
            Syscall::Yield => Ok(0),
            Syscall::ClockRead => Ok(self.clock),
        }
    }

    fn do_exit(&mut self, pid: u64, code: i32) -> Result<(), SysError> {
        let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
        if p.zombie.is_some() {
            return Err(SysError::NoSuchProcess);
        }
        p.zombie = Some(code);
        let dead_tids: Vec<u64> = p.threads.keys().copied().collect();
        p.threads.clear();
        p.mem.clear();
        p.fds.clear();
        // Remove dead threads from futex queues.
        for q in self.futexes.values_mut() {
            q.retain(|t| !dead_tids.contains(t));
        }
        self.futexes.retain(|_, q| !q.is_empty());
        // Wake every thread blocked waiting on this pid.
        for proc in self.procs.values_mut() {
            for st in proc.threads.values_mut() {
                if *st == ThreadSpec::BlockedWait(pid) {
                    *st = ThreadSpec::Runnable;
                }
            }
        }
        Ok(())
    }

    fn do_wait(&mut self, caller: (u64, u64), child: u64) -> SysRet {
        let (pid, tid) = caller;
        let c = self.procs.get(&child).ok_or(SysError::NoSuchProcess)?;
        if c.parent != Some(pid) {
            return Err(SysError::NotAChild);
        }
        match c.zombie {
            Some(code) => {
                self.procs.remove(&child);
                Ok(code as u32 as u64)
            }
            None => {
                // Block the calling thread until the child exits.
                if let Some(p) = self.procs.get_mut(&pid) {
                    if let Some(st) = p.threads.get_mut(&tid) {
                        *st = ThreadSpec::BlockedWait(child);
                    }
                }
                Err(SysError::StillRunning)
            }
        }
    }

    fn do_map(&mut self, pid: u64, va: u64, pages: u64, writable: bool) -> SysRet {
        if pages == 0 || pages > 1 << 16 || !va.is_multiple_of(PAGE_4K) {
            return Err(SysError::Invalid);
        }
        let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
        // All-or-nothing, in kernel order: the kernel maps page by page
        // and rolls back on the first failure, so the net effect is a
        // precondition over all pages, failing with the first page's
        // error.
        for i in 0..pages {
            let page_va = va + i * PAGE_4K;
            if !veros_hw::VAddr(page_va).is_canonical() {
                return Err(SysError::Invalid);
            }
            if p.mem.contains_key(&page_va) {
                return Err(SysError::AlreadyMapped);
            }
        }
        for i in 0..pages {
            p.mem.insert(va + i * PAGE_4K, PageSpec::zeroed(writable));
        }
        Ok(va)
    }

    fn do_unmap(&mut self, pid: u64, va: u64, pages: u64) -> SysRet {
        if pages == 0 || !va.is_multiple_of(PAGE_4K) {
            return Err(SysError::Invalid);
        }
        let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
        for i in 0..pages {
            if !p.mem.contains_key(&(va + i * PAGE_4K)) {
                return Err(SysError::NotMapped);
            }
        }
        for i in 0..pages {
            p.mem.remove(&(va + i * PAGE_4K));
        }
        Ok(0)
    }

    fn do_open(&mut self, pid: u64, path_ptr: u64, path_len: u64, create: bool) -> SysRet {
        let path = self.read_path(pid, path_ptr, path_len)?;
        if !self.fs.contains_key(&path) {
            if !create {
                return Err(SysError::NoSuchPath);
            }
            // Only root-level files are creatable (no mkdir syscall).
            if !Self::parent_is_root(&path) {
                return Err(SysError::NoSuchPath);
            }
            self.fs.insert(path.clone(), Vec::new());
        }
        let p = self.procs.get_mut(&pid).ok_or(SysError::NoSuchProcess)?;
        let fd = p.next_fd;
        p.next_fd += 1;
        p.fds.insert(fd, FdSpec { path, offset: 0 });
        Ok(fd as u64)
    }

    fn do_read(&mut self, pid: u64, fd: u32, buf_ptr: u64, buf_len: u64) -> SysRet {
        let p = self.procs.get(&pid).ok_or(SysError::NoSuchProcess)?;
        let f = p.fds.get(&fd).ok_or(SysError::BadFd)?;
        let contents = self.fs.get(&f.path).cloned().unwrap_or_default();
        let offset = f.offset;
        // The paper's read_spec: read_len = min(buffer.len, size - offset).
        let read_len = buf_len.min((contents.len() as u64).saturating_sub(offset));
        let data = contents[offset as usize..(offset + read_len) as usize].to_vec();
        // Deliver into the abstract buffer (mapping obligation, abstractly).
        self.mem_write(pid, buf_ptr, &data)?;
        let p = self.procs.get_mut(&pid).expect("checked");
        let f = p.fds.get_mut(&fd).expect("checked");
        f.offset += read_len;
        Ok(read_len)
    }

    fn do_write(&mut self, pid: u64, fd: u32, buf_ptr: u64, buf_len: u64) -> SysRet {
        let data = self.mem_read(pid, buf_ptr, buf_len)?;
        let p = self.procs.get(&pid).ok_or(SysError::NoSuchProcess)?;
        let f = p.fds.get(&fd).ok_or(SysError::BadFd)?;
        let path = f.path.clone();
        let offset = f.offset;
        if offset.saturating_add(data.len() as u64) > (1 << 32) {
            return Err(SysError::NoSpace);
        }
        let file = self.fs.get_mut(&path).ok_or(SysError::NoSuchPath)?;
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(&data);
        let p = self.procs.get_mut(&pid).expect("checked");
        let f = p.fds.get_mut(&fd).expect("checked");
        f.offset += data.len() as u64;
        Ok(data.len() as u64)
    }

    fn do_futex_wait(&mut self, caller: (u64, u64), va: u64, expected: u32) -> SysRet {
        let (pid, tid) = caller;
        let bytes = self.mem_read(pid, va, 4)?;
        let current = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        if current != expected {
            return Err(SysError::WouldBlock);
        }
        self.futexes.entry((pid, va)).or_default().push(tid);
        if let Some(p) = self.procs.get_mut(&pid) {
            if let Some(st) = p.threads.get_mut(&tid) {
                *st = ThreadSpec::BlockedFutex(va);
            }
        }
        Ok(0)
    }

    fn do_futex_wake(&mut self, pid: u64, va: u64, count: u32) -> SysRet {
        let Some(q) = self.futexes.get_mut(&(pid, va)) else {
            return Ok(0);
        };
        let take = (count as usize).min(q.len());
        let woken: Vec<u64> = q.drain(..take).collect();
        if q.is_empty() {
            self.futexes.remove(&(pid, va));
        }
        let n = woken.len() as u64;
        if let Some(p) = self.procs.get_mut(&pid) {
            for t in woken {
                if let Some(st) = p.threads.get_mut(&t) {
                    *st = ThreadSpec::Runnable;
                }
            }
        }
        Ok(n)
    }

    /// All currently runnable `(pid, tid)` pairs — what a workload driver
    /// may legally schedule next.
    pub fn runnable(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (pid, p) in &self.procs {
            if p.zombie.is_some() {
                continue;
            }
            for (tid, st) in &p.threads {
                if *st == ThreadSpec::Runnable {
                    out.push((*pid, *tid));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_shape() {
        let s = SysState::boot(2);
        assert_eq!(s.procs.len(), 1);
        assert_eq!(s.runnable(), vec![(1, 1)]);
    }

    #[test]
    fn map_write_read_abstractly() {
        let mut s = SysState::boot(1);
        assert_eq!(
            s.syscall((1, 1), &Syscall::Map { va: 0x1000, pages: 2, writable: true }),
            Ok(0x1000)
        );
        s.mem_write(1, 0x1ffe, &[1, 2, 3, 4]).unwrap();
        assert_eq!(s.mem_read(1, 0x1ffe, 4).unwrap(), vec![1, 2, 3, 4]);
        // Unmapped neighbour faults.
        assert_eq!(s.mem_read(1, 0x3000, 1), Err(SysError::BadAddress));
        // Read-only page rejects stores.
        s.syscall((1, 1), &Syscall::Map { va: 0x10_0000, pages: 1, writable: false })
            .unwrap();
        assert_eq!(s.mem_write(1, 0x10_0000, &[0]), Err(SysError::BadAddress));
    }

    #[test]
    fn spawn_wait_exit_protocol() {
        let mut s = SysState::boot(1);
        let child = s.syscall((1, 1), &Syscall::Spawn).unwrap();
        assert_eq!(child, 2);
        assert_eq!(
            s.syscall((1, 1), &Syscall::Wait { pid: child }),
            Err(SysError::StillRunning)
        );
        // Caller is now blocked.
        assert!(s.runnable().iter().all(|&(p, _)| p != 1));
        let child_tid = *s.procs[&child].threads.keys().next().unwrap();
        s.syscall((child, child_tid), &Syscall::Exit { code: 9 }).unwrap();
        // Parent woken.
        assert!(s.runnable().contains(&(1, 1)));
        assert_eq!(s.syscall((1, 1), &Syscall::Wait { pid: child }), Ok(9));
    }

    #[test]
    fn file_read_write_round_trip() {
        let mut s = SysState::boot(1);
        s.syscall((1, 1), &Syscall::Map { va: 0x1000, pages: 1, writable: true })
            .unwrap();
        s.mem_write(1, 0x1000, b"/f").unwrap();
        let fd = s
            .syscall((1, 1), &Syscall::Open { path_ptr: 0x1000, path_len: 2, create: true })
            .unwrap() as u32;
        s.mem_write(1, 0x1100, b"hello").unwrap();
        assert_eq!(
            s.syscall((1, 1), &Syscall::Write { fd, buf_ptr: 0x1100, buf_len: 5 }),
            Ok(5)
        );
        s.syscall((1, 1), &Syscall::Seek { fd, offset: 1 }).unwrap();
        assert_eq!(
            s.syscall((1, 1), &Syscall::Read { fd, buf_ptr: 0x1200, buf_len: 100 }),
            Ok(4)
        );
        assert_eq!(s.mem_read(1, 0x1200, 4).unwrap(), b"ello");
    }

    #[test]
    fn futex_fifo_and_wake_counts() {
        let mut s = SysState::boot(2);
        s.syscall((1, 1), &Syscall::Map { va: 0x1000, pages: 1, writable: true })
            .unwrap();
        let t2 = s.syscall((1, 1), &Syscall::ThreadSpawn { affinity_plus_one: 0 }).unwrap();
        let t3 = s.syscall((1, 1), &Syscall::ThreadSpawn { affinity_plus_one: 0 }).unwrap();
        assert_eq!(
            s.syscall((1, t2), &Syscall::FutexWait { va: 0x1000, expected: 0 }),
            Ok(0)
        );
        assert_eq!(
            s.syscall((1, t3), &Syscall::FutexWait { va: 0x1000, expected: 0 }),
            Ok(0)
        );
        assert_eq!(
            s.syscall((1, 1), &Syscall::FutexWait { va: 0x1000, expected: 5 }),
            Err(SysError::WouldBlock)
        );
        assert_eq!(
            s.syscall((1, 1), &Syscall::FutexWake { va: 0x1000, count: 1 }),
            Ok(1)
        );
        // FIFO: t2 woke first.
        assert!(s.runnable().contains(&(1, t2)));
        assert!(!s.runnable().contains(&(1, t3)));
    }

    #[test]
    fn nested_paths_not_creatable() {
        let mut s = SysState::boot(1);
        s.syscall((1, 1), &Syscall::Map { va: 0x1000, pages: 1, writable: true })
            .unwrap();
        s.mem_write(1, 0x1000, b"/a/b").unwrap();
        assert_eq!(
            s.syscall((1, 1), &Syscall::Open { path_ptr: 0x1000, path_len: 4, create: true }),
            Err(SysError::NoSuchPath)
        );
    }
}
