//! Telemetry instruments for the end-to-end invariant sweeps.
//!
//! The `invariant::*` VC families ([`crate::invariants`]) sweep fault
//! schedules; these process-global counters record how many schedules
//! each family actually explored and how many violations were observed.
//! `invariant.violations` is pinned at 0 by a standing alert rule
//! (`veros_telemetry::alerts::default_rules`), and the per-family
//! schedule counters let `telemetry_report` prove the sweeps are not
//! vacuously empty. [`export`] registers everything under the
//! `invariant.` prefix; see `OBSERVABILITY.md` and `INVARIANTS.md`.

use veros_telemetry::{Counter, Registry};

/// Fault schedules swept, summed over every invariant family.
pub static SCHEDULES_SWEPT: Counter = Counter::new();

/// Schedules swept by `invariant::durability::*` (blockstore crash +
/// failover durability).
pub static DURABILITY_SCHEDULES: Counter = Counter::new();

/// Schedules swept by `invariant::exactly_once::*` (transport-level
/// exactly-once apply under retransmission).
pub static EXACTLY_ONCE_SCHEDULES: Counter = Counter::new();

/// Schedules swept by `invariant::fs_journal::*` (journal crash
/// consistency under torn writes).
pub static FS_JOURNAL_SCHEDULES: Counter = Counter::new();

/// Schedules swept by `invariant::frames::*` (physical frame
/// conservation).
pub static FRAMES_SCHEDULES: Counter = Counter::new();

/// Schedules swept by `invariant::uring_chain::*` (chain atomicity
/// under mid-chain crash).
pub static URING_CHAIN_SCHEDULES: Counter = Counter::new();

/// Schedules swept by `invariant::cluster_durability::*` (sharded-fleet
/// durability under loss of any single chain member).
pub static CLUSTER_DURABILITY_SCHEDULES: Counter = Counter::new();

/// End-to-end invariant violations observed by non-ablated sweeps.
/// Alert-pinned at 0: any increment is a verification failure, never
/// expected operational noise.
pub static VIOLATIONS: Counter = Counter::new();

/// Registers every invariant-sweep instrument with `reg` under the
/// `invariant.` prefix.
pub fn export(reg: &mut Registry) {
    reg.counter("invariant.schedules_swept", "schedules", &SCHEDULES_SWEPT);
    reg.counter("invariant.durability.schedules", "schedules", &DURABILITY_SCHEDULES);
    reg.counter("invariant.exactly_once.schedules", "schedules", &EXACTLY_ONCE_SCHEDULES);
    reg.counter("invariant.fs_journal.schedules", "schedules", &FS_JOURNAL_SCHEDULES);
    reg.counter("invariant.frames.schedules", "schedules", &FRAMES_SCHEDULES);
    reg.counter("invariant.uring_chain.schedules", "schedules", &URING_CHAIN_SCHEDULES);
    reg.counter(
        "invariant.cluster_durability.schedules",
        "schedules",
        &CLUSTER_DURABILITY_SCHEDULES,
    );
    reg.counter("invariant.violations", "violations", &VIOLATIONS);
}
