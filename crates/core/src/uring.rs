//! Differential verification of the asynchronous syscall rings.
//!
//! The uring linearization claim is discharged the same way the paper
//! discharges refinement (§4.4): run the implementation and a reference
//! side by side on randomized workloads and compare *everything
//! observable*. Here the implementation is a [`veros_uring::Engine`]
//! driving one kernel through SQE/CQE marshalling, and the reference is
//! a [`veros_uring::SyncTwin`] driving a second, identically booted
//! kernel through the fully instrumented synchronous entry point. The
//! twin deliberately mirrors the engine's scheduling policy (worker
//! spawn order, LIFO reuse, FIFO pending scans), so after the same
//! submission sequence the checks can be exact, not merely up to
//! isomorphism:
//!
//! * every completion sequence matches entry for entry (token, result,
//!   and order — the engine's dispatch order *is* a linearization of
//!   the submitted operations, and it agrees with the twin's
//!   synchronous order);
//! * non-blocking submissions complete in FIFO submission order;
//! * the final kernel views ([`crate::view()`]) are identical, thread
//!   ids and id counters included.
//!
//! Exactly-once delivery across wraparound/full/empty boundaries and
//! telemetry coherence are separate obligations below.

use std::collections::BTreeMap;

use veros_kernel::syscall::{abi, SysError, SysRet, Syscall};
use veros_kernel::{Kernel, KernelConfig, Pid};
use veros_spec::rng::SpecRng;
use veros_uring::{pair, Cqe, Engine, RingSet, SetTwin, SqeFlags, SubstSource, SyncTwin, UserRing};

use crate::view::view;

/// Base of the pre-mapped shared region both kernels get at setup.
pub(crate) const SHARED_VA: u64 = 0x60_0000;
/// Futex words inside the shared region.
const FUTEX_VAS: [u64; 3] = [SHARED_VA, SHARED_VA + 0x40, SHARED_VA + 0x80];
/// Path string location inside the shared region.
pub(crate) const PATH_VA: u64 = SHARED_VA + 0x1000;
pub(crate) const PATH: &[u8] = b"/ringfile";
/// Pool of addresses the random Map/Unmap traffic works on (disjoint
/// from the shared region so the setup state stays probeable).
pub(crate) const MAP_VAS: [u64; 6] =
    [0x40_0000, 0x40_1000, 0x40_2000, 0x40_3000, 0x40_4000, 0x40_5000];

pub(crate) fn boot() -> Result<Kernel, String> {
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let c = (k.init_pid, k.init_tid);
    k.syscall(c, Syscall::Map { va: SHARED_VA, pages: 2, writable: true })
        .map_err(|e| format!("setup map: {e:?}"))?;
    k.write_user(c.0, PATH_VA, PATH).map_err(|e| format!("setup path: {e:?}"))?;
    Ok(k)
}

/// Alive children of `parent`, in pid order (identical on both kernels
/// as long as the executions have not diverged).
fn alive_children(k: &Kernel, parent: Pid) -> Vec<u64> {
    k.processes()
        .iter()
        .filter(|p| p.parent == Some(parent) && matches!(p.state, veros_kernel::ProcessState::Alive))
        .map(|p| p.pid.0)
        .collect()
}

/// Exits `child` "from the environment" — its own first thread calls
/// `Exit` through the synchronous path. Applied to both kernels only at
/// quiesced points (submission queue fully drained), so it commutes
/// identically with the ring and the twin.
fn exit_child(k: &mut Kernel, child: u64) -> Result<(), String> {
    let pid = Pid(child);
    let tid = k
        .processes()
        .get(pid)
        .map_err(|e| format!("child {child} lookup: {e:?}"))?
        .threads[0];
    k.syscall((pid, tid), Syscall::Exit { code: 9 })
        .map_err(|e| format!("child {child} exit: {e:?}"))?;
    Ok(())
}

/// One random operation. Blocking-capable ops are marked so the FIFO
/// check can exclude them.
fn gen_op(rng: &mut SpecRng, children: &[u64]) -> Syscall {
    match rng.below(13) {
        0 => Syscall::Map {
            va: *rng.choose(&MAP_VAS),
            pages: 1 + rng.below(3),
            writable: true,
        },
        1 => Syscall::Unmap { va: *rng.choose(&MAP_VAS), pages: 1 + rng.below(3) },
        2 => Syscall::ClockRead,
        3 => Syscall::Yield,
        4 => Syscall::Spawn,
        5 => {
            // A real child (may still be running → parks a worker) or a
            // bogus pid (fails identically on both sides).
            let pid = if children.is_empty() || rng.chance(1, 4) {
                999
            } else {
                *rng.choose(children)
            };
            Syscall::Wait { pid }
        }
        6 => Syscall::FutexWait {
            va: *rng.choose(&FUTEX_VAS),
            // Word is 0: expected 0 blocks, expected 7 errs — both arms
            // behave identically on ring and twin.
            expected: if rng.chance(1, 3) { 7 } else { 0 },
        },
        7 => Syscall::FutexWake { va: *rng.choose(&FUTEX_VAS), count: 1 + rng.below(2) as u32 },
        8 => Syscall::Open { path_ptr: PATH_VA, path_len: PATH.len() as u64, create: true },
        9 => Syscall::Write {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x100,
            buf_len: 1 + rng.below(32),
        },
        10 => Syscall::Read {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x200,
            buf_len: 1 + rng.below(32),
        },
        11 => Syscall::Seek { fd: 3 + rng.below(3) as u32, offset: rng.below(16) },
        _ => Syscall::Close { fd: 3 + rng.below(3) as u32 },
    }
}

fn may_block(call: &Syscall) -> bool {
    matches!(call, Syscall::FutexWait { .. } | Syscall::Wait { .. })
}

fn drain(user: &mut veros_uring::UserRing, into: &mut Vec<Cqe>) {
    while let Some(cqe) = user.complete() {
        into.push(cqe);
    }
}

/// The linearization obligation: a random submission sequence through
/// the ring produces, completion for completion, the synchronous twin's
/// results — and leaves the kernel in the *identical* abstract state.
pub fn differential_run(seed: u64, steps: usize) -> Result<(), String> {
    let mut ka = boot()?;
    let mut kb = boot()?;
    let owner_a = (ka.init_pid, ka.init_tid);
    let owner_b = (kb.init_pid, kb.init_tid);

    let (mut user, kring) = pair(8);
    let mut engine = Engine::new(kring, owner_a).with_dispatch_log();
    let mut twin = SyncTwin::new(owner_b);

    let mut rng = SpecRng::seeded(seed ^ 0x71_c4fe);
    let mut token = 0u64;
    let mut blocking_tokens = Vec::new();
    let mut ring_cqes: Vec<Cqe> = Vec::new();

    for step in 0..steps {
        // One batch of 1..=4 operations, generated once and fed to both
        // executions in the same order.
        let children = alive_children(&kb, owner_b.0);
        let n = 1 + rng.below(4) as usize;
        let batch: Vec<Syscall> = (0..n).map(|_| gen_op(&mut rng, &children)).collect();
        let base = token;
        for call in &batch {
            if may_block(call) {
                blocking_tokens.push(token);
            }
            if user.submit(token, call).is_err() {
                // Backpressure mid-batch: drain and retry (depth 8 vs
                // batch ≤ 4, so a second failure is a real bug).
                engine.submit_batch(&mut ka);
                drain(&mut user, &mut ring_cqes);
                user.submit(token, call)
                    .map_err(|_| format!("seed {seed} step {step}: SQ full after drain"))?;
            }
            token += 1;
        }
        engine.submit_batch(&mut ka);
        engine.reap(&mut ka);
        drain(&mut user, &mut ring_cqes);
        for (i, call) in batch.iter().enumerate() {
            twin.submit(&mut kb, base + i as u64, *call);
        }
        twin.pump(&mut kb);

        // Environment event at a quiesced point: some child exits,
        // waking any parked `Wait` on it — on both kernels.
        if rng.chance(1, 3) {
            let kids = alive_children(&kb, owner_b.0);
            if !kids.is_empty() {
                let victim = *rng.choose(&kids);
                exit_child(&mut ka, victim)?;
                exit_child(&mut kb, victim)?;
            }
        }
    }

    // Drain the run so both pending tables empty: wake every futex and
    // exit every remaining child, then keep reaping.
    for k in [&mut ka, &mut kb] {
        let c = (k.init_pid, k.init_tid);
        for va in FUTEX_VAS {
            k.syscall(c, Syscall::FutexWake { va, count: u32::MAX })
                .map_err(|e| format!("wake-all: {e:?}"))?;
        }
    }
    for child in alive_children(&kb, owner_b.0) {
        exit_child(&mut ka, child)?;
        exit_child(&mut kb, child)?;
    }
    for _ in 0..16 {
        engine.reap(&mut ka);
        drain(&mut user, &mut ring_cqes);
        twin.pump(&mut kb);
        if engine.pending_len() == 0 && twin.pending_len() == 0 {
            break;
        }
    }
    if engine.pending_len() != 0 || twin.pending_len() != 0 {
        return Err(format!(
            "seed {seed}: pending tables did not drain (engine {}, twin {})",
            engine.pending_len(),
            twin.pending_len()
        ));
    }
    engine.shutdown(&mut ka);
    drain(&mut user, &mut ring_cqes);
    twin.shutdown(&mut kb);

    // 1. Completion sequences agree entry for entry.
    let twin_cqes = twin.completions();
    if ring_cqes.len() != twin_cqes.len() {
        return Err(format!(
            "seed {seed}: {} ring completions vs {} twin completions",
            ring_cqes.len(),
            twin_cqes.len()
        ));
    }
    for (i, (r, t)) in ring_cqes.iter().zip(twin_cqes).enumerate() {
        if r != t {
            return Err(format!("seed {seed}: completion {i} diverges: ring {r:?}, twin {t:?}"));
        }
    }

    // 2. Non-blocking completions are FIFO in submission order.
    let mut last = None;
    for cqe in &ring_cqes {
        if blocking_tokens.contains(&cqe.user_data) {
            continue;
        }
        if let Some(prev) = last {
            if cqe.user_data <= prev {
                return Err(format!(
                    "seed {seed}: non-blocking token {} completed after {}",
                    cqe.user_data, prev
                ));
            }
        }
        last = Some(cqe.user_data);
    }

    // 3. The dispatch log — the engine's linearization witness — has a
    // final verdict per token that equals the posted completion.
    let mut final_dispatch: BTreeMap<u64, SysRet> = BTreeMap::new();
    for r in engine.take_dispatch_log() {
        final_dispatch.insert(r.user_data, r.result);
    }
    for cqe in &ring_cqes {
        if let Some(res) = final_dispatch.get(&cqe.user_data) {
            if *res != cqe.result {
                return Err(format!(
                    "seed {seed}: token {} dispatch log says {res:?}, CQE says {:?}",
                    cqe.user_data, cqe.result
                ));
            }
        }
    }

    // 4. The abstract kernel states are identical.
    let va = view(&ka);
    let vb = view(&kb);
    if va != vb {
        return Err(format!("seed {seed}: final kernel views diverge after {token} ops"));
    }
    Ok(())
}

/// The exactly-once obligation: across random submit/drain interleaving
/// on a deliberately tiny (depth-4) ring — constant wraparound, frequent
/// full/empty boundaries, CQ overflow through the engine backlog — every
/// accepted SQE completes exactly once and every rejected one not at
/// all.
pub fn ring_exactly_once(seed: u64, steps: usize) -> Result<(), String> {
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let owner = (k.init_pid, k.init_tid);
    let (mut user, kring) = pair(4);
    let mut engine = Engine::new(kring, owner);

    let mut rng = SpecRng::seeded(seed ^ 0x0e4ac71);
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    let mut token = 0u64;

    for _ in 0..steps {
        match rng.below(4) {
            // Submit-heavy mix keeps the SQ bouncing off full.
            0 | 1 => {
                let call =
                    if rng.chance(1, 2) { Syscall::ClockRead } else { Syscall::Yield };
                if user.submit(token, &call).is_ok() {
                    accepted.push(token);
                } else {
                    rejected.push(token);
                }
                token += 1;
            }
            2 => {
                engine.submit_batch(&mut k);
            }
            _ => {
                while let Some(cqe) = user.complete() {
                    *seen.entry(cqe.user_data).or_default() += 1;
                }
            }
        }
    }
    // Final drain: flush the engine (including its CQ-overflow backlog)
    // until the user side stops seeing completions.
    loop {
        engine.submit_batch(&mut k);
        let mut got = 0;
        while let Some(cqe) = user.complete() {
            *seen.entry(cqe.user_data).or_default() += 1;
            got += 1;
        }
        if got == 0 {
            break;
        }
    }

    for t in &accepted {
        match seen.get(t) {
            Some(1) => {}
            Some(n) => return Err(format!("seed {seed}: token {t} completed {n} times")),
            None => return Err(format!("seed {seed}: accepted token {t} was lost")),
        }
    }
    for t in &rejected {
        if seen.contains_key(t) {
            return Err(format!("seed {seed}: rejected token {t} completed anyway"));
        }
    }
    if seen.len() != accepted.len() {
        return Err(format!(
            "seed {seed}: {} distinct completions for {} accepted submissions",
            seen.len(),
            accepted.len()
        ));
    }
    Ok(())
}

/// One random non-blocking-or-futex operation for the multi-ring runs
/// (no `Spawn`/`Wait`: child lifecycle events have no natural quiesced
/// point once several rings drain concurrently).
fn gen_ring_op(rng: &mut SpecRng) -> Syscall {
    match rng.below(11) {
        0 => Syscall::Map {
            va: *rng.choose(&MAP_VAS),
            pages: 1 + rng.below(3),
            writable: true,
        },
        1 => Syscall::Unmap { va: *rng.choose(&MAP_VAS), pages: 1 + rng.below(3) },
        2 => Syscall::ClockRead,
        3 => Syscall::Yield,
        4 => Syscall::FutexWait {
            va: *rng.choose(&FUTEX_VAS),
            expected: if rng.chance(1, 3) { 7 } else { 0 },
        },
        5 => Syscall::FutexWake { va: *rng.choose(&FUTEX_VAS), count: 1 + rng.below(2) as u32 },
        6 => Syscall::Open { path_ptr: PATH_VA, path_len: PATH.len() as u64, create: true },
        7 => Syscall::Write {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x100,
            buf_len: 1 + rng.below(32),
        },
        8 => Syscall::Read {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x200,
            buf_len: 1 + rng.below(32),
        },
        9 => Syscall::Seek { fd: 3 + rng.below(3) as u32, offset: rng.below(16) },
        _ => Syscall::Close { fd: 3 + rng.below(3) as u32 },
    }
}

/// The multi-ring linearization obligation: `rings` rings drained by
/// one [`RingSet`] poller produce, ring for ring and completion for
/// completion, the results of a [`SetTwin`] that mirrors the poller's
/// policy (rotating cursor, per-ring burst budget, per-ring pending
/// scans) on a second identically-booted kernel — and the final
/// abstract kernel states are identical. Per-ring FIFO of non-blocking
/// submissions is checked on the way.
pub fn multi_ring_differential(seed: u64, rings: usize, steps: usize) -> Result<(), String> {
    const DEPTH: usize = 8;
    let burst = 2 + (seed as usize % 3); // 2..=4: the budget engages.
    let mut ka = boot()?;
    let mut kb = boot()?;
    let owner_a = (ka.init_pid, ka.init_tid);
    let owner_b = (kb.init_pid, kb.init_tid);

    let mut users: Vec<UserRing> = Vec::new();
    let mut set = RingSet::new(burst);
    let mut tset = SetTwin::new(burst);
    for _ in 0..rings {
        let (user, kring) = pair(DEPTH);
        users.push(user);
        set.add(Engine::new(kring, owner_a));
        tset.add(owner_b);
    }

    let mut rng = SpecRng::seeded(seed ^ 0x3a7_11d0);
    let mut token = 0u64;
    let mut ring_cqes: Vec<Vec<Cqe>> = vec![Vec::new(); rings];
    let mut blocking_tokens = Vec::new();

    let sweep_both = |ka: &mut Kernel,
                          kb: &mut Kernel,
                          set: &mut RingSet,
                          tset: &mut SetTwin,
                          users: &mut [UserRing],
                          ring_cqes: &mut [Vec<Cqe>]| {
        set.sweep(ka);
        tset.sweep(kb);
        for (r, user) in users.iter_mut().enumerate() {
            drain(user, &mut ring_cqes[r]);
        }
    };

    for step in 0..steps {
        let r = rng.below(rings as u64) as usize;
        let call = gen_ring_op(&mut rng);
        if may_block(&call) {
            blocking_tokens.push(token);
        }
        let mut tries = 0;
        while users[r].submit(token, &call).is_err() {
            // Backpressure: the burst budget may need several sweeps
            // to open a slot (both sides sweep in lockstep, keeping
            // the rotating cursors aligned).
            sweep_both(&mut ka, &mut kb, &mut set, &mut tset, &mut users, &mut ring_cqes);
            tries += 1;
            if tries > DEPTH {
                return Err(format!("seed {seed} step {step}: ring {r} SQ never drained"));
            }
        }
        tset.enqueue(r, token, abi::encode_regs(&call), SqeFlags::NONE.encode());
        token += 1;
        if rng.chance(1, 3) {
            sweep_both(&mut ka, &mut kb, &mut set, &mut tset, &mut users, &mut ring_cqes);
        }
    }

    // Drain: sweep in lockstep until both sides are quiet, waking
    // every futex on both kernels between passes — a `FutexWait` still
    // queued in an SQ (or deferred by the burst budget) when a wake
    // lands is dispatched by a *later* sweep and parks, so a one-shot
    // wake-all up front would strand it forever.
    for _ in 0..(steps + 16) {
        sweep_both(&mut ka, &mut kb, &mut set, &mut tset, &mut users, &mut ring_cqes);
        if set.outstanding() == 0 && tset.outstanding() == 0 {
            break;
        }
        for k in [&mut ka, &mut kb] {
            let c = (k.init_pid, k.init_tid);
            for va in FUTEX_VAS {
                k.syscall(c, Syscall::FutexWake { va, count: u32::MAX })
                    .map_err(|e| format!("wake-all: {e:?}"))?;
            }
        }
    }
    if set.outstanding() != 0 || tset.outstanding() != 0 {
        return Err(format!(
            "seed {seed}: outstanding work did not drain (set {}, twin {})",
            set.outstanding(),
            tset.outstanding()
        ));
    }

    // 1. Per-ring completion sequences agree entry for entry.
    for (r, cqes) in ring_cqes.iter().enumerate() {
        let twin_cqes = tset.ring_completions(r);
        if cqes.len() != twin_cqes.len() {
            return Err(format!(
                "seed {seed}: ring {r} posted {} completions, twin {} ",
                cqes.len(),
                twin_cqes.len()
            ));
        }
        for (i, (a, b)) in cqes.iter().zip(twin_cqes).enumerate() {
            if a != b {
                return Err(format!(
                    "seed {seed}: ring {r} completion {i} diverges: set {a:?}, twin {b:?}"
                ));
            }
        }
        // 2. Non-blocking completions stay FIFO within their ring.
        let mut last = None;
        for cqe in cqes {
            if blocking_tokens.contains(&cqe.user_data) {
                continue;
            }
            if let Some(prev) = last {
                if cqe.user_data <= prev {
                    return Err(format!(
                        "seed {seed}: ring {r} non-blocking token {} completed after {}",
                        cqe.user_data, prev
                    ));
                }
            }
            last = Some(cqe.user_data);
        }
    }

    // 3. The abstract kernel states are identical.
    if view(&ka) != view(&kb) {
        return Err(format!("seed {seed}: final kernel views diverge after {token} ops"));
    }
    Ok(())
}

/// The chain-atomicity obligation: on a deliberately tiny (depth-4)
/// ring — so chains wrap the queue and split across drains — every
/// chain completes as an exact prefix of successes, at most one real
/// failure, and a fully cancelled suffix; and the whole sequence
/// matches a policy-mirroring [`SyncTwin`] fed the same flagged SQEs.
pub fn chain_atomicity(seed: u64, steps: usize) -> Result<(), String> {
    let mut ka = boot()?;
    let mut kb = boot()?;
    let owner_a = (ka.init_pid, ka.init_tid);
    let owner_b = (kb.init_pid, kb.init_tid);
    let (mut user, kring) = pair(4);
    let mut engine = Engine::new(kring, owner_a);
    let mut twin = SyncTwin::new(owner_b);

    let mut rng = SpecRng::seeded(seed ^ 0x00c4_a177);
    let mut token = 0u64;
    let mut ring_cqes: Vec<Cqe> = Vec::new();
    let mut chains: Vec<Vec<u64>> = Vec::new();

    // Links: roughly a third fail (bad fd, duplicate map); some links
    // consume the previous result as an fd (substitution under test).
    let gen_link = |rng: &mut SpecRng| -> (Syscall, Option<(SubstSource, u8)>) {
        match rng.below(6) {
            0 => (Syscall::ClockRead, None),
            1 => (Syscall::Yield, None),
            2 => (
                Syscall::Open { path_ptr: PATH_VA, path_len: PATH.len() as u64, create: true },
                None,
            ),
            3 => (Syscall::Close { fd: 99 }, None), // BadFd: the chain breaker.
            4 => (
                // Seek on whatever fd the previous link produced —
                // a valid fd after an open, garbage otherwise.
                Syscall::Seek { fd: 0, offset: 0 },
                Some((SubstSource::Prev, abi::FD_REG)),
            ),
            _ => (Syscall::Map { va: *rng.choose(&MAP_VAS), pages: 1, writable: true }, None),
        }
    };

    for step in 0..steps {
        let n = 1 + rng.below(4) as usize;
        let links: Vec<(Syscall, Option<(SubstSource, u8)>)> =
            (0..n).map(|_| gen_link(&mut rng)).collect();
        let mut chain_tokens = Vec::with_capacity(n);
        for (i, (call, subst)) in links.iter().enumerate() {
            let flags = SqeFlags { link: i + 1 < n, subst: *subst };
            if user.submit_flagged(token, call, flags).is_err() {
                // Mid-chain backpressure: drain the prefix into the
                // engine's chain buffer and retry — the wraparound
                // path under test.
                engine.submit_batch(&mut ka);
                drain(&mut user, &mut ring_cqes);
                user.submit_flagged(token, call, flags)
                    .map_err(|_| format!("seed {seed} step {step}: SQ full after drain"))?;
            }
            twin.submit_sqe(&mut kb, token, abi::encode_regs(call), flags.encode());
            chain_tokens.push(token);
            token += 1;
            if rng.chance(1, 3) {
                engine.submit_batch(&mut ka);
                drain(&mut user, &mut ring_cqes);
            }
        }
        chains.push(chain_tokens);
        if rng.chance(2, 3) {
            engine.submit_batch(&mut ka);
            drain(&mut user, &mut ring_cqes);
        }
    }
    engine.submit_batch(&mut ka);
    drain(&mut user, &mut ring_cqes);
    if engine.chain_buffered() != 0 || twin.chain_buffered() != 0 {
        return Err(format!(
            "seed {seed}: incomplete chains left buffered (engine {}, twin {})",
            engine.chain_buffered(),
            twin.chain_buffered()
        ));
    }

    // 1. Ring and twin agree completion for completion.
    let twin_cqes = twin.completions();
    if ring_cqes.len() != twin_cqes.len() {
        return Err(format!(
            "seed {seed}: {} ring completions vs {} twin completions",
            ring_cqes.len(),
            twin_cqes.len()
        ));
    }
    for (i, (a, b)) in ring_cqes.iter().zip(twin_cqes).enumerate() {
        if a != b {
            return Err(format!("seed {seed}: completion {i} diverges: ring {a:?}, twin {b:?}"));
        }
    }

    // 2. Every chain is prefix-exact: successes, at most one real
    // failure, then nothing but `Cancelled` — and `Cancelled` never
    // appears without a preceding real failure in the same chain.
    let by_token: BTreeMap<u64, SysRet> =
        ring_cqes.iter().map(|c| (c.user_data, c.result)).collect();
    for (ci, chain) in chains.iter().enumerate() {
        let results: Vec<SysRet> = chain
            .iter()
            .map(|t| {
                by_token
                    .get(t)
                    .copied()
                    .ok_or_else(|| format!("seed {seed}: chain {ci} token {t} never completed"))
            })
            .collect::<Result<_, _>>()?;
        let first_err = results.iter().position(|r| r.is_err());
        for (i, r) in results.iter().enumerate() {
            let expect_cancel = first_err.is_some_and(|j| i > j);
            match r {
                Err(SysError::Cancelled) if !expect_cancel => {
                    return Err(format!(
                        "seed {seed}: chain {ci} link {i} cancelled without an earlier failure"
                    ));
                }
                Err(e) if expect_cancel && *e != SysError::Cancelled => {
                    return Err(format!(
                        "seed {seed}: chain {ci} link {i} dispatched after a failure: {e:?}"
                    ));
                }
                Ok(_) if expect_cancel => {
                    return Err(format!(
                        "seed {seed}: chain {ci} link {i} succeeded after a failure"
                    ));
                }
                _ => {}
            }
        }
    }

    // 3. Exactly-once delivery held throughout.
    if by_token.len() != ring_cqes.len() {
        return Err(format!("seed {seed}: duplicate completions detected"));
    }
    if by_token.len() != token as usize {
        return Err(format!(
            "seed {seed}: {} completions for {token} submitted links",
            by_token.len()
        ));
    }

    // 4. The engine's own atomicity self-check never fired, and the
    // final kernel states agree.
    if veros_uring::metrics::CHAIN_ATOMICITY_VIOLATIONS.get() != 0 {
        return Err(format!("seed {seed}: chain atomicity violation counter is nonzero"));
    }
    if view(&ka) != view(&kb) {
        return Err(format!("seed {seed}: final kernel views diverge"));
    }
    Ok(())
}

/// The poller fairness obligation: with a per-ring budget of `burst`
/// SQEs per sweep, an entry sitting at backlog position `b` in its
/// ring completes within `ceil((b+1)/burst)` sweeps, no matter how
/// hard the other rings flood — the starvation bound the ring-set
/// module argues.
pub fn poller_fairness_bound(seed: u64, rounds: usize) -> Result<(), String> {
    const RINGS: usize = 3;
    const DEPTH: usize = 8;
    let burst = 1 + (seed as usize % 3); // 1..=3.
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let owner = (k.init_pid, k.init_tid);

    let mut users: Vec<UserRing> = Vec::new();
    let mut set = RingSet::new(burst);
    for _ in 0..RINGS {
        let (user, kring) = pair(DEPTH);
        users.push(user);
        set.add(Engine::new(kring, owner));
    }

    let mut rng = SpecRng::seeded(seed ^ 0x000f_a1b0);
    let mut token = 0u64;
    // Backlog depth per ring (all ops are non-blocking, so the SQ
    // backlog is exactly submitted-minus-completed).
    let mut backlog = [0usize; RINGS];
    // token -> (submit-time sweep count, completion deadline in sweeps).
    let mut deadlines: BTreeMap<u64, (u64, u64)> = BTreeMap::new();

    for round in 0..rounds {
        for (r, user) in users.iter_mut().enumerate() {
            // Ring 0 floods (up to its free slots); the others trickle.
            let want = if r == 0 { burst * 2 } else { rng.below(2) as usize };
            let n = want.min(user.sq_free() as usize);
            for _ in 0..n {
                let call = if rng.chance(1, 2) { Syscall::ClockRead } else { Syscall::Yield };
                user.submit(token, &call)
                    .map_err(|_| format!("seed {seed} round {round}: SQ full at free>0"))?;
                let bound = ((backlog[r] + 1).div_ceil(burst)) as u64;
                deadlines.insert(token, (set.sweeps(), bound));
                backlog[r] += 1;
                token += 1;
            }
        }
        set.sweep(&mut k);
        let now = set.sweeps();
        for (r, user) in users.iter_mut().enumerate() {
            while let Some(cqe) = user.complete() {
                backlog[r] -= 1;
                let (at, bound) = deadlines
                    .remove(&cqe.user_data)
                    .ok_or_else(|| format!("seed {seed}: unknown token {}", cqe.user_data))?;
                let waited = now - at;
                if waited > bound {
                    return Err(format!(
                        "seed {seed}: token {} on ring {r} took {waited} sweeps, bound {bound} \
                         (burst {burst})",
                        cqe.user_data
                    ));
                }
            }
        }
    }
    // Drain what the budget deferred; the bound keeps holding.
    while !deadlines.is_empty() {
        let before = deadlines.len();
        set.sweep(&mut k);
        let now = set.sweeps();
        for (r, user) in users.iter_mut().enumerate() {
            while let Some(cqe) = user.complete() {
                backlog[r] -= 1;
                let (at, bound) = deadlines
                    .remove(&cqe.user_data)
                    .ok_or_else(|| format!("seed {seed}: unknown token {}", cqe.user_data))?;
                if now - at > bound {
                    return Err(format!(
                        "seed {seed}: drain token {} took {} sweeps, bound {bound}",
                        cqe.user_data,
                        now - at
                    ));
                }
            }
        }
        if deadlines.len() == before {
            return Err(format!(
                "seed {seed}: {} tokens never completed",
                deadlines.len()
            ));
        }
    }
    Ok(())
}

/// Telemetry coherence for the ring instruments: with the feature on, a
/// known workload moves the counters by at least its known floors (they
/// are process-global, so concurrent tests can only inflate them); with
/// it off, every ring instrument must read exactly zero.
pub fn telemetry_counters_coherent() -> Result<(), String> {
    use veros_uring::metrics as m;

    let submitted0 = m::SQES_SUBMITTED.get();
    let posted0 = m::CQES_POSTED.get();
    let rejected0 = m::SQ_FULL_REJECTIONS.get();
    let parked0 = m::OPS_PARKED.get();
    let sweeps0 = m::POLLER_SWEEPS.get();
    let deferrals0 = m::FAIRNESS_DEFERRALS.get();
    let chains0 = m::CHAINS_DISPATCHED.get();
    let aborts0 = m::CHAIN_ABORTS.get();
    let cancelled0 = m::CHAIN_LINKS_CANCELLED.get();

    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let owner = (k.init_pid, k.init_tid);
    k.syscall(owner, Syscall::Map { va: SHARED_VA, pages: 1, writable: true })
        .map_err(|e| format!("map: {e:?}"))?;
    let (mut user, kring) = pair(4);
    let mut engine = Engine::new(kring, owner);
    // 4 accepted ClockReads + 1 backpressure rejection.
    for t in 0..4 {
        user.submit(t, &Syscall::ClockRead).map_err(|_| "submit")?;
    }
    if user.submit(4, &Syscall::ClockRead).is_ok() {
        return Err("depth-4 ring accepted a fifth entry".into());
    }
    engine.submit_batch(&mut k);
    while user.complete().is_some() {}
    // One parked futex wait, woken and reaped.
    user.submit(5, &Syscall::FutexWait { va: SHARED_VA, expected: 0 })
        .map_err(|_| "submit wait")?;
    engine.submit_batch(&mut k);
    k.syscall(owner, Syscall::FutexWake { va: SHARED_VA, count: 1 })
        .map_err(|e| format!("wake: {e:?}"))?;
    engine.reap(&mut k);
    while user.complete().is_some() {}

    // A two-ring poller sweep: one active ring, one ring whose flood
    // exceeds the burst budget (a counted fairness deferral).
    let mut set = RingSet::new(1);
    let (mut u0, r0) = pair(4);
    let (mut u1, r1) = pair(4);
    set.add(Engine::new(r0, owner));
    set.add(Engine::new(r1, owner));
    u0.submit(0, &Syscall::ClockRead).map_err(|_| "poller submit")?;
    for t in 0..2 {
        u1.submit(10 + t, &Syscall::ClockRead).map_err(|_| "poller flood")?;
    }
    set.sweep(&mut k);
    set.sweep(&mut k);
    while u0.complete().is_some() {}
    while u1.complete().is_some() {}
    // An aborting chain: ClockRead → Close(bad fd) → ClockRead, whose
    // tail must be cancelled.
    u0.submit_flagged(20, &Syscall::ClockRead, veros_uring::SqeFlags::NONE.linked())
        .map_err(|_| "chain head")?;
    u0.submit_flagged(21, &Syscall::Close { fd: 99 }, veros_uring::SqeFlags::NONE.linked())
        .map_err(|_| "chain mid")?;
    u0.submit_flagged(22, &Syscall::ClockRead, veros_uring::SqeFlags::NONE)
        .map_err(|_| "chain tail")?;
    // Burst 1: the chain crosses three sweeps before its tail lands.
    for _ in 0..3 {
        set.sweep(&mut k);
    }
    while u0.complete().is_some() {}

    if !veros_telemetry::enabled() {
        if m::SQES_SUBMITTED.get() != 0
            || m::SQ_FULL_REJECTIONS.get() != 0
            || m::CQES_POSTED.get() != 0
            || m::CQ_OVERFLOWS.get() != 0
            || m::OPS_PARKED.get() != 0
            || m::POLLER_SWEEPS.get() != 0
            || m::FAIRNESS_DEFERRALS.get() != 0
            || m::CHAINS_DISPATCHED.get() != 0
            || m::CHAIN_ABORTS.get() != 0
            || m::CHAIN_LINKS_CANCELLED.get() != 0
            || m::CHAIN_ATOMICITY_VIOLATIONS.get() != 0
        {
            return Err("telemetry disabled but uring counters are nonzero".into());
        }
        if m::SQ_DEPTH.count() != 0
            || m::SUBMIT_BATCH.count() != 0
            || m::REAP_BATCH.count() != 0
            || m::COMPLETION_LATENCY.count() != 0
            || m::RINGS_PER_PASS.count() != 0
            || m::CQ_BACKLOG_DEPTH.count() != 0
        {
            return Err("telemetry disabled but uring histograms recorded samples".into());
        }
        return Ok(());
    }
    if m::SQES_SUBMITTED.get() - submitted0 < 5 {
        return Err("5 accepted submissions under-counted".into());
    }
    if m::SQ_FULL_REJECTIONS.get() - rejected0 < 1 {
        return Err("backpressure rejection not counted".into());
    }
    if m::CQES_POSTED.get() - posted0 < 5 {
        return Err("5 completions under-counted".into());
    }
    if m::OPS_PARKED.get() - parked0 < 1 {
        return Err("parked futex wait not counted".into());
    }
    if m::SUBMIT_BATCH.count() == 0 || m::COMPLETION_LATENCY.count() == 0 {
        return Err("batch/latency histograms recorded nothing".into());
    }
    if m::POLLER_SWEEPS.get() - sweeps0 < 5 {
        return Err("5 poller sweeps under-counted".into());
    }
    if m::FAIRNESS_DEFERRALS.get() - deferrals0 < 1 {
        return Err("burst-budget deferral not counted".into());
    }
    if m::CHAINS_DISPATCHED.get() - chains0 < 1 {
        return Err("dispatched chain not counted".into());
    }
    if m::CHAIN_ABORTS.get() - aborts0 < 1 {
        return Err("chain abort not counted".into());
    }
    if m::CHAIN_LINKS_CANCELLED.get() - cancelled0 < 1 {
        return Err("cancelled chain link not counted".into());
    }
    if m::CHAIN_ATOMICITY_VIOLATIONS.get() != 0 {
        return Err("chain atomicity violation counter must stay zero".into());
    }
    if m::RINGS_PER_PASS.count() == 0 || m::CQ_BACKLOG_DEPTH.count() == 0 {
        return Err("poller histograms recorded nothing".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_quick_seeds_pass() {
        for seed in 0..2 {
            differential_run(seed, 24).unwrap();
        }
    }

    #[test]
    fn exactly_once_quick_seeds_pass() {
        for seed in 0..2 {
            ring_exactly_once(seed, 200).unwrap();
        }
    }

    #[test]
    fn telemetry_coherence_holds() {
        telemetry_counters_coherent().unwrap();
    }

    #[test]
    fn multi_ring_quick_seeds_pass() {
        for seed in 0..2 {
            multi_ring_differential(seed, 2 + (seed as usize % 3), 24).unwrap();
        }
    }

    #[test]
    fn chain_atomicity_quick_seeds_pass() {
        for seed in 0..2 {
            chain_atomicity(seed, 24).unwrap();
        }
    }

    #[test]
    fn poller_fairness_quick_seeds_pass() {
        for seed in 0..2 {
            poller_fairness_bound(seed, 24).unwrap();
        }
    }
}
