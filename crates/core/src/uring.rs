//! Differential verification of the asynchronous syscall rings.
//!
//! The uring linearization claim is discharged the same way the paper
//! discharges refinement (§4.4): run the implementation and a reference
//! side by side on randomized workloads and compare *everything
//! observable*. Here the implementation is a [`veros_uring::Engine`]
//! driving one kernel through SQE/CQE marshalling, and the reference is
//! a [`veros_uring::SyncTwin`] driving a second, identically booted
//! kernel through the fully instrumented synchronous entry point. The
//! twin deliberately mirrors the engine's scheduling policy (worker
//! spawn order, LIFO reuse, FIFO pending scans), so after the same
//! submission sequence the checks can be exact, not merely up to
//! isomorphism:
//!
//! * every completion sequence matches entry for entry (token, result,
//!   and order — the engine's dispatch order *is* a linearization of
//!   the submitted operations, and it agrees with the twin's
//!   synchronous order);
//! * non-blocking submissions complete in FIFO submission order;
//! * the final kernel views ([`crate::view()`]) are identical, thread
//!   ids and id counters included.
//!
//! Exactly-once delivery across wraparound/full/empty boundaries and
//! telemetry coherence are separate obligations below.

use std::collections::BTreeMap;

use veros_kernel::syscall::{SysRet, Syscall};
use veros_kernel::{Kernel, KernelConfig, Pid};
use veros_spec::rng::SpecRng;
use veros_uring::{pair, Cqe, Engine, SyncTwin};

use crate::view::view;

/// Base of the pre-mapped shared region both kernels get at setup.
const SHARED_VA: u64 = 0x60_0000;
/// Futex words inside the shared region.
const FUTEX_VAS: [u64; 3] = [SHARED_VA, SHARED_VA + 0x40, SHARED_VA + 0x80];
/// Path string location inside the shared region.
const PATH_VA: u64 = SHARED_VA + 0x1000;
const PATH: &[u8] = b"/ringfile";
/// Pool of addresses the random Map/Unmap traffic works on (disjoint
/// from the shared region so the setup state stays probeable).
const MAP_VAS: [u64; 6] = [0x40_0000, 0x40_1000, 0x40_2000, 0x40_3000, 0x40_4000, 0x40_5000];

fn boot() -> Result<Kernel, String> {
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let c = (k.init_pid, k.init_tid);
    k.syscall(c, Syscall::Map { va: SHARED_VA, pages: 2, writable: true })
        .map_err(|e| format!("setup map: {e:?}"))?;
    k.write_user(c.0, PATH_VA, PATH).map_err(|e| format!("setup path: {e:?}"))?;
    Ok(k)
}

/// Alive children of `parent`, in pid order (identical on both kernels
/// as long as the executions have not diverged).
fn alive_children(k: &Kernel, parent: Pid) -> Vec<u64> {
    k.processes()
        .iter()
        .filter(|p| p.parent == Some(parent) && matches!(p.state, veros_kernel::ProcessState::Alive))
        .map(|p| p.pid.0)
        .collect()
}

/// Exits `child` "from the environment" — its own first thread calls
/// `Exit` through the synchronous path. Applied to both kernels only at
/// quiesced points (submission queue fully drained), so it commutes
/// identically with the ring and the twin.
fn exit_child(k: &mut Kernel, child: u64) -> Result<(), String> {
    let pid = Pid(child);
    let tid = k
        .processes()
        .get(pid)
        .map_err(|e| format!("child {child} lookup: {e:?}"))?
        .threads[0];
    k.syscall((pid, tid), Syscall::Exit { code: 9 })
        .map_err(|e| format!("child {child} exit: {e:?}"))?;
    Ok(())
}

/// One random operation. Blocking-capable ops are marked so the FIFO
/// check can exclude them.
fn gen_op(rng: &mut SpecRng, children: &[u64]) -> Syscall {
    match rng.below(13) {
        0 => Syscall::Map {
            va: *rng.choose(&MAP_VAS),
            pages: 1 + rng.below(3),
            writable: true,
        },
        1 => Syscall::Unmap { va: *rng.choose(&MAP_VAS), pages: 1 + rng.below(3) },
        2 => Syscall::ClockRead,
        3 => Syscall::Yield,
        4 => Syscall::Spawn,
        5 => {
            // A real child (may still be running → parks a worker) or a
            // bogus pid (fails identically on both sides).
            let pid = if children.is_empty() || rng.chance(1, 4) {
                999
            } else {
                *rng.choose(children)
            };
            Syscall::Wait { pid }
        }
        6 => Syscall::FutexWait {
            va: *rng.choose(&FUTEX_VAS),
            // Word is 0: expected 0 blocks, expected 7 errs — both arms
            // behave identically on ring and twin.
            expected: if rng.chance(1, 3) { 7 } else { 0 },
        },
        7 => Syscall::FutexWake { va: *rng.choose(&FUTEX_VAS), count: 1 + rng.below(2) as u32 },
        8 => Syscall::Open { path_ptr: PATH_VA, path_len: PATH.len() as u64, create: true },
        9 => Syscall::Write {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x100,
            buf_len: 1 + rng.below(32),
        },
        10 => Syscall::Read {
            fd: 3 + rng.below(3) as u32,
            buf_ptr: SHARED_VA + 0x200,
            buf_len: 1 + rng.below(32),
        },
        11 => Syscall::Seek { fd: 3 + rng.below(3) as u32, offset: rng.below(16) },
        _ => Syscall::Close { fd: 3 + rng.below(3) as u32 },
    }
}

fn may_block(call: &Syscall) -> bool {
    matches!(call, Syscall::FutexWait { .. } | Syscall::Wait { .. })
}

fn drain(user: &mut veros_uring::UserRing, into: &mut Vec<Cqe>) {
    while let Some(cqe) = user.complete() {
        into.push(cqe);
    }
}

/// The linearization obligation: a random submission sequence through
/// the ring produces, completion for completion, the synchronous twin's
/// results — and leaves the kernel in the *identical* abstract state.
pub fn differential_run(seed: u64, steps: usize) -> Result<(), String> {
    let mut ka = boot()?;
    let mut kb = boot()?;
    let owner_a = (ka.init_pid, ka.init_tid);
    let owner_b = (kb.init_pid, kb.init_tid);

    let (mut user, kring) = pair(8);
    let mut engine = Engine::new(kring, owner_a).with_dispatch_log();
    let mut twin = SyncTwin::new(owner_b);

    let mut rng = SpecRng::seeded(seed ^ 0x71_c4fe);
    let mut token = 0u64;
    let mut blocking_tokens = Vec::new();
    let mut ring_cqes: Vec<Cqe> = Vec::new();

    for step in 0..steps {
        // One batch of 1..=4 operations, generated once and fed to both
        // executions in the same order.
        let children = alive_children(&kb, owner_b.0);
        let n = 1 + rng.below(4) as usize;
        let batch: Vec<Syscall> = (0..n).map(|_| gen_op(&mut rng, &children)).collect();
        let base = token;
        for call in &batch {
            if may_block(call) {
                blocking_tokens.push(token);
            }
            if user.submit(token, call).is_err() {
                // Backpressure mid-batch: drain and retry (depth 8 vs
                // batch ≤ 4, so a second failure is a real bug).
                engine.submit_batch(&mut ka);
                drain(&mut user, &mut ring_cqes);
                user.submit(token, call)
                    .map_err(|_| format!("seed {seed} step {step}: SQ full after drain"))?;
            }
            token += 1;
        }
        engine.submit_batch(&mut ka);
        engine.reap(&mut ka);
        drain(&mut user, &mut ring_cqes);
        for (i, call) in batch.iter().enumerate() {
            twin.submit(&mut kb, base + i as u64, *call);
        }
        twin.pump(&mut kb);

        // Environment event at a quiesced point: some child exits,
        // waking any parked `Wait` on it — on both kernels.
        if rng.chance(1, 3) {
            let kids = alive_children(&kb, owner_b.0);
            if !kids.is_empty() {
                let victim = *rng.choose(&kids);
                exit_child(&mut ka, victim)?;
                exit_child(&mut kb, victim)?;
            }
        }
    }

    // Drain the run so both pending tables empty: wake every futex and
    // exit every remaining child, then keep reaping.
    for k in [&mut ka, &mut kb] {
        let c = (k.init_pid, k.init_tid);
        for va in FUTEX_VAS {
            k.syscall(c, Syscall::FutexWake { va, count: u32::MAX })
                .map_err(|e| format!("wake-all: {e:?}"))?;
        }
    }
    for child in alive_children(&kb, owner_b.0) {
        exit_child(&mut ka, child)?;
        exit_child(&mut kb, child)?;
    }
    for _ in 0..16 {
        engine.reap(&mut ka);
        drain(&mut user, &mut ring_cqes);
        twin.pump(&mut kb);
        if engine.pending_len() == 0 && twin.pending_len() == 0 {
            break;
        }
    }
    if engine.pending_len() != 0 || twin.pending_len() != 0 {
        return Err(format!(
            "seed {seed}: pending tables did not drain (engine {}, twin {})",
            engine.pending_len(),
            twin.pending_len()
        ));
    }
    engine.shutdown(&mut ka);
    drain(&mut user, &mut ring_cqes);
    twin.shutdown(&mut kb);

    // 1. Completion sequences agree entry for entry.
    let twin_cqes = twin.completions();
    if ring_cqes.len() != twin_cqes.len() {
        return Err(format!(
            "seed {seed}: {} ring completions vs {} twin completions",
            ring_cqes.len(),
            twin_cqes.len()
        ));
    }
    for (i, (r, t)) in ring_cqes.iter().zip(twin_cqes).enumerate() {
        if r != t {
            return Err(format!("seed {seed}: completion {i} diverges: ring {r:?}, twin {t:?}"));
        }
    }

    // 2. Non-blocking completions are FIFO in submission order.
    let mut last = None;
    for cqe in &ring_cqes {
        if blocking_tokens.contains(&cqe.user_data) {
            continue;
        }
        if let Some(prev) = last {
            if cqe.user_data <= prev {
                return Err(format!(
                    "seed {seed}: non-blocking token {} completed after {}",
                    cqe.user_data, prev
                ));
            }
        }
        last = Some(cqe.user_data);
    }

    // 3. The dispatch log — the engine's linearization witness — has a
    // final verdict per token that equals the posted completion.
    let mut final_dispatch: BTreeMap<u64, SysRet> = BTreeMap::new();
    for r in engine.take_dispatch_log() {
        final_dispatch.insert(r.user_data, r.result);
    }
    for cqe in &ring_cqes {
        if let Some(res) = final_dispatch.get(&cqe.user_data) {
            if *res != cqe.result {
                return Err(format!(
                    "seed {seed}: token {} dispatch log says {res:?}, CQE says {:?}",
                    cqe.user_data, cqe.result
                ));
            }
        }
    }

    // 4. The abstract kernel states are identical.
    let va = view(&ka);
    let vb = view(&kb);
    if va != vb {
        return Err(format!("seed {seed}: final kernel views diverge after {token} ops"));
    }
    Ok(())
}

/// The exactly-once obligation: across random submit/drain interleaving
/// on a deliberately tiny (depth-4) ring — constant wraparound, frequent
/// full/empty boundaries, CQ overflow through the engine backlog — every
/// accepted SQE completes exactly once and every rejected one not at
/// all.
pub fn ring_exactly_once(seed: u64, steps: usize) -> Result<(), String> {
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let owner = (k.init_pid, k.init_tid);
    let (mut user, kring) = pair(4);
    let mut engine = Engine::new(kring, owner);

    let mut rng = SpecRng::seeded(seed ^ 0x0e4ac71);
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    let mut token = 0u64;

    for _ in 0..steps {
        match rng.below(4) {
            // Submit-heavy mix keeps the SQ bouncing off full.
            0 | 1 => {
                let call =
                    if rng.chance(1, 2) { Syscall::ClockRead } else { Syscall::Yield };
                if user.submit(token, &call).is_ok() {
                    accepted.push(token);
                } else {
                    rejected.push(token);
                }
                token += 1;
            }
            2 => {
                engine.submit_batch(&mut k);
            }
            _ => {
                while let Some(cqe) = user.complete() {
                    *seen.entry(cqe.user_data).or_default() += 1;
                }
            }
        }
    }
    // Final drain: flush the engine (including its CQ-overflow backlog)
    // until the user side stops seeing completions.
    loop {
        engine.submit_batch(&mut k);
        let mut got = 0;
        while let Some(cqe) = user.complete() {
            *seen.entry(cqe.user_data).or_default() += 1;
            got += 1;
        }
        if got == 0 {
            break;
        }
    }

    for t in &accepted {
        match seen.get(t) {
            Some(1) => {}
            Some(n) => return Err(format!("seed {seed}: token {t} completed {n} times")),
            None => return Err(format!("seed {seed}: accepted token {t} was lost")),
        }
    }
    for t in &rejected {
        if seen.contains_key(t) {
            return Err(format!("seed {seed}: rejected token {t} completed anyway"));
        }
    }
    if seen.len() != accepted.len() {
        return Err(format!(
            "seed {seed}: {} distinct completions for {} accepted submissions",
            seen.len(),
            accepted.len()
        ));
    }
    Ok(())
}

/// Telemetry coherence for the ring instruments: with the feature on, a
/// known workload moves the counters by at least its known floors (they
/// are process-global, so concurrent tests can only inflate them); with
/// it off, every ring instrument must read exactly zero.
pub fn telemetry_counters_coherent() -> Result<(), String> {
    use veros_uring::metrics as m;

    let submitted0 = m::SQES_SUBMITTED.get();
    let posted0 = m::CQES_POSTED.get();
    let rejected0 = m::SQ_FULL_REJECTIONS.get();
    let parked0 = m::OPS_PARKED.get();

    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e:?}"))?;
    let owner = (k.init_pid, k.init_tid);
    k.syscall(owner, Syscall::Map { va: SHARED_VA, pages: 1, writable: true })
        .map_err(|e| format!("map: {e:?}"))?;
    let (mut user, kring) = pair(4);
    let mut engine = Engine::new(kring, owner);
    // 4 accepted ClockReads + 1 backpressure rejection.
    for t in 0..4 {
        user.submit(t, &Syscall::ClockRead).map_err(|_| "submit")?;
    }
    if user.submit(4, &Syscall::ClockRead).is_ok() {
        return Err("depth-4 ring accepted a fifth entry".into());
    }
    engine.submit_batch(&mut k);
    while user.complete().is_some() {}
    // One parked futex wait, woken and reaped.
    user.submit(5, &Syscall::FutexWait { va: SHARED_VA, expected: 0 })
        .map_err(|_| "submit wait")?;
    engine.submit_batch(&mut k);
    k.syscall(owner, Syscall::FutexWake { va: SHARED_VA, count: 1 })
        .map_err(|e| format!("wake: {e:?}"))?;
    engine.reap(&mut k);
    while user.complete().is_some() {}

    if !veros_telemetry::enabled() {
        if m::SQES_SUBMITTED.get() != 0
            || m::SQ_FULL_REJECTIONS.get() != 0
            || m::CQES_POSTED.get() != 0
            || m::CQ_OVERFLOWS.get() != 0
            || m::OPS_PARKED.get() != 0
        {
            return Err("telemetry disabled but uring counters are nonzero".into());
        }
        if m::SQ_DEPTH.count() != 0
            || m::SUBMIT_BATCH.count() != 0
            || m::REAP_BATCH.count() != 0
            || m::COMPLETION_LATENCY.count() != 0
        {
            return Err("telemetry disabled but uring histograms recorded samples".into());
        }
        return Ok(());
    }
    if m::SQES_SUBMITTED.get() - submitted0 < 5 {
        return Err("5 accepted submissions under-counted".into());
    }
    if m::SQ_FULL_REJECTIONS.get() - rejected0 < 1 {
        return Err("backpressure rejection not counted".into());
    }
    if m::CQES_POSTED.get() - posted0 < 5 {
        return Err("5 completions under-counted".into());
    }
    if m::OPS_PARKED.get() - parked0 < 1 {
        return Err("parked futex wait not counted".into());
    }
    if m::SUBMIT_BATCH.count() == 0 || m::COMPLETION_LATENCY.count() == 0 {
        return Err("batch/latency histograms recorded nothing".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_quick_seeds_pass() {
        for seed in 0..2 {
            differential_run(seed, 24).unwrap();
        }
    }

    #[test]
    fn exactly_once_quick_seeds_pass() {
        for seed in 0..2 {
            ring_exactly_once(seed, 200).unwrap();
        }
    }

    #[test]
    fn telemetry_coherence_holds() {
        telemetry_counters_coherent().unwrap();
    }
}
