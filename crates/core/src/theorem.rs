//! The refinement theorem (§4.4), checked.
//!
//! "The theorem we need to prove is that the high-level spec described
//! in Section 3 is refined by a model of the hardware execution ... In
//! this case the behavior we want to preserve is the return values of
//! instructions, including reading from memory and system calls."
//!
//! [`refinement_run`] drives a random multi-process workload against the
//! live kernel and the abstract [`SysState`] in lock-step: at every step
//! the scheduler's choice of thread is a random runnable thread (the
//! abstract execution model says interleavings are arbitrary), the
//! operation's return values must be identical, and periodically the
//! whole abstract view must match. A complete run *is* a checked
//! instance of the refinement theorem on that trace.

use veros_kernel::syscall::{abi, SysError, Syscall};
use veros_kernel::{Kernel, KernelConfig, Pid, Tid};
use veros_spec::rng::SpecRng;

use crate::sys_spec::{AbsOp, AbsRet, SysState};
use crate::view::view;

/// Statistics from a completed refinement run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Operations driven.
    pub ops: usize,
    /// Full-view comparisons performed.
    pub view_checks: usize,
    /// Syscalls that returned errors (still checked — error behaviour is
    /// part of the contract).
    pub error_returns: usize,
}

/// Drives `steps` random operations with the given seed; `view_every`
/// controls how often the full abstract view is compared (0 = only at
/// the end).
pub fn refinement_run(seed: u64, steps: usize, view_every: usize) -> Result<RunStats, String> {
    let mut rng = SpecRng::seeded(seed ^ 0x7e0);
    let config = KernelConfig {
        frames: 8192,
        cores: 2,
        disk_sectors: 1 << 14,
        ..Default::default()
    };
    let mut kernel = Kernel::boot(config).map_err(|e| format!("{e:?}"))?;
    let mut spec = SysState::boot(kernel.sched.cores() as u64);
    let mut stats = RunStats::default();

    // Pools the generator draws from.
    let vas: Vec<u64> = (0..8).map(|i| 0x10_0000 + i * 0x4000).collect();
    let paths = ["/a", "/b", "/log", "/data"];

    for step in 0..steps {
        // Choose a runnable thread per the abstract execution model.
        let runnable = spec.runnable();
        if runnable.is_empty() {
            break; // Everything blocked or exited: the trace ends.
        }
        let (pid, tid) = *rng.choose(&runnable);

        // Generate an operation in-context.
        let op = generate_op(&mut rng, &spec, pid, tid, &vas, &paths);

        // Apply to the spec.
        let want = spec.apply(&op);

        // Apply to the kernel.
        let got = apply_kernel(&mut kernel, &op);

        if got != want {
            return Err(format!(
                "seed {seed} step {step}: {op:?}\n  kernel: {got:?}\n  spec:   {want:?}"
            ));
        }
        if let AbsRet::Sys(Err(_)) = got {
            stats.error_returns += 1;
        }
        stats.ops += 1;

        if view_every != 0 && step % view_every == 0 {
            let v = view(&kernel);
            if v != spec {
                return Err(format!(
                    "seed {seed} step {step}: views diverged after {op:?}\n{}",
                    crate::sys::diff_summary(&spec, &v)
                ));
            }
            stats.view_checks += 1;
        }
    }

    // Final full comparison.
    let v = view(&kernel);
    if v != spec {
        return Err(format!("seed {seed}: final views diverged\n{}", crate::sys::diff_summary(&spec, &v)));
    }
    stats.view_checks += 1;
    Ok(stats)
}

fn generate_op(
    rng: &mut SpecRng,
    spec: &SysState,
    pid: u64,
    tid: u64,
    vas: &[u64],
    paths: &[&str],
) -> AbsOp {
    let call = |c: Syscall| AbsOp::Call(pid, tid, c);
    // Biased mix: memory ops and file ops dominate, lifecycle ops are
    // rarer, plus occasional hostile arguments.
    match rng.below(24) {
        0 => call(Syscall::Spawn),
        1 => {
            // Exit sometimes; avoid killing init too often so runs last.
            if pid == 1 && rng.chance(9, 10) {
                call(Syscall::Yield)
            } else {
                call(Syscall::Exit {
                    code: rng.below(256) as i32,
                })
            }
        }
        2 => {
            // Wait on a random known pid (children and strangers alike —
            // error behaviour is contract too).
            let candidates: Vec<u64> = spec.procs.keys().copied().collect();
            call(Syscall::Wait {
                pid: *rng.choose(&candidates),
            })
        }
        3..=5 => call(Syscall::Map {
            va: *rng.choose(vas) + rng.below(2) * 0x1000,
            pages: 1 + rng.below(3),
            writable: rng.chance(3, 4),
        }),
        6 => call(Syscall::Unmap {
            va: *rng.choose(vas),
            pages: 1 + rng.below(3),
        }),
        7 | 8 => {
            // Open/Unlink: point at a mapped path if possible. Both
            // sides read the path bytes from their (identical) memory
            // views, so whatever is there is a consistent argument.
            let p = spec.procs.get(&pid).expect("runnable process");
            if let Some((&base, page)) = p.mem.iter().find(|(_, pg)| pg.writable) {
                let _ = page;
                let path = rng.choose(paths);
                let sc = if rng.chance(1, 4) {
                    Syscall::Unlink {
                        path_ptr: base,
                        path_len: path.len() as u64,
                    }
                } else {
                    Syscall::Open {
                        path_ptr: base,
                        path_len: path.len() as u64,
                        create: rng.chance(2, 3),
                    }
                };
                AbsOp::Call(pid, tid, sc)
            } else {
                call(Syscall::Yield)
            }
        }
        9 | 10 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            let fds: Vec<u32> = p.fds.keys().copied().collect();
            if fds.is_empty() || p.mem.is_empty() {
                call(Syscall::Yield)
            } else {
                let buf = *rng.choose(&p.mem.keys().copied().collect::<Vec<_>>());
                call(Syscall::Read {
                    fd: *rng.choose(&fds),
                    buf_ptr: buf + rng.below(64),
                    buf_len: rng.below(6000),
                })
            }
        }
        11 | 12 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            let fds: Vec<u32> = p.fds.keys().copied().collect();
            if fds.is_empty() || p.mem.is_empty() {
                call(Syscall::Yield)
            } else {
                let buf = *rng.choose(&p.mem.keys().copied().collect::<Vec<_>>());
                call(Syscall::Write {
                    fd: *rng.choose(&fds),
                    buf_ptr: buf + rng.below(64),
                    buf_len: rng.below(2048),
                })
            }
        }
        13 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            let fds: Vec<u32> = p.fds.keys().copied().collect();
            if fds.is_empty() {
                call(Syscall::Yield)
            } else {
                call(Syscall::Seek {
                    fd: *rng.choose(&fds),
                    offset: rng.below(1 << 12),
                })
            }
        }
        14 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            let fds: Vec<u32> = p.fds.keys().copied().collect();
            if fds.is_empty() {
                call(Syscall::Yield)
            } else {
                call(Syscall::Close {
                    fd: *rng.choose(&fds),
                })
            }
        }
        15 => call(Syscall::FutexWait {
            va: *rng.choose(vas),
            expected: rng.below(3) as u32,
        }),
        16 => call(Syscall::FutexWake {
            va: *rng.choose(vas),
            count: 1 + rng.below(3) as u32,
        }),
        17 => call(Syscall::ThreadSpawn {
            affinity_plus_one: rng.below(4),
        }),
        18 => call(Syscall::ClockRead),
        19 => AbsOp::Tick,
        20 | 21 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            if p.mem.is_empty() {
                call(Syscall::Yield)
            } else {
                let base = *rng.choose(&p.mem.keys().copied().collect::<Vec<_>>());
                AbsOp::MemRead {
                    pid,
                    va: base + rng.below(4096),
                    len: 1 + rng.below(8192),
                }
            }
        }
        22 => {
            let p = spec.procs.get(&pid).expect("runnable process");
            if p.mem.is_empty() {
                call(Syscall::Yield)
            } else {
                let base = *rng.choose(&p.mem.keys().copied().collect::<Vec<_>>());
                let mut data = vec![0u8; 1 + rng.index(256)];
                rng.fill(&mut data);
                AbsOp::MemWrite {
                    pid,
                    va: base + rng.below(4096),
                    data,
                }
            }
        }
        _ => {
            // Hostile arguments: unmapped pointers, bad fds, huge
            // lengths — error equality is part of refinement.
            match rng.below(4) {
                0 => call(Syscall::Read {
                    fd: 99,
                    buf_ptr: 0xdead_0000,
                    buf_len: 8,
                }),
                1 => call(Syscall::Open {
                    path_ptr: 0xdead_0000,
                    path_len: 5,
                    create: true,
                }),
                2 => call(Syscall::Map {
                    va: 0x123, // Misaligned.
                    pages: 1,
                    writable: true,
                }),
                _ => AbsOp::MemRead {
                    pid,
                    va: 0xdead_0000,
                    len: 16,
                },
            }
        }
    }
}

fn apply_kernel(kernel: &mut Kernel, op: &AbsOp) -> AbsRet {
    match op {
        AbsOp::Call(pid, tid, call) => {
            // Through the full register ABI, so every driven call also
            // exercises marshalling.
            let regs = abi::encode_regs(call);
            let (status, value) = kernel.syscall_regs((Pid(*pid), Tid(*tid)), regs);
            AbsRet::Sys(abi::decode_ret(status, value).expect("well-formed return"))
        }
        AbsOp::MemRead { pid, va, len } => AbsRet::Bytes(kernel.read_user(Pid(*pid), *va, *len)),
        AbsOp::MemWrite { pid, va, data } => {
            AbsRet::Unit(kernel.write_user(Pid(*pid), *va, data))
        }
        AbsOp::Tick => {
            kernel.clock.tick();
            AbsRet::Unit(Ok(()))
        }
    }
}

// Re-exported so `sys.rs` and this module share the diff renderer.
impl crate::sys_spec::SysState {
    /// A short human-readable summary of how `self` differs from `other`.
    pub fn diff(&self, other: &SysState) -> String {
        crate::sys::diff_summary(self, other)
    }
}

/// Convenience: suppress unused-import warnings for SysError in rustdoc
/// examples.
#[allow(dead_code)]
fn _uses(_e: SysError) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_refinement_runs_pass() {
        for seed in 0..4 {
            let stats = refinement_run(seed, 150, 10).unwrap();
            assert!(stats.ops > 0);
            assert!(stats.view_checks > 0);
            assert!(stats.error_returns > 0, "hostile ops should appear");
        }
    }

    #[test]
    fn longer_run_with_final_view_only() {
        let stats = refinement_run(42, 600, 0).unwrap();
        assert!(stats.ops > 100);
    }
}
