//! End-to-end safety invariants swept under fault schedules.
//!
//! `INVARIANTS.md` states what the whole stack guarantees; this module
//! is the executable side of that contract. Each public function here is
//! one invariant *family*: it enumerates [`FaultSchedule`]s with
//! [`FaultSchedule::sweep`] (crash points, wire faults, torn writes —
//! never a single lucky seed) and drives the real subsystems through
//! each schedule, failing with the schedule's description on the first
//! violation. The VC registrations in [`crate::vcs`] name these families
//! `invariant::<family>::*`, which is exactly the anchor format
//! `INVARIANTS.md` uses, so the audit's invariant-coverage check can
//! verify doc ↔ code agreement in both directions.
//!
//! Every family takes an [`Ablation`]: [`Ablation::None`] is the real
//! system, while each other variant disables exactly one fault-injected
//! defense (a journal barrier, replication, retransmission, rollback
//! accounting, resume-at-boundary recovery). The
//! `invariant_regression` integration test asserts each family *fails*
//! under its ablation — the anti-vacuity guard demanded by the sweep
//! discipline.

use std::collections::{BTreeMap, BTreeSet};

use veros_spec::fault::FaultSchedule;
use veros_spec::rng::SpecRng;
use veros_telemetry::Counter;

use crate::metrics;

/// The invariant families and their VC-name anchors, in the order they
/// appear in `INVARIANTS.md`. The audit's invariant-coverage check
/// matches the doc's backticked anchors against registered VC names;
/// this table is the code-side source of truth for family names.
pub const FAMILIES: [(&str, &str); 6] = [
    ("durability", "invariant::durability::*"),
    ("exactly_once", "invariant::exactly_once::*"),
    ("fs_journal", "invariant::fs_journal::*"),
    ("frames", "invariant::frames::*"),
    ("uring_chain", "invariant::uring_chain::*"),
    ("cluster_durability", "invariant::cluster_durability::*"),
];

/// Deliberate single-defense breakage, one per family. The sweeps must
/// fail under the matching ablation or they are vacuous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ablation {
    /// The real system: every defense in place.
    None,
    /// Durability: acknowledge puts without replicating to the backup.
    UnreplicatedPut,
    /// Exactly-once: raw datagrams instead of the reliable transport.
    RawDatagrams,
    /// Journal: commit records without the flush barrier.
    SkipCommitBarrier,
    /// Frames: a rollback path that drops frames on the floor.
    LeakFrames,
    /// Uring: recovery replays the dispatch log from the start instead
    /// of resuming at the crash boundary.
    ReplayLogTwice,
    /// Cluster durability: replication chains one node wide, so an ack
    /// no longer implies a copy that survives the writer's death.
    UnreplicatedChain,
}

fn swept(family: &'static Counter) {
    metrics::SCHEDULES_SWEPT.inc();
    family.inc();
}

/// Wraps a violation message; real (non-ablated) violations tick the
/// alert-pinned counter.
fn violation(ablation: Ablation, msg: String) -> String {
    if ablation == Ablation::None {
        metrics::VIOLATIONS.inc();
    }
    msg
}

// ---------------------------------------------------------------------
// Invariant 1: durability.
// ---------------------------------------------------------------------

/// **Durability** (`invariant::durability::*`): every blockstore write
/// the client saw acknowledged survives any single failure — primary
/// disk crash (torn or clean), primary process death with failover to
/// the backup, or both — with contents and checksum intact.
pub fn durability(family_seed: u64, schedules: usize, ablation: Ablation) -> Result<(), String> {
    for sched in FaultSchedule::sweep("durability", family_seed, schedules) {
        swept(&metrics::DURABILITY_SCHEDULES);
        durability_one(&sched, ablation)
            .map_err(|e| violation(ablation, format!("durability: {e} [{}]", sched.describe())))?;
    }
    Ok(())
}

fn durability_one(sched: &FaultSchedule, ablation: Ablation) -> Result<(), String> {
    use veros_blockstore::wire::block_checksum;
    use veros_blockstore::{BlockStore, Cluster, Request, Response};

    let mut c = Cluster::new(sched.wire.into(), sched.seed);
    let mut rng = SpecRng::seeded(sched.seed ^ 0xd00d);

    // Acked writes: the set the invariant quantifies over.
    let nkeys = 3 + sched.ordinal % 3;
    let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
    for i in 0..nkeys {
        let key = format!("inv-{i}");
        let mut data = vec![0u8; 16 + 8 * i];
        rng.fill(&mut data);
        let r = if ablation == Ablation::UnreplicatedPut {
            // The ablated primary acknowledges without replicating: the
            // client hand-encodes the internal replication opcode.
            let id = 0xd000 + i as u64;
            let bytes = Request::Put {
                id,
                key: key.clone(),
                data: data.clone(),
                checksum: block_checksum(&data),
                replicate: false,
            }
            .encode();
            c.rpc(move |cl, s, t| cl.inject_raw(s, t, id, bytes))
        } else {
            let (k, d) = (key.clone(), data.clone());
            c.rpc(move |cl, s, t| cl.put(s, t, &k, &d))
        }
        .map_err(|e| format!("put {key}: {e:?}"))?;
        if !matches!(r, Response::PutOk { .. }) {
            return Err(format!("put {key} not acked: {r:?}"));
        }
        acked.push((key, data));
    }

    // The single failure, chosen by the schedule: 0 = primary death +
    // failover, 1 = primary disk crash + recovery, 2 = both.
    let mode = sched.ordinal % 3;
    if mode != 0 {
        let store = std::mem::replace(&mut c.primary.store, BlockStore::format(64));
        let mut disk = store.into_disk();
        let keep = sched.crash_point(disk.dirty());
        match sched.torn_bytes {
            Some(t) => disk.crash_torn(keep, t),
            None => disk.crash_keep_prefix(keep),
        }
        c.primary.store = BlockStore::recover(disk);
    }
    if mode == 1 {
        // Primary recovered in place: every acked block must read back.
        for (key, data) in &acked {
            let (got, ck) = c
                .primary
                .store
                .get(key)
                .map_err(|e| format!("{key} lost by primary crash-recovery: {e:?}"))?;
            if got != *data || ck != block_checksum(data) {
                return Err(format!("{key} corrupted by primary crash-recovery"));
            }
        }
        return Ok(());
    }
    // Primary is gone: acked writes must be readable from the backup.
    c.kill_primary();
    for (key, data) in &acked {
        let k = key.clone();
        let r = c
            .rpc_failover(move |cl, s, t| cl.get(s, t, &k))
            .map_err(|e| format!("{key} unreadable after failover: {e:?}"))?;
        match r {
            Response::GetOk { data: got, checksum, .. }
                if got == *data && checksum == block_checksum(data) => {}
            other => return Err(format!("{key} lost after failover: {other:?}")),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariant 2: exactly-once apply.
// ---------------------------------------------------------------------

/// **Exactly-once apply** (`invariant::exactly_once::*`): a
/// non-idempotent application log fed from the reliable transport
/// applies every sent message exactly once, in order, no matter how the
/// wire loses, duplicates, or reorders frames — and on lossy schedules
/// the transport must actually retransmit (the sweep is not vacuous).
pub fn exactly_once(family_seed: u64, schedules: usize, ablation: Ablation) -> Result<(), String> {
    let mut retransmissions = 0u64;
    let mut hostile_swept = false;
    for sched in FaultSchedule::sweep("exactly_once", family_seed, schedules) {
        swept(&metrics::EXACTLY_ONCE_SCHEDULES);
        hostile_swept |= sched.wire == veros_spec::fault::WireFaults::hostile();
        retransmissions += exactly_once_one(&sched, ablation).map_err(|e| {
            violation(ablation, format!("exactly_once: {e} [{}]", sched.describe()))
        })?;
    }
    if ablation == Ablation::None && hostile_swept && retransmissions == 0 {
        return Err(violation(
            ablation,
            "exactly_once: hostile schedules swept without a single retransmission \
             (vacuous sweep)"
                .to_string(),
        ));
    }
    Ok(())
}

fn exactly_once_one(sched: &FaultSchedule, ablation: Ablation) -> Result<u64, String> {
    use veros_net::rdt::RdtEndpoint;
    use veros_net::sim::Network;

    let mut net = Network::new(2, sched.wire.into(), sched.seed);
    let sa = net.host(0).bind(7000).map_err(|e| format!("bind a: {e:?}"))?;
    let sb = net.host(1).bind(7001).map_err(|e| format!("bind b: {e:?}"))?;
    let (ip0, ip1) = (net.host(0).ip(), net.host(1).ip());

    let n = 12 + sched.ordinal % 6;
    let sent: Vec<Vec<u8>> = (0..n)
        .map(|i| vec![i as u8, (sched.seed >> (8 * (i % 8))) as u8])
        .collect();
    // The applied log is non-idempotent by construction: a duplicate or
    // reordered apply is visible forever.
    let mut applied: Vec<Vec<u8>> = Vec::new();

    if ablation == Ablation::RawDatagrams {
        // Ablation: fire-and-forget datagrams, no transport.
        for m in &sent {
            net.host(0)
                .send_to(sa, ip1, 7001, m.clone())
                .map_err(|e| format!("send: {e:?}"))?;
        }
        for _ in 0..200 {
            net.step();
            while let Some((_, _, d)) = net.host(1).recv_from(sb).map_err(|e| format!("{e:?}"))? {
                applied.push(d);
            }
        }
        if applied != sent {
            return Err(format!(
                "applied {} messages for {} sent (raw wire broke exactly-once)",
                applied.len(),
                sent.len()
            ));
        }
        return Ok(0);
    }

    let mut a = RdtEndpoint::new(sa, (ip1, 7001)).with_window(4);
    let mut b = RdtEndpoint::new(sb, (ip0, 7000)).with_window(4);
    for m in &sent {
        a.send(net.host(0), 0, m.clone()).map_err(|e| format!("send: {e:?}"))?;
    }
    for now in 0..8_000u64 {
        net.step();
        a.poll(net.host(0), now).map_err(|e| format!("poll a: {e:?}"))?;
        b.poll(net.host(1), now).map_err(|e| format!("poll b: {e:?}"))?;
        a.on_tick(net.host(0), now).map_err(|e| format!("tick a: {e:?}"))?;
        b.on_tick(net.host(1), now).map_err(|e| format!("tick b: {e:?}"))?;
        while let Some(m) = b.recv() {
            applied.push(m);
        }
        // Mid-run: whatever has been applied is an exact prefix — the
        // receiver never applied early, twice, or out of order.
        if applied.len() > sent.len() || applied[..] != sent[..applied.len()] {
            return Err(format!("applied log diverged at step {now}"));
        }
        if a.fully_acked() && applied.len() == sent.len() {
            break;
        }
    }
    if applied != sent {
        return Err(format!(
            "applied {} of {} messages after drain",
            applied.len(),
            sent.len()
        ));
    }
    if !a.fully_acked() {
        return Err("sender never drained".to_string());
    }
    Ok(a.retransmissions())
}

// ---------------------------------------------------------------------
// Invariant 3: journal crash consistency.
// ---------------------------------------------------------------------

/// **Journal crash consistency** (`invariant::fs_journal::*`): after a
/// crash at *any* cached-write boundary — including a torn final sector
/// — recovery restores exactly the last committed transaction boundary:
/// nothing acknowledged is lost, nothing unacknowledged appears.
pub fn fs_journal(family_seed: u64, schedules: usize, ablation: Ablation) -> Result<(), String> {
    for sched in FaultSchedule::sweep("fs_journal", family_seed, schedules) {
        swept(&metrics::FS_JOURNAL_SCHEDULES);
        fs_journal_one(&sched, ablation)
            .map_err(|e| violation(ablation, format!("fs_journal: {e} [{}]", sched.describe())))?;
    }
    Ok(())
}

fn fs_journal_one(sched: &FaultSchedule, ablation: Ablation) -> Result<(), String> {
    use veros_fs::journal::JournaledFs;
    use veros_fs::FsOp;
    use veros_hw::disk::SimDisk;

    let mut jfs = JournaledFs::format(SimDisk::new(256));
    if ablation == Ablation::SkipCommitBarrier {
        jfs.set_commit_barriers(false);
    }
    let mut rng = SpecRng::seeded(sched.seed ^ 0xf5);
    let mut last_boundary = jfs.fs.clone();

    // A few committed transactions, then an uncommitted tail.
    let txns = 2 + sched.ordinal % 3;
    let mut file_no = 0u32;
    let gen_op = |rng: &mut SpecRng, file_no: &mut u32| -> FsOp {
        match rng.below(4) {
            0 => {
                *file_no += 1;
                FsOp::Create(format!("/f{file_no}"))
            }
            1 if *file_no > 0 => {
                let f = 1 + rng.below(*file_no as u64) as u32;
                let mut buf = vec![0u8; 8 + rng.index(24)];
                rng.fill(&mut buf);
                FsOp::WriteAt(format!("/f{f}"), rng.below(8), buf)
            }
            2 if *file_no > 0 => {
                let f = 1 + rng.below(*file_no as u64) as u32;
                FsOp::Truncate(format!("/f{f}"), rng.below(16))
            }
            _ => {
                *file_no += 1;
                FsOp::Create(format!("/f{file_no}"))
            }
        }
    };
    for _ in 0..txns {
        for _ in 0..(1 + rng.index(3)) {
            let op = gen_op(&mut rng, &mut file_no);
            let _ = jfs.apply(op); // invalid ops rejected up front: fine
        }
        jfs.commit().map_err(|e| format!("commit: {e:?}"))?;
        last_boundary = jfs.fs.clone();
    }
    // Uncommitted tail: acked nothing, so it must vanish on crash.
    for _ in 0..(1 + rng.index(2)) {
        let op = gen_op(&mut rng, &mut file_no);
        let _ = jfs.apply(op);
    }

    // Crash at the schedule's point in the cached-write stream.
    let mut disk = jfs.into_disk();
    let keep = sched.crash_point(disk.dirty());
    match sched.torn_bytes {
        Some(t) => disk.crash_torn(keep, t),
        None => disk.crash_keep_prefix(keep),
    }
    let recovered = JournaledFs::recover(disk);
    if recovered.fs != last_boundary {
        return Err(format!(
            "recovered state is not the last committed boundary \
             (crash kept {keep} cached writes)"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariant 4: frame conservation.
// ---------------------------------------------------------------------

/// **No lost frames** (`invariant::frames::*`): across arbitrary
/// map/unmap traffic with mid-range allocation failures forcing
/// rollback, every physical frame stays either allocated or on exactly
/// one free list ([`veros_kernel::BuddyAllocator::audit_conservation`]),
/// and tearing the whole address space down returns the allocator to
/// zero frames held.
pub fn frames(family_seed: u64, schedules: usize, ablation: Ablation) -> Result<(), String> {
    for sched in FaultSchedule::sweep("frames", family_seed, schedules) {
        swept(&metrics::FRAMES_SCHEDULES);
        frames_one(&sched, ablation)
            .map_err(|e| violation(ablation, format!("frames: {e} [{}]", sched.describe())))?;
    }
    Ok(())
}

fn frames_one(sched: &FaultSchedule, ablation: Ablation) -> Result<(), String> {
    use veros_hw::{FrameSource, PAddr, PhysMem, VAddr, PAGE_4K};
    use veros_kernel::vspace::{PtKind, VSpace};
    use veros_kernel::BuddyAllocator;
    use veros_pagetable::MapFlags;

    let mut mem = PhysMem::new(512);
    let mut alloc = BuddyAllocator::new(PAddr(16 * PAGE_4K), 496);
    let mut v = VSpace::new(&mut mem, &mut alloc, PtKind::Verified).map_err(|e| format!("{e:?}"))?;
    let mut rng = SpecRng::seeded(sched.seed ^ 0xf7a3e5);
    let vas: Vec<u64> = (0..12).map(|i| 0x40_0000 + i * 0x1000).collect();

    let steps = 40 + sched.ordinal * 5;
    // The schedule's crash point becomes the *pressure point*: the step
    // where we grab most of physical memory so range maps start failing
    // mid-allocation and must roll back.
    let pressure_at = sched.crash_point(steps);
    let mut blockers: Vec<PAddr> = Vec::new();
    let mut leaked = 0usize;

    for step in 0..steps {
        if step == pressure_at {
            // Exhaust to within a few frames of empty.
            while alloc.free_frames() > 4 {
                match alloc.alloc_frame() {
                    Some(f) => blockers.push(f),
                    None => break,
                }
            }
        }
        let va = VAddr(*rng.choose(&vas));
        match rng.below(4) {
            0 => {
                let _ = v.map_new(&mut mem, &mut alloc, va, MapFlags::user_rw());
            }
            1 => {
                let pages = 1 + rng.below(6);
                let _ = v.map_range_new(&mut mem, &mut alloc, va, pages, MapFlags::user_rw());
            }
            2 => {
                let _ = v.unmap(&mut mem, &mut alloc, va);
            }
            _ => {
                let pages = 1 + rng.below(6);
                let _ = v.unmap_range(&mut mem, &mut alloc, va, pages);
            }
        }
        alloc
            .audit_conservation()
            .map_err(|e| format!("after step {step}: {e}"))?;
        if step == pressure_at + 5 {
            // Release the pressure — except what the ablated rollback
            // path "forgot" it was holding.
            if ablation == Ablation::LeakFrames {
                leaked = blockers.len().min(3);
            }
            for f in blockers.drain(leaked..) {
                alloc.free_frame(f);
            }
            alloc.audit_conservation().map_err(|e| format!("after release: {e}"))?;
        }
    }
    for f in blockers.drain(leaked..) {
        alloc.free_frame(f);
    }
    // Full teardown: the address space gives everything back.
    for &va in &vas {
        let _ = v.unmap(&mut mem, &mut alloc, VAddr(va));
    }
    v.destroy(&mut mem, &mut alloc);
    alloc.audit_conservation().map_err(|e| format!("after teardown: {e}"))?;
    if alloc.allocated_frames() != 0 {
        return Err(format!(
            "{} frames lost after full teardown",
            alloc.allocated_frames()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariant 5: uring chain atomicity across a crash.
// ---------------------------------------------------------------------

/// **Chain crash atomicity** (`invariant::uring_chain::*`): if the
/// engine stops at *any* point mid-stream (a crash at the schedule's
/// SQE-consumption budget), every linked chain has executed either not
/// at all or as an exact effective prefix (all links up to the first
/// failure, nothing after), no link executed twice, and replaying the
/// dispatch log once from a fresh kernel reproduces the crashed
/// kernel's abstract state exactly.
pub fn uring_chain(family_seed: u64, schedules: usize, ablation: Ablation) -> Result<(), String> {
    for sched in FaultSchedule::sweep("uring_chain", family_seed, schedules) {
        swept(&metrics::URING_CHAIN_SCHEDULES);
        uring_chain_one(&sched, ablation)
            .map_err(|e| violation(ablation, format!("uring_chain: {e} [{}]", sched.describe())))?;
    }
    Ok(())
}

fn uring_chain_one(sched: &FaultSchedule, ablation: Ablation) -> Result<(), String> {
    use veros_kernel::syscall::Syscall;
    use veros_uring::{pair, Engine, SqeFlags};

    use crate::uring::{boot, MAP_VAS, PATH, PATH_VA, SHARED_VA};
    use crate::view::view;

    let mut ka = boot()?;
    let owner = (ka.init_pid, ka.init_tid);
    let (mut user, kring) = pair(8);
    let mut engine = Engine::new(kring, owner).with_dispatch_log();
    let mut rng = SpecRng::seeded(sched.seed ^ 0x0c4a);

    // Non-blocking links only (no workers: the crashed state is exactly
    // boot + dispatched links). Roughly a fifth fail (bad fd).
    let gen_link = |rng: &mut SpecRng| -> Syscall {
        match rng.below(6) {
            0 => Syscall::ClockRead,
            1 => Syscall::Yield,
            2 => Syscall::Open { path_ptr: PATH_VA, path_len: PATH.len() as u64, create: true },
            3 => Syscall::Close { fd: 99 }, // BadFd: the chain breaker.
            4 => Syscall::Write {
                fd: 3 + rng.below(3) as u32,
                buf_ptr: SHARED_VA + 0x100,
                buf_len: 1 + rng.below(16),
            },
            _ => Syscall::Map { va: *rng.choose(&MAP_VAS), pages: 1, writable: true },
        }
    };
    let nchains = 6 + sched.ordinal % 3;
    let mut token = 0u64;
    let chains: Vec<Vec<(u64, Syscall)>> = (0..nchains)
        .map(|_| {
            (0..1 + rng.index(4))
                .map(|_| {
                    let t = token;
                    token += 1;
                    (t, gen_link(&mut rng))
                })
                .collect()
        })
        .collect();
    let total_links: usize = chains.iter().map(Vec::len).sum();
    // The crash: the engine may consume at most this many SQEs.
    let budget = sched.crash_point(total_links);
    let mut consumed = 0usize;

    let drain_bounded = |engine: &mut Engine,
                             ka: &mut veros_kernel::Kernel,
                             user: &mut veros_uring::UserRing,
                             consumed: &mut usize,
                             max: usize|
     -> usize {
        let room = budget.saturating_sub(*consumed);
        if room == 0 {
            return 0;
        }
        let (c, _) = engine.submit_batch_bounded(ka, max.min(room));
        *consumed += c;
        while user.complete().is_some() {}
        c
    };

    'submit: for chain in &chains {
        for (i, (t, call)) in chain.iter().enumerate() {
            let flags = SqeFlags { link: i + 1 < chain.len(), subst: None };
            while user.submit_flagged(*t, call, flags).is_err() {
                // SQ full: the engine must make progress — unless the
                // crash budget is spent, which *is* the crash.
                if drain_bounded(&mut engine, &mut ka, &mut user, &mut consumed, 4) == 0 {
                    break 'submit;
                }
            }
            if rng.chance(1, 3) {
                drain_bounded(&mut engine, &mut ka, &mut user, &mut consumed, 2);
            }
        }
    }
    while drain_bounded(&mut engine, &mut ka, &mut user, &mut consumed, 8) > 0 {}

    // CRASH: no shutdown, no final drain — harvest the dispatch log and
    // abandon the ring (buffered chain prefixes and queued SQEs die).
    let log = engine.take_dispatch_log();
    drop(engine);
    drop(user);

    // 1. No link dispatched twice.
    let mut seen = BTreeSet::new();
    for rec in &log {
        if !seen.insert(rec.user_data) {
            return Err(format!("link {} dispatched twice", rec.user_data));
        }
    }
    let by_token: BTreeMap<u64, &veros_uring::DispatchRecord> =
        log.iter().map(|r| (r.user_data, r)).collect();

    // 2. Each chain executed atomically: nothing, or the exact
    // effective prefix (everything before the first failure).
    for (ci, chain) in chains.iter().enumerate() {
        let dispatched: Vec<usize> = (0..chain.len())
            .filter(|i| by_token.contains_key(&chain[*i].0))
            .collect();
        let k = dispatched.len();
        if dispatched != (0..k).collect::<Vec<_>>() {
            return Err(format!(
                "chain {ci}: dispatched links {dispatched:?} are not a prefix"
            ));
        }
        for &i in dispatched.iter().take(k.saturating_sub(1)) {
            if by_token[&chain[i].0].result.is_err() {
                return Err(format!("chain {ci}: link {i} failed but later links ran"));
            }
        }
        if 0 < k && k < chain.len() && by_token[&chain[k - 1].0].result.is_ok() {
            return Err(format!(
                "chain {ci}: dispatch stopped after successful link {} — a partial \
                 chain crossed the crash",
                k - 1
            ));
        }
    }

    // 3. Recovery: replaying the log once from a fresh kernel
    // reproduces the crashed kernel exactly — result for result, and
    // state for state.
    let mut kb = boot()?;
    let owner_b = (kb.init_pid, kb.init_tid);
    for rec in &log {
        let r = kb.syscall_batched(owner_b, rec.call);
        if r != rec.result {
            return Err(format!(
                "replay of link {} returned {r:?}, logged {:?}",
                rec.user_data, rec.result
            ));
        }
    }
    if ablation == Ablation::ReplayLogTwice {
        // Ablated recovery restarts the log from the beginning: any
        // non-idempotent link (an open, a map, even a clock read)
        // diverges on the second pass.
        for rec in &log {
            let r = kb.syscall_batched(owner_b, rec.call);
            if r != rec.result {
                return Err(format!(
                    "second replay of link {} returned {r:?}, logged {:?}",
                    rec.user_data, rec.result
                ));
            }
        }
    }
    if view(&ka) != view(&kb) {
        return Err("replayed kernel state diverges from the crashed kernel".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariant 6: cluster durability on the sharded fleet.
// ---------------------------------------------------------------------

/// **Cluster durability** (`invariant::cluster_durability::*`): on the
/// sharded, chain-replicated fleet, every write a client saw
/// acknowledged survives the fail-stop loss of any single member of its
/// replication chain — head, middle, or tail, chosen by the schedule's
/// victim selector — and reads back with exactly the acknowledged
/// contents from the surviving nodes, under every wire tier.
///
/// This is the §1 durability invariant re-proven on the topology
/// `veros-cluster` generalizes it to: the ack is released only after
/// the tail of an M-way chain acknowledged upstream, so any M−1 deaths
/// short of the whole chain leave a serving copy. The sweep kills one
/// member per schedule; `FaultSchedule::victim_of` walks every chain
/// position across consecutive ordinals, so "any single chain node" is
/// covered, not sampled.
pub fn cluster_durability(
    family_seed: u64,
    schedules: usize,
    ablation: Ablation,
) -> Result<(), String> {
    for sched in FaultSchedule::sweep("cluster_durability", family_seed, schedules) {
        swept(&metrics::CLUSTER_DURABILITY_SCHEDULES);
        cluster_durability_one(&sched, ablation).map_err(|e| {
            violation(
                ablation,
                format!("cluster_durability: {e} [{}]", sched.describe()),
            )
        })?;
    }
    Ok(())
}

fn cluster_durability_one(sched: &FaultSchedule, ablation: Ablation) -> Result<(), String> {
    use veros_blockstore::Response;
    use veros_cluster::{Fleet, FleetConfig, Op};

    // The ablation strips every chain to a single replica: the ack no
    // longer buys a surviving copy, and the sweep must notice the loss.
    let replication = if ablation == Ablation::UnreplicatedChain { 1 } else { 3 };
    let mut f = Fleet::new(FleetConfig {
        nodes: 6,
        replication,
        shards: 16,
        vnodes: 8,
        clients: 1,
        plan: sched.wire.into(),
        seed: sched.seed,
        sectors: 1 << 10,
    });
    const BUDGET: u64 = 30_000;

    // Acked writes: the set the invariant quantifies over.
    let nkeys = 3 + sched.ordinal % 3;
    let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
    for i in 0..nkeys {
        let key = format!("cd-{i}");
        let data = vec![(sched.seed >> (8 * (i % 8))) as u8; 24 + 8 * i];
        let r = f
            .run_op(0, Op::Put { key: key.clone(), data: data.clone() }, BUDGET)
            .ok_or_else(|| format!("put {key} wedged"))?;
        if !matches!(r.resp, Response::PutOk { .. }) {
            return Err(format!("put {key} not acked: {:?}", r.resp));
        }
        acked.push((key, data));
    }

    // The single failure: the schedule's crash fraction picks which
    // acked key's chain to attack, and the victim selector picks which
    // chain position dies.
    let attacked = acked[sched.crash_point(nkeys - 1)].0.clone();
    let chain = f.chain_for_key(&attacked);
    let victim_pos = sched.victim_of(chain.len());
    let victim = chain[victim_pos];
    f.kill_node(victim);

    // Every acked write — on the attacked chain or off it — must read
    // back from the surviving fleet, through failover and shard syncs.
    for (key, data) in &acked {
        let r = f
            .run_op(0, Op::Get { key: key.clone() }, BUDGET)
            .ok_or_else(|| format!("{key} unreadable after losing node {victim}"))?;
        match &r.resp {
            Response::GetOk { data: got, .. } if got == data => {}
            other => {
                return Err(format!(
                    "{key} lost after killing chain position {victim_pos} \
                     (node {victim}): {other:?}"
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The quick-profile VCs already sweep each family; these tests pin
    // the family table and the telemetry contract.

    #[test]
    fn family_table_matches_the_anchor_format() {
        for (name, anchor) in FAMILIES {
            assert_eq!(*anchor, format!("invariant::{name}::*"));
        }
    }

    #[test]
    fn sweeps_tick_the_schedule_counters() {
        let before = metrics::SCHEDULES_SWEPT.get();
        let frames_before = metrics::FRAMES_SCHEDULES.get();
        frames(7, 2, Ablation::None).unwrap();
        if veros_telemetry::enabled() {
            assert_eq!(metrics::SCHEDULES_SWEPT.get(), before + 2);
            assert_eq!(metrics::FRAMES_SCHEDULES.get(), frames_before + 2);
        }
        assert_eq!(metrics::VIOLATIONS.get(), 0);
    }
}
