//! The abstraction function: live kernel → abstract system state.
//!
//! This is `view()` from the paper's §3 example — "the view() functions
//! abstract the concrete runtime values to mathematical representations"
//! — for the whole system state. The crucial choice is how memory is
//! abstracted: **through the MMU's interpretation of the page tables in
//! physical memory** ([`veros_hw::interpret_page_table`]), not through
//! any kernel bookkeeping. A kernel that corrupts its page tables gets a
//! view that diverges from the spec even if its internal records look
//! right — that is what makes the spec process-centric.

use std::collections::BTreeMap;

use veros_hw::{interpret_page_table, PAGE_4K};
use veros_kernel::thread::{BlockReason, ThreadState};
use veros_kernel::Kernel;

use crate::sys_spec::{FdSpec, PageSpec, ProcSpec, SysState, ThreadSpec};

/// Computes the abstract view of the kernel.
///
/// `cores` and the pid/tid counters are part of the abstract state so
/// refinement can predict identifier assignment; they are read from the
/// kernel's public structure.
pub fn view(kernel: &Kernel) -> SysState {
    let mut procs = BTreeMap::new();
    for proc in kernel.processes().iter() {
        let pid = proc.pid;
        let zombie = match proc.state {
            veros_kernel::ProcessState::Alive => None,
            veros_kernel::ProcessState::Zombie { code } => Some(code),
        };

        // Memory: the MMU's interpretation of this process's page table.
        let mut mem = BTreeMap::new();
        if let Some(vspace) = kernel.vspace(pid) {
            for (va, mapping) in interpret_page_table(&kernel.machine.mem, vspace.root()) {
                // Syscall-created mappings are all 4 KiB; larger leaves
                // are decomposed so the abstract shape is uniform.
                let pages = mapping.size / PAGE_4K;
                for i in 0..pages {
                    let mut data = vec![0u8; PAGE_4K as usize];
                    kernel
                        .machine
                        .mem
                        .read_bytes(veros_hw::PAddr(mapping.pa_base.0 + i * PAGE_4K), &mut data);
                    mem.insert(
                        va.0 + i * PAGE_4K,
                        PageSpec {
                            writable: mapping.writable,
                            data,
                        },
                    );
                }
            }
        }

        // File descriptors.
        let mut fds = BTreeMap::new();
        for (fd, path, offset) in kernel.fd_view(pid) {
            fds.insert(fd, FdSpec { path, offset });
        }

        // Threads (exited threads vanish from the abstract state).
        let mut threads = BTreeMap::new();
        for tid in &proc.threads {
            if let Some(t) = kernel.sched.thread(*tid) {
                let st = match t.state {
                    ThreadState::Ready | ThreadState::Running { .. } => ThreadSpec::Runnable,
                    ThreadState::Blocked(BlockReason::Futex(va)) => ThreadSpec::BlockedFutex(va),
                    ThreadState::Blocked(BlockReason::Wait(p)) => ThreadSpec::BlockedWait(p.0),
                    ThreadState::Blocked(BlockReason::Sleep(_)) => ThreadSpec::Runnable,
                    ThreadState::Exited => continue,
                };
                threads.insert(tid.0, st);
            }
        }

        procs.insert(
            pid.0,
            ProcSpec {
                parent: proc.parent.map(|p| p.0),
                zombie,
                mem,
                fds,
                next_fd: proc.next_fd,
                threads,
            },
        );
    }

    // Filesystem: flatten, keeping only files (the syscall surface
    // cannot create directories).
    let flat = veros_fs::spec::view_flat(&kernel.fs.fs);

    // Futex queues.
    let mut futexes = BTreeMap::new();
    for ((pid, va), q) in kernel.futex_view() {
        futexes.insert((pid, va), q);
    }

    SysState {
        procs,
        fs: flat.files,
        futexes,
        next_pid: peek_next_pid(kernel),
        next_tid: peek_next_tid(kernel),
        clock: kernel.clock.now(),
        cores: kernel.sched.cores() as u64,
    }
}

// The counters are not directly readable; they are reconstructed from
// observable state: the kernel assigns pids/tids sequentially, so "the
// next id" is one past the maximum ever observed. To keep this exact,
// the view tracks the maximum over *live* state, which matches as long
// as the driver does not exhaust and recycle... ids are never recycled,
// so the reconstruction below is only a lower bound when processes have
// been reaped. The refinement driver therefore compares everything
// *except* the counters when reaping occurred; to keep the common case
// exact, the kernel exposes the counters directly.
fn peek_next_pid(kernel: &Kernel) -> u64 {
    kernel.next_pid_hint()
}

fn peek_next_tid(kernel: &Kernel) -> u64 {
    kernel.next_tid_hint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_kernel::{KernelConfig, Syscall};

    #[test]
    fn boot_view_matches_spec_boot() {
        let kernel = Kernel::boot(KernelConfig::default()).unwrap();
        let v = view(&kernel);
        let spec = SysState::boot(kernel.sched.cores() as u64);
        assert_eq!(v, spec);
    }

    #[test]
    fn mapped_memory_appears_in_the_view_via_the_mmu() {
        let mut kernel = Kernel::boot(KernelConfig::default()).unwrap();
        let c = (kernel.init_pid, kernel.init_tid);
        kernel
            .syscall(c, Syscall::Map { va: 0x4000, pages: 1, writable: true })
            .unwrap();
        kernel.write_user(c.0, 0x4010, b"observable").unwrap();
        let v = view(&kernel);
        let page = &v.procs[&c.0 .0].mem[&0x4000];
        assert!(page.writable);
        assert_eq!(&page.data[0x10..0x1a], b"observable");
    }

    #[test]
    fn view_is_mmu_grounded_not_bookkeeping_grounded() {
        // Corrupt the page table bits directly; the view must change
        // even though no kernel structure was touched.
        let mut kernel = Kernel::boot(KernelConfig::default()).unwrap();
        let c = (kernel.init_pid, kernel.init_tid);
        kernel
            .syscall(c, Syscall::Map { va: 0x4000, pages: 1, writable: true })
            .unwrap();
        let before = view(&kernel);
        let root = kernel.vspace(c.0).unwrap().root();
        // Zero the PML4 entry: the mapping disappears from the MMU's
        // point of view.
        let idx = veros_hw::VAddr(0x4000).pml4_index() as u64;
        kernel.machine.mem.write_u64(veros_hw::PAddr(root.0 + 8 * idx), 0);
        let after = view(&kernel);
        assert_ne!(before, after);
        assert!(after.procs[&c.0 .0].mem.is_empty());
    }

    #[test]
    fn fd_and_fs_state_in_view() {
        let mut kernel = Kernel::boot(KernelConfig::default()).unwrap();
        let c = (kernel.init_pid, kernel.init_tid);
        kernel
            .syscall(c, Syscall::Map { va: 0x4000, pages: 1, writable: true })
            .unwrap();
        kernel.write_user(c.0, 0x4000, b"/f").unwrap();
        let fd = kernel
            .syscall(c, Syscall::Open { path_ptr: 0x4000, path_len: 2, create: true })
            .unwrap() as u32;
        kernel.write_user(c.0, 0x4100, b"abc").unwrap();
        kernel
            .syscall(c, Syscall::Write { fd, buf_ptr: 0x4100, buf_len: 3 })
            .unwrap();
        let v = view(&kernel);
        assert_eq!(v.fs["/f"], b"abc");
        assert_eq!(v.procs[&c.0 .0].fds[&fd].offset, 3);
    }
}
