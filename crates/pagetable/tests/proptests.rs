//! Property-based tests of the page-table layers: the high-level spec's
//! algebraic laws and the implementation's agreement with it on
//! arbitrary operation sequences.

use proptest::prelude::*;
use veros_hw::{PAddr, PhysMem, StackFrameSource, VAddr, PAGE_4K};
use veros_pagetable::high_spec::HighSpec;
use veros_pagetable::prefix_tree::PrefixTree;
use veros_pagetable::{MapFlags, MapRequest, PageSize, PageTableOps, PtError, VerifiedPageTable};

fn size_strategy() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        4 => Just(PageSize::Size4K),
        2 => Just(PageSize::Size2M),
        1 => Just(PageSize::Size1G),
    ]
}

fn request_strategy() -> impl Strategy<Value = MapRequest> {
    (
        0usize..4,
        0usize..8,
        0usize..8,
        0usize..8,
        size_strategy(),
        0u64..64,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(l4, l3, l2, l1, size, frame, writable, user, nx)| {
            let va = VAddr(VAddr::from_indices(l4, l3, l2, l1).0 & !(size.bytes() - 1));
            MapRequest {
                va,
                pa: PAddr(frame * size.bytes()),
                size,
                flags: MapFlags { writable, user, nx },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// map then unmap of the same base is the identity on the spec map,
    /// and unmap returns exactly what map installed.
    #[test]
    fn map_unmap_identity(req in request_strategy(), noise in prop::collection::vec(request_strategy(), 0..6)) {
        let mut s = HighSpec::new();
        for n in &noise {
            let _ = s.apply_map(n);
        }
        let before = s.clone();
        if s.apply_map(&req).is_ok() {
            let m = s.apply_unmap(req.va).expect("just mapped");
            prop_assert_eq!(m.pa, req.pa.0);
            prop_assert_eq!(m.size, req.size);
            prop_assert_eq!(m.flags, req.flags);
            prop_assert_eq!(s, before);
        }
    }

    /// Resolve agrees with map contents: after a successful map, every
    /// probed offset inside the mapping translates with that offset.
    #[test]
    fn resolve_is_translation(req in request_strategy(), offset in 0u64..(1 << 21)) {
        let mut s = HighSpec::new();
        if s.apply_map(&req).is_ok() {
            let off = offset % req.size.bytes();
            let r = s.resolve(VAddr(req.va.0 + off)).expect("mapped");
            prop_assert_eq!(r.pa.0, req.pa.0 + off);
            prop_assert_eq!(r.base, req.va);
        }
    }

    /// Overlap is symmetric: if A then B fails with AlreadyMapped, then
    /// B then A also fails with AlreadyMapped.
    #[test]
    fn overlap_symmetric(a in request_strategy(), b in request_strategy()) {
        let mut s1 = HighSpec::new();
        let mut s2 = HighSpec::new();
        if s1.apply_map(&a).is_ok() && s2.apply_map(&b).is_ok() {
            let ab = s1.apply_map(&b);
            let ba = s2.apply_map(&a);
            prop_assert_eq!(
                ab == Err(PtError::AlreadyMapped),
                ba == Err(PtError::AlreadyMapped),
                "A={:?} B={:?}", a, b
            );
        }
    }

    /// The prefix tree and the flat spec agree on arbitrary request
    /// sequences (the first refinement step, property-based).
    #[test]
    fn tree_flat_agree(reqs in prop::collection::vec(request_strategy(), 0..24)) {
        let mut tree = PrefixTree::new();
        let mut flat = HighSpec::new();
        for (i, req) in reqs.iter().enumerate() {
            let a = tree.map(req);
            let b = flat.apply_map(req);
            prop_assert_eq!(a, b, "req {}", i);
            prop_assert!(tree.wf());
        }
        prop_assert_eq!(tree.flatten(), flat.map);
    }

    /// The bit-level implementation agrees with the flat spec, and the
    /// MMU interpretation matches, on arbitrary request sequences with
    /// interleaved unmaps.
    #[test]
    fn impl_spec_agree(
        reqs in prop::collection::vec((request_strategy(), any::<bool>()), 0..16)
    ) {
        let mut mem = PhysMem::new(2048);
        let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(2048 * PAGE_4K));
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let mut spec = HighSpec::new();
        for (req, also_unmap) in &reqs {
            let a = pt.map_frame(&mut mem, &mut alloc, *req);
            let b = spec.apply_map(req);
            prop_assert_eq!(a, b);
            if *also_unmap {
                let a = pt.unmap_frame(&mut mem, &mut alloc, req.va).map(|m| (m.pa, m.size));
                let b = spec.apply_unmap(req.va).map(|m| (m.pa, m.size));
                prop_assert_eq!(a, b);
            }
        }
        veros_pagetable::interp::interpretation_matches(&mem, pt.root(), &spec)
            .map_err(|e| TestCaseError::fail(e))?;
    }

    /// Frame accounting: after unmapping everything, only the root frame
    /// remains allocated, regardless of the sequence.
    #[test]
    fn no_frame_leaks(reqs in prop::collection::vec(request_strategy(), 0..12)) {
        let mut mem = PhysMem::new(2048);
        let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(2048 * PAGE_4K));
        let before = alloc.free_frames();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        let mut mapped = Vec::new();
        for req in &reqs {
            if pt.map_frame(&mut mem, &mut alloc, *req).is_ok() {
                mapped.push(req.va);
            }
        }
        for va in mapped {
            pt.unmap_frame(&mut mem, &mut alloc, va).expect("mapped above");
        }
        prop_assert_eq!(alloc.free_frames(), before - 1, "only the root may remain");
    }
}
