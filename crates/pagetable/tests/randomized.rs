//! Randomized tests of the page-table layers: the high-level spec's
//! algebraic laws and the implementation's agreement with it on
//! arbitrary operation sequences, driven by the in-tree deterministic
//! [`SpecRng`] (formerly proptest-based).

use veros_spec::rng::SpecRng;
use veros_hw::{PAddr, PhysMem, StackFrameSource, VAddr, PAGE_4K};
use veros_pagetable::high_spec::HighSpec;
use veros_pagetable::prefix_tree::PrefixTree;
use veros_pagetable::{MapFlags, MapRequest, PageSize, PageTableOps, PtError, VerifiedPageTable};

fn arbitrary_size(rng: &mut SpecRng) -> PageSize {
    // Weighted 4:2:1 toward small pages, as the proptest strategy was.
    match rng.below(7) {
        0..=3 => PageSize::Size4K,
        4 | 5 => PageSize::Size2M,
        _ => PageSize::Size1G,
    }
}

fn arbitrary_request(rng: &mut SpecRng) -> MapRequest {
    let size = arbitrary_size(rng);
    let (l4, l3, l2, l1) = (rng.index(4), rng.index(8), rng.index(8), rng.index(8));
    let va = VAddr(VAddr::from_indices(l4, l3, l2, l1).0 & !(size.bytes() - 1));
    MapRequest {
        va,
        pa: PAddr(rng.below(64) * size.bytes()),
        size,
        flags: MapFlags {
            writable: rng.chance(1, 2),
            user: rng.chance(1, 2),
            nx: rng.chance(1, 2),
        },
    }
}

/// map then unmap of the same base is the identity on the spec map, and
/// unmap returns exactly what map installed.
#[test]
fn map_unmap_identity() {
    let mut rng = SpecRng::for_obligation("pt::tests::map_unmap_identity");
    for _ in 0..128 {
        let req = arbitrary_request(&mut rng);
        let mut s = HighSpec::new();
        for _ in 0..rng.index(6) {
            let n = arbitrary_request(&mut rng);
            let _ = s.apply_map(&n);
        }
        let before = s.clone();
        if s.apply_map(&req).is_ok() {
            let m = s.apply_unmap(req.va).expect("just mapped");
            assert_eq!(m.pa, req.pa.0);
            assert_eq!(m.size, req.size);
            assert_eq!(m.flags, req.flags);
            assert_eq!(s, before);
        }
    }
}

/// Resolve agrees with map contents: after a successful map, every
/// probed offset inside the mapping translates with that offset.
#[test]
fn resolve_is_translation() {
    let mut rng = SpecRng::for_obligation("pt::tests::resolve_is_translation");
    for _ in 0..128 {
        let req = arbitrary_request(&mut rng);
        let mut s = HighSpec::new();
        if s.apply_map(&req).is_ok() {
            let off = rng.below(1 << 21) % req.size.bytes();
            let r = s.resolve(VAddr(req.va.0 + off)).expect("mapped");
            assert_eq!(r.pa.0, req.pa.0 + off);
            assert_eq!(r.base, req.va);
        }
    }
}

/// Overlap is symmetric: if A then B fails with AlreadyMapped, then B
/// then A also fails with AlreadyMapped.
#[test]
fn overlap_symmetric() {
    let mut rng = SpecRng::for_obligation("pt::tests::overlap_symmetric");
    for _ in 0..256 {
        let a = arbitrary_request(&mut rng);
        let b = arbitrary_request(&mut rng);
        let mut s1 = HighSpec::new();
        let mut s2 = HighSpec::new();
        if s1.apply_map(&a).is_ok() && s2.apply_map(&b).is_ok() {
            let ab = s1.apply_map(&b);
            let ba = s2.apply_map(&a);
            assert_eq!(
                ab == Err(PtError::AlreadyMapped),
                ba == Err(PtError::AlreadyMapped),
                "A={a:?} B={b:?}"
            );
        }
    }
}

/// The prefix tree and the flat spec agree on arbitrary request
/// sequences (the first refinement step, randomized).
#[test]
fn tree_flat_agree() {
    let mut rng = SpecRng::for_obligation("pt::tests::tree_flat_agree");
    for _ in 0..48 {
        let mut tree = PrefixTree::new();
        let mut flat = HighSpec::new();
        for i in 0..rng.index(24) {
            let req = arbitrary_request(&mut rng);
            let a = tree.map(&req);
            let b = flat.apply_map(&req);
            assert_eq!(a, b, "req {i}");
            assert!(tree.wf());
        }
        assert_eq!(tree.flatten(), flat.map);
    }
}

/// The bit-level implementation agrees with the flat spec, and the MMU
/// interpretation matches, on arbitrary request sequences with
/// interleaved unmaps.
#[test]
fn impl_spec_agree() {
    let mut rng = SpecRng::for_obligation("pt::tests::impl_spec_agree");
    for _ in 0..48 {
        let mut mem = PhysMem::new(2048);
        let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(2048 * PAGE_4K));
        let mut pt =
            VerifiedPageTable::new(&mut mem, &mut alloc, true).expect("root frame allocates");
        let mut spec = HighSpec::new();
        for _ in 0..rng.index(16) {
            let req = arbitrary_request(&mut rng);
            let a = pt.map_frame(&mut mem, &mut alloc, req);
            let b = spec.apply_map(&req);
            assert_eq!(a, b);
            if rng.chance(1, 2) {
                let a = pt.unmap_frame(&mut mem, &mut alloc, req.va).map(|m| (m.pa, m.size));
                let b = spec.apply_unmap(req.va).map(|m| (m.pa, m.size));
                assert_eq!(a, b);
            }
        }
        veros_pagetable::interp::interpretation_matches(&mem, pt.root(), &spec)
            .expect("interpretation matches spec");
    }
}

/// Frame accounting: after unmapping everything, only the root frame
/// remains allocated, regardless of the sequence.
#[test]
fn no_frame_leaks() {
    let mut rng = SpecRng::for_obligation("pt::tests::no_frame_leaks");
    for _ in 0..48 {
        let mut mem = PhysMem::new(2048);
        let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(2048 * PAGE_4K));
        let before = alloc.free_frames();
        let mut pt =
            VerifiedPageTable::new(&mut mem, &mut alloc, false).expect("root frame allocates");
        let mut mapped = Vec::new();
        for _ in 0..rng.index(12) {
            let req = arbitrary_request(&mut rng);
            if pt.map_frame(&mut mem, &mut alloc, req).is_ok() {
                mapped.push(req.va);
            }
        }
        for va in mapped {
            pt.unmap_frame(&mut mem, &mut alloc, va).expect("mapped above");
        }
        assert_eq!(alloc.free_frames(), before - 1, "only the root may remain");
    }
}
