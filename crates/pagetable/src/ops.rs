//! Operation types shared by the spec layers and both implementations.

use veros_hw::{PAddr, VAddr, PAGE_1G, PAGE_2M, PAGE_4K};

/// The three architectural page sizes of 4-level x86-64 paging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB leaf at level 1.
    Size4K,
    /// 2 MiB leaf at level 2.
    Size2M,
    /// 1 GiB leaf at level 3.
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => PAGE_4K,
            PageSize::Size2M => PAGE_2M,
            PageSize::Size1G => PAGE_1G,
        }
    }

    /// The table level (1-3) the leaf entry lives at.
    pub fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }

    /// All sizes, smallest first.
    pub fn all() -> [PageSize; 3] {
        [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G]
    }
}

/// Permissions requested for a mapping, from the client's point of view.
///
/// This is the abstract flag set of the high-level spec; the
/// implementation encodes it into architectural bits (and the
/// interpretation check confirms the decoding matches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MapFlags {
    /// Writes allowed.
    pub writable: bool,
    /// User-mode access allowed.
    pub user: bool,
    /// Execution disabled.
    pub nx: bool,
}

impl MapFlags {
    /// Read-write user data.
    pub fn user_rw() -> Self {
        MapFlags {
            writable: true,
            user: true,
            nx: true,
        }
    }

    /// Read-only user data.
    pub fn user_ro() -> Self {
        MapFlags {
            writable: false,
            user: true,
            nx: true,
        }
    }

    /// User-executable code (read-only).
    pub fn user_rx() -> Self {
        MapFlags {
            writable: false,
            user: true,
            nx: false,
        }
    }

    /// Kernel read-write data.
    pub fn kernel_rw() -> Self {
        MapFlags {
            writable: true,
            user: false,
            nx: true,
        }
    }

    /// Every flag combination (for exhaustive encoding checks).
    pub fn all_combinations() -> Vec<MapFlags> {
        let mut out = Vec::with_capacity(8);
        for w in [false, true] {
            for u in [false, true] {
                for n in [false, true] {
                    out.push(MapFlags {
                        writable: w,
                        user: u,
                        nx: n,
                    });
                }
            }
        }
        out
    }
}

/// A fully specified map request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MapRequest {
    /// Virtual base address (must be `size`-aligned and canonical).
    pub va: VAddr,
    /// Physical base address (must be `size`-aligned).
    pub pa: PAddr,
    /// Page size.
    pub size: PageSize,
    /// Permissions.
    pub flags: MapFlags,
}

impl MapRequest {
    /// Convenience constructor for a 4 KiB user-rw mapping.
    pub fn rw_4k(va: u64, pa: u64) -> Self {
        MapRequest {
            va: VAddr(va),
            pa: PAddr(pa),
            size: PageSize::Size4K,
            flags: MapFlags::user_rw(),
        }
    }
}

/// The answer to a successful resolve: where the address translates to
/// and under which mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolveAnswer {
    /// Physical address `va` translates to.
    pub pa: PAddr,
    /// Base of the containing mapping.
    pub base: VAddr,
    /// Size of the containing mapping.
    pub size: PageSize,
    /// Permissions of the containing mapping.
    pub flags: MapFlags,
}

/// Errors shared between the high-level spec and both implementations.
///
/// Matching error behaviour is part of the refinement obligation: the
/// implementation may only fail when the spec fails, with the same error
/// (the single exception is `OutOfMemory`, which the spec — having
/// unbounded ghost memory — never raises; refinement treats it as a
/// stutter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PtError {
    /// The virtual address is not canonical.
    NonCanonical,
    /// The virtual address is not aligned to the page size.
    MisalignedVa,
    /// The physical address is not aligned to the page size.
    MisalignedPa,
    /// The requested range overlaps an existing mapping.
    AlreadyMapped,
    /// No mapping exists (for unmap: none with this exact base; for
    /// resolve: none containing the address).
    NotMapped,
    /// A directory frame could not be allocated (implementation only).
    OutOfMemory,
    /// The physical range does not fit the machine's memory.
    PhysOutOfRange,
}

impl std::fmt::Display for PtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PtError::NonCanonical => "virtual address not canonical",
            PtError::MisalignedVa => "virtual address misaligned",
            PtError::MisalignedPa => "physical address misaligned",
            PtError::AlreadyMapped => "range overlaps an existing mapping",
            PtError::NotMapped => "no such mapping",
            PtError::OutOfMemory => "out of directory frames",
            PtError::PhysOutOfRange => "physical range out of bounds",
        };
        f.write_str(s)
    }
}

/// An operation on the page table, used by the bounded refinement checker
/// and the randomized interpretation checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PtOp {
    /// Map a page.
    Map(MapRequest),
    /// Unmap the mapping based exactly at the address.
    Unmap(VAddr),
    /// Resolve an address.
    Resolve(VAddr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_levels() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size1G.bytes(), 1024 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.leaf_level(), 1);
        assert_eq!(PageSize::Size2M.leaf_level(), 2);
        assert_eq!(PageSize::Size1G.leaf_level(), 3);
    }

    #[test]
    fn flag_combinations_are_exhaustive_and_distinct() {
        let all = MapFlags::all_combinations();
        assert_eq!(all.len(), 8);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn preset_flags_make_sense() {
        assert!(MapFlags::user_rw().writable && MapFlags::user_rw().user);
        assert!(!MapFlags::user_rx().nx, "code must be executable");
        assert!(!MapFlags::kernel_rw().user);
    }

    #[test]
    fn errors_render() {
        assert_eq!(PtError::NotMapped.to_string(), "no such mapping");
    }
}
