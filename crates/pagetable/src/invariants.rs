//! Structural invariants of the in-memory page table.
//!
//! These are the inductive invariants a Verus proof would carry through
//! every operation; here they are checked as a whole-structure predicate
//! after operation sequences. A violation of any of them would make the
//! refinement argument unsound (e.g. a shared directory frame would make
//! unmap's frees corrupt unrelated mappings).

use std::collections::HashSet;

use veros_hw::{PAddr, PhysMem, PtEntry, PtFlags, PAGE_4K};

/// Statistics returned by a successful structure check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Structure {
    /// Directory frames reachable from the root (including the root).
    pub directories: usize,
    /// Present leaf entries.
    pub leaves: usize,
}

/// Checks the structural invariants of the table rooted at `root`:
///
/// 1. Every reachable directory frame is 4 KiB aligned and in bounds.
/// 2. No directory frame is reachable twice (no aliasing, no cycles).
/// 3. Non-root directories are non-empty (the no-empty-dirs invariant).
/// 4. The huge bit appears only at levels 3 and 2.
/// 5. Directory entries carry exactly the canonical directory flags.
/// 6. Leaf physical addresses are aligned to their page size.
pub fn check_structure(mem: &PhysMem, root: PAddr) -> Result<Structure, String> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stats = Structure::default();
    check_table(mem, root, 4, true, &mut seen, &mut stats)?;
    Ok(stats)
}

fn check_table(
    mem: &PhysMem,
    table: PAddr,
    level: u8,
    is_root: bool,
    seen: &mut HashSet<u64>,
    stats: &mut Structure,
) -> Result<(), String> {
    if !table.is_aligned(PAGE_4K) {
        return Err(format!("directory {table} not frame-aligned"));
    }
    if !mem.contains(table, PAGE_4K) {
        return Err(format!("directory {table} outside physical memory"));
    }
    if !seen.insert(table.0) {
        return Err(format!("directory {table} reachable twice (aliasing or cycle)"));
    }
    stats.directories += 1;

    let mut present = 0usize;
    for idx in 0..512u16 {
        let e = PtEntry(mem.read_u64(PAddr(table.0 + 8 * idx as u64)));
        if !e.is_present() {
            continue;
        }
        present += 1;
        let is_leaf = level == 1 || e.is_huge();
        if is_leaf {
            if level == 4 {
                return Err(format!("huge bit set in PML4 entry {idx} of {table}"));
            }
            let span = PAGE_4K << (9 * (level - 1));
            if !e.addr().0.is_multiple_of(span) {
                return Err(format!(
                    "leaf at level {level} idx {idx} of {table} maps misaligned {}",
                    e.addr()
                ));
            }
            stats.leaves += 1;
        } else {
            let expected = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
            if e.flags() != expected {
                return Err(format!(
                    "directory entry {idx} of {table} has flags {:?}, expected {expected:?}",
                    e.flags()
                ));
            }
            check_table(mem, e.addr(), level - 1, false, seen, stats)?;
        }
    }
    if present == 0 && !is_root {
        return Err(format!("empty non-root directory {table} at level {level}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapFlags, MapRequest, PageSize};
    use crate::{PageTableOps, VerifiedPageTable};
    use veros_hw::{StackFrameSource, VAddr};

    fn setup() -> (PhysMem, StackFrameSource) {
        (
            PhysMem::new(1024),
            StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(512 * PAGE_4K)),
        )
    }

    #[test]
    fn fresh_table_is_structurally_sound() {
        let (mut mem, mut alloc) = setup();
        let pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        let s = check_structure(&mem, pt.root()).unwrap();
        assert_eq!(s, Structure { directories: 1, leaves: 0 });
    }

    #[test]
    fn populated_table_counts_match_ghost() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        pt.map_frame(
            &mut mem,
            &mut alloc,
            MapRequest {
                va: VAddr(0x20_0000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_rw(),
            },
        )
        .unwrap();
        let s = check_structure(&mem, pt.root()).unwrap();
        assert_eq!(s.leaves, 2);
        // Root + ghost directory count.
        assert_eq!(s.directories, 1 + pt.ghost().unwrap().directory_count());
    }

    #[test]
    fn sabotaged_empty_directory_is_caught() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        // Zero the leaf entry directly, leaving its parent chain intact:
        // an empty L1 directory.
        let l4e = PtEntry(mem.read_u64(PAddr(pt.root().0)));
        let l3e = PtEntry(mem.read_u64(l4e.addr()));
        let l2e = PtEntry(mem.read_u64(l3e.addr()));
        mem.write_u64(PAddr(l2e.addr().0 + 8), PtEntry::zero().0); // idx 1 = 0x1000.
        let err = check_structure(&mem, pt.root()).unwrap_err();
        assert!(err.contains("empty non-root"), "{err}");
    }

    #[test]
    fn sabotaged_cycle_is_caught() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        // Point a second PML4 slot at the root itself.
        let dir = PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER;
        mem.write_u64(
            PAddr(pt.root().0 + 8 * 5),
            PtEntry::new(pt.root(), dir).0,
        );
        let err = check_structure(&mem, pt.root()).unwrap_err();
        assert!(err.contains("reachable twice"), "{err}");
    }

    #[test]
    fn sabotaged_pml4_huge_bit_is_caught() {
        let (mut mem, mut alloc) = setup();
        let pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        let dir = PtFlags::PRESENT | PtFlags::HUGE;
        mem.write_u64(PAddr(pt.root().0), PtEntry::new(PAddr(0x8000), dir).0);
        let err = check_structure(&mem, pt.root()).unwrap_err();
        assert!(err.contains("PML4"), "{err}");
    }

    #[test]
    fn sabotaged_misaligned_huge_leaf_is_caught() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        pt.map_frame(
            &mut mem,
            &mut alloc,
            MapRequest {
                va: VAddr(0x20_0000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_rw(),
            },
        )
        .unwrap();
        // Overwrite the huge leaf with a 4 KiB-aligned (but not
        // 2 MiB-aligned) physical base.
        let l4e = PtEntry(mem.read_u64(PAddr(pt.root().0)));
        let l3e = PtEntry(mem.read_u64(l4e.addr()));
        let idx = VAddr(0x20_0000).pd_index() as u64;
        mem.write_u64(
            PAddr(l3e.addr().0 + 8 * idx),
            PtEntry::new(PAddr(0x41_1000), PtFlags::PRESENT | PtFlags::HUGE).0,
        );
        let err = check_structure(&mem, pt.root()).unwrap_err();
        assert!(err.contains("misaligned"), "{err}");
    }
}
