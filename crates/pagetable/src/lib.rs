//! The paper's page table prototype (Section 5), reproduced.
//!
//! Structure mirrors the paper's Figure 2 exactly:
//!
//! 1. **High-level specification** ([`high_spec`]): "a mathematical map
//!    from virtual addresses to page table entries storing the physical
//!    address and permission bits", with `map`/`unmap`/`resolve`
//!    transitions.
//! 2. **Prefix Tree Map** ([`prefix_tree`]): the intermediate layer of
//!    the refinement — a 4-level prefix tree of mathematical maps whose
//!    flattening is the high-level map.
//! 3. **Page table implementation + hardware specification**
//!    ([`impl_verified`] running on [`veros_hw`]): executable Rust that
//!    reads and writes page-table bits in simulated physical memory.
//!
//! Refinement is checked in [`refine`] (bounded differential refinement
//! against op sequences) and [`interp`] (the MMU's interpretation of the
//! in-memory bits equals the abstract view — "the lion's share of the
//! proof effort"). [`invariants`] checks structural well-formedness of
//! the in-memory tree. [`vcs`] assembles the full verification-condition
//! population behind Figure 1a.
//!
//! [`impl_unverified`] is the baseline for Figures 1b/1c: the NrOS-style
//! direct implementation with identical semantics and no ghost state.

pub mod high_spec;
pub mod impl_unverified;
pub mod impl_verified;
pub mod interp;
pub mod invariants;
pub mod ops;
pub mod prefix_tree;
pub mod refine;
pub mod vcs;

pub use high_spec::{AbsMapping, HighSpec};
pub use impl_unverified::UnverifiedPageTable;
pub use impl_verified::VerifiedPageTable;
pub use ops::{MapFlags, MapRequest, PageSize, PtError, PtOp, ResolveAnswer};
pub use prefix_tree::PrefixTree;

/// The common interface of both page-table implementations, so the
/// kernel's address space and the benchmarks can swap them.
pub trait PageTableOps {
    /// Maps `req.size` bytes at `req.va` to `req.pa`.
    fn map_frame(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        req: MapRequest,
    ) -> Result<(), PtError>;

    /// Unmaps the mapping whose base is exactly `va`, returning it.
    fn unmap_frame(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        va: veros_hw::VAddr,
    ) -> Result<AbsMapping, PtError>;

    /// Maps `pages` consecutive pages of `req.size`, starting at
    /// (`req.va`, `req.pa`), as one all-or-nothing operation.
    ///
    /// Semantically this *is* the loop below: page `i` is mapped exactly
    /// as `map_frame` would map `(va + i·size, pa + i·size)`, and on the
    /// first failure every page this call already mapped is unmapped
    /// again before the failing page's error is returned. The default
    /// body is that specification; implementations override it with an
    /// amortized version (one descent per level-1 table instead of one
    /// per page) that must stay observationally identical — the range
    /// verification conditions check exactly that.
    fn map_range(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        req: MapRequest,
        pages: u64,
    ) -> Result<(), PtError> {
        let step = req.size.bytes();
        if range_overflows(req.va.0, step, pages) {
            return Err(PtError::NonCanonical);
        }
        if range_overflows(req.pa.0, step, pages) {
            return Err(PtError::PhysOutOfRange);
        }
        for i in 0..pages {
            let page = MapRequest {
                va: veros_hw::VAddr(req.va.0 + i * step),
                pa: veros_hw::PAddr(req.pa.0 + i * step),
                ..req
            };
            if let Err(e) = self.map_frame(mem, alloc, page) {
                for j in (0..i).rev() {
                    let va = veros_hw::VAddr(req.va.0 + j * step);
                    let rolled = self.unmap_frame(mem, alloc, va);
                    debug_assert!(rolled.is_ok(), "map_range rollback failed at page {j}");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Unmaps `pages` consecutive 4 KiB page slots starting at `va`, as
    /// one all-or-nothing operation: slot `i` is unmapped exactly as
    /// `unmap_frame(va + i·4K)` would be, and on the first failure every
    /// mapping already removed is re-installed before the error is
    /// returned. On success, entry `i` of the result is the mapping that
    /// was based at `va + i·4K` (all removed mappings are 4 KiB except
    /// possibly the last: a larger mapping removed mid-range empties the
    /// following slots, which then fail with `NotMapped`).
    fn unmap_range(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        va: veros_hw::VAddr,
        pages: u64,
    ) -> Result<Vec<AbsMapping>, PtError> {
        if range_overflows(va.0, veros_hw::PAGE_4K, pages) {
            return Err(PtError::NonCanonical);
        }
        let mut removed: Vec<AbsMapping> = Vec::new();
        for i in 0..pages {
            let page_va = veros_hw::VAddr(va.0 + i * veros_hw::PAGE_4K);
            match self.unmap_frame(mem, alloc, page_va) {
                Ok(m) => removed.push(m),
                Err(e) => {
                    for (j, m) in removed.iter().enumerate().rev() {
                        let back = MapRequest {
                            va: veros_hw::VAddr(va.0 + j as u64 * veros_hw::PAGE_4K),
                            pa: veros_hw::PAddr(m.pa),
                            size: m.size,
                            flags: m.flags,
                        };
                        let rolled = self.map_frame(mem, alloc, back);
                        debug_assert!(rolled.is_ok(), "unmap_range rollback failed at slot {j}");
                    }
                    return Err(e);
                }
            }
        }
        Ok(removed)
    }

    /// Resolves an arbitrary virtual address to its physical translation.
    fn resolve(
        &self,
        mem: &veros_hw::PhysMem,
        va: veros_hw::VAddr,
    ) -> Result<ResolveAnswer, PtError>;

    /// The page-table root (CR3 value).
    fn root(&self) -> veros_hw::PAddr;
}

/// True when `base + pages * step` (the end of a range operation)
/// overflows. The range-op defaults and the amortized overrides both
/// reject such ranges up-front so they agree on every input.
pub(crate) fn range_overflows(base: u64, step: u64, pages: u64) -> bool {
    step.checked_mul(pages)
        .and_then(|span| base.checked_add(span))
        .is_none()
}
