//! The paper's page table prototype (Section 5), reproduced.
//!
//! Structure mirrors the paper's Figure 2 exactly:
//!
//! 1. **High-level specification** ([`high_spec`]): "a mathematical map
//!    from virtual addresses to page table entries storing the physical
//!    address and permission bits", with `map`/`unmap`/`resolve`
//!    transitions.
//! 2. **Prefix Tree Map** ([`prefix_tree`]): the intermediate layer of
//!    the refinement — a 4-level prefix tree of mathematical maps whose
//!    flattening is the high-level map.
//! 3. **Page table implementation + hardware specification**
//!    ([`impl_verified`] running on [`veros_hw`]): executable Rust that
//!    reads and writes page-table bits in simulated physical memory.
//!
//! Refinement is checked in [`refine`] (bounded differential refinement
//! against op sequences) and [`interp`] (the MMU's interpretation of the
//! in-memory bits equals the abstract view — "the lion's share of the
//! proof effort"). [`invariants`] checks structural well-formedness of
//! the in-memory tree. [`vcs`] assembles the full verification-condition
//! population behind Figure 1a.
//!
//! [`impl_unverified`] is the baseline for Figures 1b/1c: the NrOS-style
//! direct implementation with identical semantics and no ghost state.

pub mod high_spec;
pub mod impl_unverified;
pub mod impl_verified;
pub mod interp;
pub mod invariants;
pub mod ops;
pub mod prefix_tree;
pub mod refine;
pub mod vcs;

pub use high_spec::{AbsMapping, HighSpec};
pub use impl_unverified::UnverifiedPageTable;
pub use impl_verified::VerifiedPageTable;
pub use ops::{MapFlags, MapRequest, PageSize, PtError, PtOp, ResolveAnswer};
pub use prefix_tree::PrefixTree;

/// The common interface of both page-table implementations, so the
/// kernel's address space and the benchmarks can swap them.
pub trait PageTableOps {
    /// Maps `req.size` bytes at `req.va` to `req.pa`.
    fn map_frame(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        req: MapRequest,
    ) -> Result<(), PtError>;

    /// Unmaps the mapping whose base is exactly `va`, returning it.
    fn unmap_frame(
        &mut self,
        mem: &mut veros_hw::PhysMem,
        alloc: &mut dyn veros_hw::FrameSource,
        va: veros_hw::VAddr,
    ) -> Result<AbsMapping, PtError>;

    /// Resolves an arbitrary virtual address to its physical translation.
    fn resolve(
        &self,
        mem: &veros_hw::PhysMem,
        va: veros_hw::VAddr,
    ) -> Result<ResolveAnswer, PtError>;

    /// The page-table root (CR3 value).
    fn root(&self) -> veros_hw::PAddr;
}
