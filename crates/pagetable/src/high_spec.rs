//! The high-level specification (layer 2 of the paper's Figure 2).
//!
//! "The spec describes the page table as a mathematical map from virtual
//! addresses to page table entries storing the physical address and
//! permission bits" with "transitions for memory reads and writes as well
//! as map, unmap and resolve" (Section 5). This module is that map,
//! executable: [`HighSpec`] holds the mathematical map and applies the
//! three operations with their full preconditions; [`HighSpecMachine`]
//! wraps it as a finite [`StateMachine`] for exploration-based
//! verification conditions.

use std::collections::BTreeMap;

use veros_spec::StateMachine;

use veros_hw::{VAddr, PAGE_4K};

use crate::ops::{MapFlags, MapRequest, PageSize, PtError, PtOp, ResolveAnswer};

/// One abstract mapping: the "page table entry" of the mathematical map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbsMapping {
    /// Physical base address.
    pub pa: u64,
    /// Page size.
    pub size: PageSize,
    /// Permissions.
    pub flags: MapFlags,
}

/// The abstract state: a map from virtual base addresses to mappings.
pub type AbsMap = BTreeMap<u64, AbsMapping>;

/// The high-level page-table specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HighSpec {
    /// The mathematical map.
    pub map: AbsMap,
}

impl HighSpec {
    /// An empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The precondition of `map`: canonical, aligned, no overlap.
    ///
    /// This is the transition guard of the spec state machine; the
    /// implementation must fail with exactly this error when it does not
    /// hold.
    pub fn map_precondition(&self, req: &MapRequest) -> Result<(), PtError> {
        if !req.va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !req.va.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedVa);
        }
        if !req.pa.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedPa);
        }
        if self.overlaps(req.va.0, req.size.bytes()) {
            return Err(PtError::AlreadyMapped);
        }
        Ok(())
    }

    /// True when `[va, va+len)` intersects any existing mapping.
    pub fn overlaps(&self, va: u64, len: u64) -> bool {
        // A mapping (b, m) overlaps iff b < va+len and va < b+m.size.
        // Only mappings with base below va+len can qualify; the largest
        // page is 1 GiB, so scanning the range below is cheap via the
        // ordered map: check the closest mapping at or below va, plus all
        // mappings inside [va, va+len).
        if let Some((b, m)) = self.map.range(..=va).next_back() {
            if va < b + m.size.bytes() {
                return true;
            }
        }
        self.map.range(va..va.saturating_add(len)).next().is_some()
    }

    /// The `map` transition. On success the map gains exactly one entry.
    pub fn apply_map(&mut self, req: &MapRequest) -> Result<(), PtError> {
        self.map_precondition(req)?;
        self.map.insert(
            req.va.0,
            AbsMapping {
                pa: req.pa.0,
                size: req.size,
                flags: req.flags,
            },
        );
        Ok(())
    }

    /// The `unmap` transition: removes the mapping based exactly at `va`,
    /// returning it.
    pub fn apply_unmap(&mut self, va: VAddr) -> Result<AbsMapping, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !va.is_aligned(PAGE_4K) {
            return Err(PtError::MisalignedVa);
        }
        self.map.remove(&va.0).ok_or(PtError::NotMapped)
    }

    /// The `resolve` transition (read-only): the translation of an
    /// arbitrary canonical address.
    pub fn resolve(&self, va: VAddr) -> Result<ResolveAnswer, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        match self.map.range(..=va.0).next_back() {
            Some((b, m)) if va.0 < b + m.size.bytes() => Ok(ResolveAnswer {
                pa: veros_hw::PAddr(m.pa + (va.0 - b)),
                base: VAddr(*b),
                size: m.size,
                flags: m.flags,
            }),
            _ => Err(PtError::NotMapped),
        }
    }

    /// Applies any [`PtOp`], returning its observable result.
    pub fn apply(&mut self, op: &PtOp) -> Result<Option<ResolveAnswer>, PtError> {
        match op {
            PtOp::Map(req) => self.apply_map(req).map(|()| None),
            PtOp::Unmap(va) => self.apply_unmap(*va).map(|m| {
                Some(ResolveAnswer {
                    pa: veros_hw::PAddr(m.pa),
                    base: *va,
                    size: m.size,
                    flags: m.flags,
                })
            }),
            PtOp::Resolve(va) => self.resolve(*va).map(Some),
        }
    }

    /// Spec-level invariant: no two mappings overlap, all are aligned and
    /// canonical. Holds inductively; checked explicitly by a VC.
    pub fn wf(&self) -> bool {
        let mut prev_end = 0u64;
        for (b, m) in &self.map {
            if !VAddr(*b).is_canonical() || !VAddr(*b).is_aligned(m.size.bytes()) {
                return false;
            }
            if m.pa % m.size.bytes() != 0 {
                return false;
            }
            if *b < prev_end {
                return false;
            }
            prev_end = b + m.size.bytes();
        }
        true
    }
}

/// A finitized instance of the high-level spec as a [`StateMachine`], for
/// bounded-exhaustive invariant VCs.
///
/// The universe is a small set of candidate map requests and unmap/resolve
/// targets; the reachable states are all maps constructible from them.
pub struct HighSpecMachine {
    /// The candidate operations.
    pub universe: Vec<PtOp>,
}

impl HighSpecMachine {
    /// A default universe: three 4 KiB pages and one 2 MiB page with
    /// overlapping ranges, exercising every precondition.
    pub fn small() -> Self {
        let reqs = [
            MapRequest::rw_4k(0x1000, 0x8000),
            MapRequest::rw_4k(0x2000, 0x9000),
            MapRequest {
                va: VAddr(0x20_0000),
                pa: veros_hw::PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_ro(),
            },
            // Deliberately inside the 2 MiB page: must conflict once the
            // huge page is mapped.
            MapRequest::rw_4k(0x20_1000, 0xa000),
        ];
        let mut universe: Vec<PtOp> = reqs.into_iter().map(PtOp::Map).collect();
        for va in [0x1000u64, 0x2000, 0x20_0000, 0x20_1000] {
            universe.push(PtOp::Unmap(VAddr(va)));
        }
        Self { universe }
    }
}

impl StateMachine for HighSpecMachine {
    type State = HighSpec;
    type Action = PtOp;

    fn init_states(&self) -> Vec<HighSpec> {
        vec![HighSpec::new()]
    }

    fn actions(&self, state: &HighSpec) -> Vec<PtOp> {
        // Only *enabled* ops (whose spec transition succeeds); failed ops
        // do not change state and need not be explored.
        self.universe
            .iter()
            .filter(|op| {
                let mut s = state.clone();
                s.apply(op).is_ok()
            })
            .copied()
            .collect()
    }

    fn step(&self, state: &HighSpec, action: &PtOp) -> Option<HighSpec> {
        let mut s = state.clone();
        s.apply(action).ok().map(|_| s)
    }
}

// `HighSpec` participates in exploration, which requires `Hash`.
impl std::hash::Hash for HighSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for (k, v) in &self.map {
            k.hash(state);
            v.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_hw::PAddr;
    use veros_spec::explorer::{prove_invariant, ExploreLimits};

    #[test]
    fn map_then_resolve_translates_with_offset() {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest::rw_4k(0x1000, 0x8000)).unwrap();
        let r = s.resolve(VAddr(0x1abc)).unwrap();
        assert_eq!(r.pa, PAddr(0x8abc));
        assert_eq!(r.base, VAddr(0x1000));
        assert_eq!(r.size, PageSize::Size4K);
    }

    #[test]
    fn resolve_inside_huge_page() {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest {
            va: VAddr(0x4000_0000),
            pa: PAddr(0x8000_0000),
            size: PageSize::Size1G,
            flags: MapFlags::user_rw(),
        })
        .unwrap();
        let r = s.resolve(VAddr(0x4123_4567)).unwrap();
        assert_eq!(r.pa, PAddr(0x8123_4567));
        assert_eq!(r.size, PageSize::Size1G);
    }

    #[test]
    fn overlap_detection_both_directions() {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_rw(),
        })
        .unwrap();
        // New page inside existing huge page.
        assert_eq!(
            s.apply_map(&MapRequest::rw_4k(0x20_1000, 0x1000)),
            Err(PtError::AlreadyMapped)
        );
        // New huge page covering an existing small page.
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest::rw_4k(0x20_1000, 0x1000)).unwrap();
        assert_eq!(
            s.apply_map(&MapRequest {
                va: VAddr(0x20_0000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_rw(),
            }),
            Err(PtError::AlreadyMapped)
        );
        // Exact duplicate.
        assert_eq!(
            s.apply_map(&MapRequest::rw_4k(0x20_1000, 0x7000)),
            Err(PtError::AlreadyMapped)
        );
    }

    #[test]
    fn adjacent_mappings_do_not_conflict() {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest::rw_4k(0x1000, 0x8000)).unwrap();
        s.apply_map(&MapRequest::rw_4k(0x2000, 0x9000)).unwrap();
        assert_eq!(s.map.len(), 2);
    }

    #[test]
    fn alignment_and_canonicality_preconditions() {
        let mut s = HighSpec::new();
        assert_eq!(
            s.apply_map(&MapRequest::rw_4k(0x1001, 0x8000)),
            Err(PtError::MisalignedVa)
        );
        assert_eq!(
            s.apply_map(&MapRequest::rw_4k(0x1000, 0x8001)),
            Err(PtError::MisalignedPa)
        );
        assert_eq!(
            s.apply_map(&MapRequest::rw_4k(0x0000_8000_0000_0000, 0x8000)),
            Err(PtError::NonCanonical)
        );
        // 2 MiB alignment required for 2 MiB pages.
        assert_eq!(
            s.apply_map(&MapRequest {
                va: VAddr(0x1000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_rw(),
            }),
            Err(PtError::MisalignedVa)
        );
    }

    #[test]
    fn unmap_requires_exact_base() {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_rw(),
        })
        .unwrap();
        // Inside but not the base: NotMapped.
        assert_eq!(s.apply_unmap(VAddr(0x20_1000)), Err(PtError::NotMapped));
        let m = s.apply_unmap(VAddr(0x20_0000)).unwrap();
        assert_eq!(m.pa, 0x40_0000);
        assert!(s.map.is_empty());
    }

    #[test]
    fn resolve_unmapped_fails() {
        let s = HighSpec::new();
        assert_eq!(s.resolve(VAddr(0x1000)), Err(PtError::NotMapped));
    }

    #[test]
    fn wf_holds_on_all_reachable_small_states() {
        prove_invariant(HighSpecMachine::small(), ExploreLimits::default(), |s| {
            s.wf()
        })
        .unwrap();
    }

    #[test]
    fn exploration_is_complete_for_small_universe() {
        let e = veros_spec::Explorer::unbounded(HighSpecMachine::small());
        match e.check_invariant(|_| true) {
            veros_spec::ExploreOutcome::Ok(stats) => {
                assert!(stats.complete);
                // 3 independent 4 KiB pages + the huge page that excludes
                // one of them: strictly fewer than 2^4 subsets.
                assert!(stats.states > 4 && stats.states < 16, "{stats:?}");
            }
            _ => panic!(),
        }
    }
}
