//! The verification-condition population of the page-table prototype.
//!
//! The paper's Figure 1a plots the CDF of "all 220 verification
//! conditions" of the prototype, all individually discharged in ≤ 11 s
//! with a total of ≈ 40 s. This module registers the corresponding 220
//! obligations of this reproduction with the [`veros_spec::VcEngine`]:
//! encoding round-trips, spec invariants, forward simulation, bounded and
//! randomized differential refinement, interpretation and structure
//! audits, TLB coherence, baseline equivalence, and frame accounting.
//!
//! Two profiles exist: [`Profile::Paper`] sizes the checks for the
//! Figure 1a reproduction (run in release mode by `veros-bench`'s `fig1a`
//! binary); [`Profile::Quick`] shrinks iteration counts so the whole
//! population can run inside `cargo test`.

use veros_hw::{PAddr, StackFrameSource, VAddr, PAGE_4K};
use veros_spec::explorer::{prove_invariant, ExploreLimits};
use veros_spec::rng::SpecRng;
use veros_spec::{check_refinement, VcEngine, VcKind};

use crate::high_spec::{HighSpec, HighSpecMachine};
use crate::impl_verified::{decode_leaf, encode_leaf};
use crate::ops::{MapFlags, MapRequest, PageSize, PtError, PtOp};
use crate::prefix_tree::{PrefixTree, PrefixTreeMachine, TreeToFlat};
use crate::refine::{
    differential_vs_spec, randomized_audit, randomized_vs_spec, Impl, OpUniverse,
};
use crate::{PageTableOps, UnverifiedPageTable, VerifiedPageTable};

/// Sizing profile for the VC population.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Small iteration counts: the whole population runs in a few
    /// seconds under `cargo test` (debug profile).
    Quick,
    /// Paper-scale iteration counts for the Figure 1a reproduction
    /// (release build).
    Paper,
}

struct Params {
    encode_iters: u64,
    random_steps: usize,
    interp_steps: usize,
    structure_steps: usize,
    tlb_steps: usize,
    tree_random_steps: usize,
    bounded_depth_rich: usize,
    bounded_depth_small: usize,
    accounting_rounds: usize,
    probe_count: usize,
}

impl Profile {
    fn params(self) -> Params {
        match self {
            Profile::Quick => Params {
                encode_iters: 200,
                random_steps: 60,
                interp_steps: 30,
                structure_steps: 30,
                tlb_steps: 20,
                tree_random_steps: 100,
                bounded_depth_rich: 1,
                bounded_depth_small: 2,
                accounting_rounds: 3,
                probe_count: 50,
            },
            Profile::Paper => Params {
                encode_iters: 4_000_000,
                random_steps: 15_000,
                interp_steps: 8_000,
                structure_steps: 12_000,
                tlb_steps: 15_000,
                tree_random_steps: 400_000,
                bounded_depth_rich: 3,
                bounded_depth_small: 6,
                accounting_rounds: 200,
                probe_count: 80_000,
            },
        }
    }
}

const MODULE: &str = "pagetable";

/// Registers the full VC population (220 obligations) with `engine`.
pub fn register_all(engine: &mut VcEngine, profile: Profile) {
    let p = profile.params();
    register_encoding(engine, &p); // 24
    register_high_spec(engine, &p); // 9
    register_prefix_tree(engine, &p); // 14
    register_scenarios(engine); // 36
    register_bounded(engine, &p); // 6
    register_randomized(engine, &p); // 60
    register_interpretation(engine, &p); // 16
    register_structure(engine, &p); // 8
    register_tlb(engine, &p); // 13
    register_equivalence(engine, &p); // 8
    register_accounting(engine, &p); // 8
    register_view(engine, &p); // 8
    register_probes(engine, &p); // 10
}

/// The number of VCs [`register_all`] registers, matching the paper's
/// population size.
pub const VC_COUNT: usize = 220;

// --- encoding (24) -------------------------------------------------------

fn flag_tag(f: MapFlags) -> String {
    format!(
        "{}{}{}",
        if f.writable { "w" } else { "-" },
        if f.user { "u" } else { "-" },
        if f.nx { "x" } else { "-" }
    )
}

fn register_encoding(engine: &mut VcEngine, p: &Params) {
    for flags in MapFlags::all_combinations() {
        for size in PageSize::all() {
            let iters = p.encode_iters;
            let name = format!("encode::roundtrip_{}_{:?}", flag_tag(flags), size);
            engine.register(MODULE, VcKind::Property, name.clone(), move || {
                let mut rng = SpecRng::for_obligation(&name);
                for _ in 0..iters {
                    let pa = PAddr(((rng.below(1 << 30)) * size.bytes()) & 0x000f_ffff_ffff_f000);
                    let pa = PAddr(pa.0 & !(size.bytes() - 1));
                    let e = encode_leaf(pa, size, flags);
                    if !e.is_present() {
                        return Err(format!("{e:?} not present"));
                    }
                    if e.addr() != pa {
                        return Err(format!("address corrupted: {pa} -> {:?}", e.addr()));
                    }
                    if decode_leaf(e) != flags {
                        return Err(format!("flags corrupted: {flags:?} -> {:?}", decode_leaf(e)));
                    }
                    if (size.leaf_level() > 1) != e.is_huge() {
                        return Err("huge bit wrong".into());
                    }
                }
                Ok(())
            });
        }
    }
}

// --- high-level spec (9) -------------------------------------------------

fn universes() -> Vec<(&'static str, Vec<PtOp>)> {
    let base = HighSpecMachine::small().universe;
    // Variant with a 1 GiB page and a high-half mapping.
    let mut big = base.clone();
    big.push(PtOp::Map(MapRequest {
        va: VAddr(0x4000_0000),
        pa: PAddr(0x8000_0000),
        size: PageSize::Size1G,
        flags: MapFlags::kernel_rw(),
    }));
    big.push(PtOp::Unmap(VAddr(0x4000_0000)));
    let mut high = base.clone();
    high.push(PtOp::Map(MapRequest {
        va: VAddr(0xffff_8000_0000_0000),
        pa: PAddr(0xb000),
        size: PageSize::Size4K,
        flags: MapFlags::kernel_rw(),
    }));
    high.push(PtOp::Unmap(VAddr(0xffff_8000_0000_0000)));
    vec![("small", base), ("sizes", big), ("highhalf", high)]
}

fn register_high_spec(engine: &mut VcEngine, _p: &Params) {
    for (tag, universe) in universes() {
        engine.register(
            MODULE,
            VcKind::Invariant,
            format!("high_spec::wf_reachable_{tag}"),
            move || {
                prove_invariant(
                    HighSpecMachine { universe },
                    ExploreLimits::default(),
                    |s| s.wf(),
                )
                .map(|_| ())
            },
        );
    }
    // Precondition properties, each its own obligation.
    engine.register(MODULE, VcKind::Property, "high_spec::pre_noncanonical", || {
        let mut s = HighSpec::new();
        match s.apply_map(&MapRequest::rw_4k(0x0000_8000_0000_0000, 0)) {
            Err(PtError::NonCanonical) => Ok(()),
            other => Err(format!("{other:?}")),
        }
    });
    engine.register(MODULE, VcKind::Property, "high_spec::pre_misaligned_va", || {
        let mut s = HighSpec::new();
        for size in PageSize::all() {
            let r = s.apply_map(&MapRequest {
                va: VAddr(size.bytes() / 2),
                pa: PAddr(0),
                size,
                flags: MapFlags::user_rw(),
            });
            if r != Err(PtError::MisalignedVa) {
                return Err(format!("{size:?}: {r:?}"));
            }
        }
        Ok(())
    });
    engine.register(MODULE, VcKind::Property, "high_spec::pre_misaligned_pa", || {
        let mut s = HighSpec::new();
        for size in [PageSize::Size2M, PageSize::Size1G] {
            let r = s.apply_map(&MapRequest {
                va: VAddr(0),
                pa: PAddr(PAGE_4K),
                size,
                flags: MapFlags::user_rw(),
            });
            if r != Err(PtError::MisalignedPa) {
                return Err(format!("{size:?}: {r:?}"));
            }
        }
        Ok(())
    });
    engine.register(MODULE, VcKind::Property, "high_spec::overlap_symmetric", || {
        // Overlap is detected regardless of which mapping came first.
        let first = MapRequest::rw_4k(0x20_1000, 0x1000);
        let second = MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_rw(),
        };
        let mut s = HighSpec::new();
        s.apply_map(&first).map_err(|e| e.to_string())?;
        if s.apply_map(&second) != Err(PtError::AlreadyMapped) {
            return Err("small-then-huge overlap missed".into());
        }
        let mut s = HighSpec::new();
        s.apply_map(&second).map_err(|e| e.to_string())?;
        if s.apply_map(&first) != Err(PtError::AlreadyMapped) {
            return Err("huge-then-small overlap missed".into());
        }
        Ok(())
    });
    engine.register(MODULE, VcKind::Property, "high_spec::adjacent_no_overlap", || {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest::rw_4k(0x1000, 0x8000)).map_err(|e| e.to_string())?;
        s.apply_map(&MapRequest::rw_4k(0x2000, 0x9000)).map_err(|e| e.to_string())?;
        s.apply_map(&MapRequest::rw_4k(0x0, 0xa000)).map_err(|e| e.to_string())?;
        Ok(())
    });
    engine.register(MODULE, VcKind::Property, "high_spec::unmap_exact_base_only", || {
        let mut s = HighSpec::new();
        s.apply_map(&MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_rw(),
        })
        .map_err(|e| e.to_string())?;
        if s.apply_unmap(VAddr(0x20_1000)) != Err(PtError::NotMapped) {
            return Err("interior unmap accepted".into());
        }
        s.apply_unmap(VAddr(0x20_0000)).map_err(|e| e.to_string())?;
        Ok(())
    });
}

// --- prefix tree layer (14) ----------------------------------------------

fn register_prefix_tree(engine: &mut VcEngine, p: &Params) {
    for (tag, universe) in universes() {
        let u2 = universe.clone();
        engine.register(
            MODULE,
            VcKind::Invariant,
            format!("prefix_tree::wf_reachable_{tag}"),
            move || {
                prove_invariant(
                    PrefixTreeMachine { universe },
                    ExploreLimits::default(),
                    |t| t.wf(),
                )
                .map(|_| ())
            },
        );
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("prefix_tree::forward_simulation_{tag}"),
            move || {
                check_refinement(
                    &TreeToFlat,
                    PrefixTreeMachine { universe: u2.clone() },
                    &HighSpecMachine { universe: u2 },
                    ExploreLimits::default(),
                )
                .map(|_| ())
                .map_err(|e| e.to_string())
            },
        );
    }
    // Randomized long-run tree-vs-flat differential, 8 seeds. The op
    // stream draws from the full `PtOp` surface; veros-lint's
    // obligation-coverage check cross-references this list.
    // covers: PtOp::Map, PtOp::Unmap, PtOp::Resolve
    for seed in 0..8u64 {
        let steps = p.tree_random_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("prefix_tree::random_differential_s{seed}"),
            move || tree_random_differential(seed, steps),
        );
    }
}

/// Long random op stream applied to both the prefix tree and the flat
/// spec; checks result equality, flatten equality, and wf throughout.
fn tree_random_differential(seed: u64, steps: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0x7ee);
    let mut tree = PrefixTree::new();
    let mut flat = HighSpec::new();
    let vas: Vec<u64> = (0..16)
        .map(|i| VAddr::from_indices([0, 1, 300][i % 3], (i * 11) % 512, (i * 3) % 512, i % 512).0)
        .collect();
    for step in 0..steps {
        let op = match rng.below(3) {
            0 => {
                let size = *rng.choose(&PageSize::all());
                let va = rng.choose(&vas) & !(size.bytes() - 1);
                PtOp::Map(MapRequest {
                    va: VAddr(va),
                    pa: PAddr((rng.below(1 << 20) * size.bytes()) & !(size.bytes() - 1)),
                    size,
                    flags: *rng.choose(&MapFlags::all_combinations()),
                })
            }
            1 => PtOp::Unmap(VAddr(rng.choose(&vas) & !(PAGE_4K - 1))),
            _ => PtOp::Resolve(VAddr(rng.choose(&vas) + rng.below(PAGE_4K))),
        };
        let a = tree.apply(&op);
        let b = flat.apply(&op);
        if a != b {
            return Err(format!("seed {seed} step {step}: {op:?} -> tree {a:?}, flat {b:?}"));
        }
        if !tree.wf() {
            return Err(format!("seed {seed} step {step}: tree not wf"));
        }
    }
    if tree.flatten() != flat.map {
        return Err(format!("seed {seed}: flatten mismatch after {steps} steps"));
    }
    Ok(())
}

// --- hand-written scenarios (36 = 18 x 2 impls) ---------------------------

type Scenario = fn(&mut dyn PageTableOps, &mut veros_hw::PhysMem, &mut StackFrameSource) -> Result<(), String>;

fn scenarios() -> Vec<(&'static str, Scenario)> {
    fn ok(r: Result<(), PtError>) -> Result<(), String> {
        r.map_err(|e| e.to_string())
    }
    vec![
        ("map_first_page", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            expect_pa(pt, mem, 0x1000, 0x8000)
        }),
        ("map_va_zero", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0, 0x8000)))?;
            expect_pa(pt, mem, 0x123, 0x8123)
        }),
        ("map_index_511_all_levels", |pt, mem, alloc| {
            let va = VAddr::from_indices(255, 511, 511, 511);
            ok(pt.map_frame(mem, alloc, MapRequest { va, pa: PAddr(0x8000), size: PageSize::Size4K, flags: MapFlags::user_rw() }))?;
            expect_pa(pt, mem, va.0, 0x8000)
        }),
        ("map_high_half", |pt, mem, alloc| {
            let va = VAddr(0xffff_8000_0000_0000);
            ok(pt.map_frame(mem, alloc, MapRequest { va, pa: PAddr(0x8000), size: PageSize::Size4K, flags: MapFlags::kernel_rw() }))?;
            expect_pa(pt, mem, va.0 + 7, 0x8007)
        }),
        ("map_duplicate_fails", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            expect_err(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x9000)), PtError::AlreadyMapped)
        }),
        ("map_2m_then_4k_inside_fails", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x20_0000), pa: PAddr(0x40_0000), size: PageSize::Size2M, flags: MapFlags::user_rw() }))?;
            expect_err(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x20_1000, 0x1000)), PtError::AlreadyMapped)
        }),
        ("map_4k_then_2m_over_fails", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x20_1000, 0x1000)))?;
            expect_err(
                pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x20_0000), pa: PAddr(0x40_0000), size: PageSize::Size2M, flags: MapFlags::user_rw() }),
                PtError::AlreadyMapped,
            )
        }),
        ("map_1g_round_trip", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x4000_0000), pa: PAddr(0x8000_0000), size: PageSize::Size1G, flags: MapFlags::user_ro() }))?;
            expect_pa(pt, mem, 0x4123_4567, 0x8123_4567)?;
            pt.unmap_frame(mem, alloc, VAddr(0x4000_0000)).map_err(|e| e.to_string())?;
            expect_err_resolve(pt, mem, 0x4123_4567, PtError::NotMapped)
        }),
        ("unmap_returns_mapping", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            let m = pt.unmap_frame(mem, alloc, VAddr(0x1000)).map_err(|e| e.to_string())?;
            if m.pa != 0x8000 || m.size != PageSize::Size4K {
                return Err(format!("wrong mapping returned: {m:?}"));
            }
            Ok(())
        }),
        ("unmap_unmapped_fails", |pt, mem, alloc| {
            expect_err_abs(pt.unmap_frame(mem, alloc, VAddr(0x1000)), PtError::NotMapped)
        }),
        ("unmap_interior_of_huge_fails", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x20_0000), pa: PAddr(0x40_0000), size: PageSize::Size2M, flags: MapFlags::user_rw() }))?;
            expect_err_abs(pt.unmap_frame(mem, alloc, VAddr(0x20_1000)), PtError::NotMapped)
        }),
        ("remap_after_unmap", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            pt.unmap_frame(mem, alloc, VAddr(0x1000)).map_err(|e| e.to_string())?;
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x9000)))?;
            expect_pa(pt, mem, 0x1000, 0x9000)
        }),
        ("sibling_survives_unmap", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x2000, 0x9000)))?;
            pt.unmap_frame(mem, alloc, VAddr(0x1000)).map_err(|e| e.to_string())?;
            expect_pa(pt, mem, 0x2000, 0x9000)
        }),
        ("directories_freed_on_last_unmap", |pt, mem, alloc| {
            let before = alloc.free_frames();
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            pt.unmap_frame(mem, alloc, VAddr(0x1000)).map_err(|e| e.to_string())?;
            if alloc.free_frames() != before {
                return Err(format!("leaked {} frames", before - alloc.free_frames()));
            }
            Ok(())
        }),
        ("oom_leaves_table_unchanged", |pt, mem, _alloc| {
            let mut tiny = StackFrameSource::new(PAddr(600 * PAGE_4K), PAddr(601 * PAGE_4K));
            expect_err(
                pt.map_frame(mem, &mut tiny, MapRequest::rw_4k(0x1000, 0x8000)),
                PtError::OutOfMemory,
            )?;
            if tiny.free_frames() != 1 {
                return Err("rollback leaked a frame".into());
            }
            expect_err_resolve(pt, mem, 0x1000, PtError::NotMapped)
        }),
        ("resolve_permissions_propagate", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x1000), pa: PAddr(0x8000), size: PageSize::Size4K, flags: MapFlags::user_ro() }))?;
            let r = pt.resolve(mem, VAddr(0x1000)).map_err(|e| e.to_string())?;
            if r.flags != MapFlags::user_ro() {
                return Err(format!("flags {:?}", r.flags));
            }
            Ok(())
        }),
        ("resolve_noncanonical_fails", |pt, mem, _alloc| {
            expect_err_resolve_raw(pt.resolve(mem, VAddr(0x0000_8000_0000_0000)), PtError::NonCanonical)
        }),
        ("mixed_sizes_coexist", |pt, mem, alloc| {
            ok(pt.map_frame(mem, alloc, MapRequest::rw_4k(0x1000, 0x8000)))?;
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x20_0000), pa: PAddr(0x40_0000), size: PageSize::Size2M, flags: MapFlags::user_rw() }))?;
            ok(pt.map_frame(mem, alloc, MapRequest { va: VAddr(0x4000_0000), pa: PAddr(0x8000_0000), size: PageSize::Size1G, flags: MapFlags::user_rw() }))?;
            expect_pa(pt, mem, 0x1000, 0x8000)?;
            expect_pa(pt, mem, 0x20_0040, 0x40_0040)?;
            expect_pa(pt, mem, 0x4000_0040, 0x8000_0040)
        }),
    ]
}

fn expect_pa(pt: &dyn PageTableOps, mem: &veros_hw::PhysMem, va: u64, pa: u64) -> Result<(), String> {
    let r = pt.resolve(mem, VAddr(va)).map_err(|e| e.to_string())?;
    if r.pa != PAddr(pa) {
        return Err(format!("resolve({va:#x}) = {}, expected {pa:#x}", r.pa));
    }
    // The MMU must agree.
    let m = veros_hw::walk(mem, pt.root(), VAddr(va)).map_err(|e| format!("{e:?}"))?;
    if m.translate(VAddr(va)) != PAddr(pa) {
        return Err(format!("MMU walk disagrees at {va:#x}"));
    }
    Ok(())
}

fn expect_err(r: Result<(), PtError>, want: PtError) -> Result<(), String> {
    match r {
        Err(e) if e == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn expect_err_abs(r: Result<crate::high_spec::AbsMapping, PtError>, want: PtError) -> Result<(), String> {
    match r {
        Err(e) if e == want => Ok(()),
        Ok(m) => Err(format!("expected {want:?}, got Ok({m:?})")),
        Err(e) => Err(format!("expected {want:?}, got {e:?}")),
    }
}

fn expect_err_resolve(pt: &dyn PageTableOps, mem: &veros_hw::PhysMem, va: u64, want: PtError) -> Result<(), String> {
    expect_err_resolve_raw(pt.resolve(mem, VAddr(va)), want)
}

fn expect_err_resolve_raw(r: Result<crate::ops::ResolveAnswer, PtError>, want: PtError) -> Result<(), String> {
    match r {
        Err(e) if e == want => Ok(()),
        Ok(a) => Err(format!("expected {want:?}, got Ok({a:?})")),
        Err(e) => Err(format!("expected {want:?}, got {e:?}")),
    }
}

fn register_scenarios(engine: &mut VcEngine) {
    for which in [Impl::Verified, Impl::Unverified] {
        for (name, scenario) in scenarios() {
            let tag = match which {
                Impl::Verified => "verified",
                Impl::Unverified => "unverified",
            };
            // covers: verified::*, unverified::*
            engine.register(
                MODULE,
                VcKind::Property,
                format!("{tag}::{name}"),
                move || {
                    let mut mem = veros_hw::PhysMem::new(1024);
                    let mut alloc =
                        StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(512 * PAGE_4K));
                    match which {
                        Impl::Verified => {
                            let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true)
                                .map_err(|e| e.to_string())?;
                            scenario(&mut pt, &mut mem, &mut alloc)?;
                            crate::invariants::check_structure(&mem, pt.root())
                                .map(|_| ())
                                .map_err(|e| format!("structure after scenario: {e}"))
                        }
                        Impl::Unverified => {
                            let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc)
                                .map_err(|e| e.to_string())?;
                            scenario(&mut pt, &mut mem, &mut alloc)?;
                            crate::invariants::check_structure(&mem, pt.root())
                                .map(|_| ())
                                .map_err(|e| format!("structure after scenario: {e}"))
                        }
                    }
                },
            );
        }
    }
}

// --- bounded differential (6) ---------------------------------------------

fn register_bounded(engine: &mut VcEngine, p: &Params) {
    for which in [Impl::Verified, Impl::Unverified] {
        let tag = match which {
            Impl::Verified => "verified",
            Impl::Unverified => "unverified",
        };
        let d = p.bounded_depth_rich;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("{tag}::bounded_rich_depth{d}_interp"),
            move || differential_vs_spec(which, &OpUniverse::rich(), d, true).map(|_| ()),
        );
        let d = p.bounded_depth_small;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("{tag}::bounded_small_depth{d}"),
            move || differential_vs_spec(which, &OpUniverse::small(), d, false).map(|_| ()),
        );
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("{tag}::bounded_small_depth2_interp"),
            move || differential_vs_spec(which, &OpUniverse::small(), 2, true).map(|_| ()),
        );
    }
}

// --- randomized differential (60) ------------------------------------------

fn register_randomized(engine: &mut VcEngine, p: &Params) {
    for seed in 0..40u64 {
        let steps = p.random_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("verified::random_differential_s{seed}"),
            move || randomized_vs_spec(Impl::Verified, seed, steps).map(|_| ()),
        );
    }
    for seed in 0..20u64 {
        let steps = p.random_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("unverified::random_differential_s{seed}"),
            move || randomized_vs_spec(Impl::Unverified, seed, steps).map(|_| ()),
        );
    }
}

// --- interpretation audits (16) --------------------------------------------

fn register_interpretation(engine: &mut VcEngine, p: &Params) {
    for seed in 0..16u64 {
        let steps = p.interp_steps;
        engine.register(
            MODULE,
            VcKind::Interpretation,
            format!("verified::interp_every_step_s{seed}"),
            move || randomized_audit(Impl::Verified, seed + 100, steps, 1, 0).map(|_| ()),
        );
    }
}

// --- structure audits (8) ---------------------------------------------------

fn register_structure(engine: &mut VcEngine, p: &Params) {
    for seed in 0..8u64 {
        let steps = p.structure_steps;
        engine.register(
            MODULE,
            VcKind::Invariant,
            format!("verified::structure_every_step_s{seed}"),
            move || randomized_audit(Impl::Verified, seed + 200, steps, 0, 1).map(|_| ()),
        );
    }
}

// --- TLB coherence (13) ------------------------------------------------------

fn register_tlb(engine: &mut VcEngine, p: &Params) {
    for seed in 0..12u64 {
        let steps = p.tlb_steps;
        engine.register(
            MODULE,
            VcKind::Interpretation,
            format!("tlb::coherent_with_shootdown_s{seed}"),
            move || crate::interp::tlb_coherent_with_shootdown(seed, steps).map(|_| ()),
        );
    }
    engine.register(
        MODULE,
        VcKind::Interpretation,
        "tlb::stale_without_shootdown",
        crate::interp::tlb_incoherent_without_shootdown,
    );
}

// --- baseline equivalence (8) -------------------------------------------------

fn register_equivalence(engine: &mut VcEngine, p: &Params) {
    for seed in 0..8u64 {
        let steps = p.random_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("equiv::verified_vs_unverified_s{seed}"),
            move || crate::refine::verified_vs_unverified(seed + 300, steps),
        );
    }
}

// --- frame accounting (8) --------------------------------------------------

fn register_accounting(engine: &mut VcEngine, p: &Params) {
    for seed in 0..8u64 {
        let rounds = p.accounting_rounds;
        engine.register(
            MODULE,
            VcKind::Invariant,
            format!("verified::frame_accounting_s{seed}"),
            move || frame_accounting(seed, rounds),
        );
    }
}

/// Map/unmap storms followed by `destroy` must return the allocator to
/// its starting balance — no leaked and no double-freed frames.
fn frame_accounting(seed: u64, rounds: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0xacc);
    for round in 0..rounds {
        let mut mem = veros_hw::PhysMem::new(2048);
        let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(2048 * PAGE_4K));
        let before = alloc.free_frames();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false)
            .map_err(|e| e.to_string())?;
        let mut mapped: Vec<u64> = Vec::new();
        for _ in 0..64 {
            if rng.chance(2, 3) || mapped.is_empty() {
                let va = VAddr::from_indices(
                    rng.index(4),
                    rng.index(8),
                    rng.index(8),
                    rng.index(32),
                );
                if pt
                    .map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(va.0, 0x10_0000))
                    .is_ok()
                {
                    mapped.push(va.0);
                }
            } else {
                let i = rng.index(mapped.len());
                let va = mapped.swap_remove(i);
                pt.unmap_frame(&mut mem, &mut alloc, VAddr(va))
                    .map_err(|e| format!("round {round}: unmap {va:#x}: {e}"))?;
            }
        }
        // Unmap the rest, then destroy.
        for va in mapped.drain(..) {
            pt.unmap_frame(&mut mem, &mut alloc, VAddr(va))
                .map_err(|e| e.to_string())?;
        }
        pt.destroy(&mut mem, &mut alloc);
        if alloc.free_frames() != before {
            return Err(format!(
                "round {round}: {} frames leaked",
                before - alloc.free_frames()
            ));
        }
    }
    Ok(())
}

// --- view correspondence (8) -----------------------------------------------

fn register_view(engine: &mut VcEngine, p: &Params) {
    for seed in 0..8u64 {
        let steps = p.random_steps;
        engine.register(
            MODULE,
            VcKind::Refinement,
            format!("verified::view_correspondence_s{seed}"),
            // `randomized_audit` ends by comparing the ghost view (the
            // paper's `view()`) against the spec map and checking wf.
            move || randomized_audit(Impl::Verified, seed + 400, steps, 0, 0).map(|_| ()),
        );
    }
}

// --- resolve probe grids (10) ------------------------------------------------

fn register_probes(engine: &mut VcEngine, p: &Params) {
    for seed in 0..10u64 {
        let probes = p.probe_count;
        engine.register(
            MODULE,
            VcKind::Interpretation,
            format!("verified::walk_matches_resolve_s{seed}"),
            move || probe_grid(seed, probes),
        );
    }
}

/// Builds a random populated table and compares hardware walks against
/// spec resolution on a large probe grid (mapped bases, interior offsets,
/// unmapped neighbours, non-canonical addresses).
fn probe_grid(seed: u64, probes: usize) -> Result<(), String> {
    let mut rng = SpecRng::seeded(seed ^ 0x12_0be);
    let mut mem = veros_hw::PhysMem::new(2048);
    let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(1024 * PAGE_4K));
    let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, false).map_err(|e| e.to_string())?;
    let mut spec = HighSpec::new();
    // Populate with a mixed-size random set.
    for _ in 0..40 {
        let size = match rng.below(8) {
            0 => PageSize::Size1G,
            1 | 2 => PageSize::Size2M,
            _ => PageSize::Size4K,
        };
        let va = VAddr(
            VAddr::from_indices(rng.index(3), rng.index(64), rng.index(64), rng.index(64)).0
                & !(size.bytes() - 1),
        );
        let req = MapRequest {
            va,
            pa: PAddr((rng.below(1 << 18) * size.bytes()) & !(size.bytes() - 1)),
            size,
            flags: *rng.choose(&MapFlags::all_combinations()),
        };
        if spec.map_precondition(&req).is_ok() {
            pt.map_frame(&mut mem, &mut alloc, req).map_err(|e| e.to_string())?;
            spec.apply_map(&req).map_err(|e| e.to_string())?;
        }
    }
    // Probe grid: random addresses biased toward mapped neighbourhoods.
    let bases: Vec<u64> = spec.map.keys().copied().collect();
    let mut grid = Vec::with_capacity(probes);
    for _ in 0..probes {
        let va = if !bases.is_empty() && rng.chance(3, 4) {
            let b = *rng.choose(&bases);
            // Inside, at the edge, or just past the mapping.
            b.wrapping_add(rng.below(4 * PAGE_4K)).min(0x0000_7fff_ffff_ffff)
        } else {
            rng.below(1 << 47)
        };
        grid.push(VAddr(va));
    }
    grid.push(VAddr(0x0000_8000_0000_0000)); // Non-canonical probe.
    crate::interp::walk_matches_resolve(&mem, pt.root(), &spec, &grid)?;
    // Each probe must also agree with the implementation's own resolve.
    for &va in &grid {
        let a = pt.resolve(&mem, va);
        let b = spec.resolve(va);
        if a != b {
            return Err(format!("{va}: impl resolve {a:?} vs spec {b:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_size_matches_the_paper() {
        let mut engine = VcEngine::new();
        register_all(&mut engine, Profile::Quick);
        assert_eq!(engine.len(), VC_COUNT, "Figure 1a population size");
    }

    #[test]
    fn quick_profile_all_pass() {
        let mut engine = VcEngine::new();
        register_all(&mut engine, Profile::Quick);
        let report = engine.run();
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|o| format!("{}: {:?}", o.vc.name, o.status))
            .collect();
        assert!(failures.is_empty(), "failed VCs:\n{}", failures.join("\n"));
        assert_eq!(report.total(), VC_COUNT);
    }

    #[test]
    fn kinds_cover_the_proof_structure() {
        let mut engine = VcEngine::new();
        register_all(&mut engine, Profile::Quick);
        let report = engine.run();
        let kinds: Vec<VcKind> = report.count_by_kind().into_iter().map(|(k, _)| k).collect();
        for want in [
            VcKind::Invariant,
            VcKind::Refinement,
            VcKind::Interpretation,
            VcKind::Property,
        ] {
            assert!(kinds.contains(&want), "missing kind {want:?}");
        }
    }
}
