//! The unverified baseline page table (NrOS's original implementation,
//! modelled).
//!
//! Same semantics as [`crate::impl_verified::VerifiedPageTable`] but
//! written the way a kernel developer writes it when no proof structure
//! constrains the shape: one iterative loop per operation, no ghost
//! state, no layered functions. This is the "NrOS Unverified" series of
//! Figures 1b and 1c; the paper's claim is that the verified version
//! "can closely match the performance of the unverified implementation",
//! which holds here because both compile to near-identical work.

use veros_hw::{FrameSource, PAddr, PhysMem, PtEntry, PtFlags, VAddr, PAGE_4K};

use crate::high_spec::AbsMapping;
use crate::ops::{MapFlags, MapRequest, PageSize, PtError, ResolveAnswer};
use crate::PageTableOps;

/// The unverified page table: just the root pointer.
pub struct UnverifiedPageTable {
    cr3: PAddr,
}

fn entry_addr(table: PAddr, idx: u16) -> PAddr {
    PAddr(table.0 + 8 * idx as u64)
}

fn indices(va: VAddr) -> [u16; 4] {
    // Ordered level 4 down to level 1.
    [
        va.pml4_index() as u16,
        va.pdpt_index() as u16,
        va.pd_index() as u16,
        va.pt_index() as u16,
    ]
}

impl UnverifiedPageTable {
    /// Creates an empty address space.
    pub fn new(mem: &mut PhysMem, alloc: &mut dyn FrameSource) -> Result<Self, PtError> {
        let cr3 = alloc.alloc_frame().ok_or(PtError::OutOfMemory)?;
        mem.zero_frame(cr3);
        Ok(Self { cr3 })
    }

    /// Frees all directory frames.
    pub fn destroy(self, mem: &mut PhysMem, alloc: &mut dyn FrameSource) {
        fn rec(mem: &mut PhysMem, alloc: &mut dyn FrameSource, table: PAddr, level: u8) {
            if level > 1 {
                for idx in 0..512u16 {
                    let e = PtEntry(mem.read_u64(entry_addr(table, idx)));
                    if e.is_present() && !e.is_huge() {
                        rec(mem, alloc, e.addr(), level - 1);
                    }
                }
            }
            mem.zero_frame(table);
            alloc.free_frame(table);
        }
        rec(mem, alloc, self.cr3, 4);
    }

    fn table_empty(mem: &PhysMem, table: PAddr) -> bool {
        (0..512u16).all(|i| !PtEntry(mem.read_u64(entry_addr(table, i))).is_present())
    }

    /// Walks to the level-1 table holding `va`'s PTE, when the full
    /// directory path exists (a missing directory or a huge leaf on the
    /// way returns `None`).
    fn walk_to_l1(mem: &PhysMem, cr3: PAddr, va: VAddr) -> Option<PAddr> {
        let idxs = indices(va);
        let mut table = cr3;
        for idx in &idxs[..3] {
            let entry = PtEntry(mem.read_u64(entry_addr(table, *idx)));
            if !entry.is_present() || entry.is_huge() {
                return None;
            }
            table = entry.addr();
        }
        Some(table)
    }

    /// Unmaps the `done` pages a failing `map_range` already installed.
    fn unmap_mapped_prefix(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: &MapRequest,
        done: u64,
    ) {
        let step = req.size.bytes();
        for j in (0..done).rev() {
            let rolled = self.unmap_frame(mem, alloc, VAddr(req.va.0 + j * step));
            debug_assert!(rolled.is_ok(), "map_range rollback failed at page {j}");
        }
    }

    /// Re-installs the prefix a failing `unmap_range` already removed.
    fn remap_removed_prefix(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
        removed: &[AbsMapping],
    ) {
        for (j, m) in removed.iter().enumerate().rev() {
            let back = MapRequest {
                va: VAddr(va.0 + j as u64 * PAGE_4K),
                pa: PAddr(m.pa),
                size: m.size,
                flags: m.flags,
            };
            let rolled = self.map_frame(mem, alloc, back);
            debug_assert!(rolled.is_ok(), "unmap_range rollback failed at slot {j}");
        }
    }
}

impl PageTableOps for UnverifiedPageTable {
    fn map_frame(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: MapRequest,
    ) -> Result<(), PtError> {
        if !req.va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !req.va.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedVa);
        }
        if !req.pa.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedPa);
        }
        let idxs = indices(req.va);
        let leaf_level = req.size.leaf_level();
        let mut table = self.cr3;
        // Remember newly allocated directories so an OOM deeper down can
        // roll back (also unlinking from the parent table).
        let mut fresh: Vec<(PAddr, Option<PAddr>)> = Vec::new();
        let mut level = 4u8;
        loop {
            let idx = idxs[(4 - level) as usize];
            let slot = entry_addr(table, idx);
            let entry = PtEntry(mem.read_u64(slot));
            if level == leaf_level {
                if entry.is_present() {
                    Self::rollback(mem, alloc, &mut fresh);
                    return Err(PtError::AlreadyMapped);
                }
                let mut f = PtFlags::PRESENT;
                if req.flags.writable {
                    f |= PtFlags::WRITABLE;
                }
                if req.flags.user {
                    f |= PtFlags::USER;
                }
                if req.flags.nx {
                    f |= PtFlags::NX;
                }
                if leaf_level > 1 {
                    f |= PtFlags::HUGE;
                }
                mem.write_u64(slot, PtEntry::new(req.pa, f).0);
                return Ok(());
            }
            if entry.is_present() {
                if entry.is_huge() {
                    Self::rollback(mem, alloc, &mut fresh);
                    return Err(PtError::AlreadyMapped);
                }
                table = entry.addr();
            } else {
                let Some(child) = alloc.alloc_frame() else {
                    Self::rollback(mem, alloc, &mut fresh);
                    return Err(PtError::OutOfMemory);
                };
                mem.zero_frame(child);
                mem.write_u64(
                    slot,
                    PtEntry::new(child, PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER).0,
                );
                fresh.push((child, Some(slot)));
                table = child;
            }
            level -= 1;
        }
    }

    fn unmap_frame(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
    ) -> Result<AbsMapping, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !va.is_aligned(PAGE_4K) {
            return Err(PtError::MisalignedVa);
        }
        let idxs = indices(va);
        // Walk down, recording the path for the cleanup pass.
        let mut path: Vec<(PAddr, PAddr)> = Vec::new(); // (table, slot)
        let mut table = self.cr3;
        let mut level = 4u8;
        let mapping = loop {
            let idx = idxs[(4 - level) as usize];
            let slot = entry_addr(table, idx);
            let entry = PtEntry(mem.read_u64(slot));
            if !entry.is_present() {
                return Err(PtError::NotMapped);
            }
            let is_leaf = level == 1 || entry.is_huge();
            if is_leaf {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return Err(PtError::NotMapped),
                };
                if !va.is_aligned(size.bytes()) {
                    return Err(PtError::NotMapped);
                }
                let f = entry.flags();
                let mapping = AbsMapping {
                    pa: entry.addr().0,
                    size,
                    flags: MapFlags {
                        writable: f.contains(PtFlags::WRITABLE),
                        user: f.contains(PtFlags::USER),
                        nx: f.contains(PtFlags::NX),
                    },
                };
                mem.write_u64(slot, PtEntry::zero().0);
                break mapping;
            }
            path.push((table, slot));
            table = entry.addr();
            level -= 1;
        };
        // Cleanup pass: free directories that became empty, bottom-up.
        for (parent_table, parent_slot) in path.into_iter().rev() {
            let child = PtEntry(mem.read_u64(parent_slot)).addr();
            if !Self::table_empty(mem, child) {
                break;
            }
            mem.zero_frame(child);
            alloc.free_frame(child);
            mem.write_u64(parent_slot, PtEntry::zero().0);
            let _ = parent_table;
        }
        Ok(mapping)
    }

    /// Amortized override (same structure as the verified version, no
    /// ghost state): one full descent per level-1 chunk, direct leaf
    /// writes for the rest of the chunk.
    fn map_range(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: MapRequest,
        pages: u64,
    ) -> Result<(), PtError> {
        let step = req.size.bytes();
        if crate::range_overflows(req.va.0, step, pages) {
            return Err(PtError::NonCanonical);
        }
        if crate::range_overflows(req.pa.0, step, pages) {
            return Err(PtError::PhysOutOfRange);
        }
        let mut leaf = PtFlags::PRESENT;
        if req.flags.writable {
            leaf |= PtFlags::WRITABLE;
        }
        if req.flags.user {
            leaf |= PtFlags::USER;
        }
        if req.flags.nx {
            leaf |= PtFlags::NX;
        }
        let mut done: u64 = 0;
        while done < pages {
            let head = MapRequest {
                va: VAddr(req.va.0 + done * step),
                pa: PAddr(req.pa.0 + done * step),
                ..req
            };
            if let Err(e) = self.map_frame(mem, alloc, head) {
                self.unmap_mapped_prefix(mem, alloc, &req, done);
                return Err(e);
            }
            done += 1;
            if req.size != PageSize::Size4K {
                continue;
            }
            let Some(l1) = Self::walk_to_l1(mem, self.cr3, head.va) else {
                continue;
            };
            while done < pages {
                let va = VAddr(req.va.0 + done * step);
                if va.0 >> 21 != head.va.0 >> 21 {
                    break;
                }
                let slot = entry_addr(l1, indices(va)[3]);
                if PtEntry(mem.read_u64(slot)).is_present() {
                    self.unmap_mapped_prefix(mem, alloc, &req, done);
                    return Err(PtError::AlreadyMapped);
                }
                mem.write_u64(slot, PtEntry::new(PAddr(req.pa.0 + done * step), leaf).0);
                done += 1;
            }
        }
        Ok(())
    }

    /// Amortized override: direct clears for middle slots, the one-page
    /// path for each chunk's first and last in-range slot so emptied
    /// tables still get pruned.
    fn unmap_range(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
        pages: u64,
    ) -> Result<Vec<AbsMapping>, PtError> {
        if crate::range_overflows(va.0, PAGE_4K, pages) {
            return Err(PtError::NonCanonical);
        }
        let mut removed: Vec<AbsMapping> = Vec::new();
        while (removed.len() as u64) < pages {
            let head = VAddr(va.0 + removed.len() as u64 * PAGE_4K);
            match self.unmap_frame(mem, alloc, head) {
                Ok(m) => removed.push(m),
                Err(e) => {
                    self.remap_removed_prefix(mem, alloc, va, &removed);
                    return Err(e);
                }
            }
            let Some(l1) = Self::walk_to_l1(mem, self.cr3, head) else {
                continue;
            };
            loop {
                let i = removed.len() as u64;
                if i >= pages {
                    break;
                }
                let cur = VAddr(va.0 + i * PAGE_4K);
                if cur.0 >> 21 != head.0 >> 21 {
                    break;
                }
                let last_of_chunk = i + 1 >= pages
                    || (va.0 + (i + 1) * PAGE_4K) >> 21 != head.0 >> 21;
                if last_of_chunk {
                    match self.unmap_frame(mem, alloc, cur) {
                        Ok(m) => removed.push(m),
                        Err(e) => {
                            self.remap_removed_prefix(mem, alloc, va, &removed);
                            return Err(e);
                        }
                    }
                    break;
                }
                let slot = entry_addr(l1, indices(cur)[3]);
                let entry = PtEntry(mem.read_u64(slot));
                if !entry.is_present() {
                    self.remap_removed_prefix(mem, alloc, va, &removed);
                    return Err(PtError::NotMapped);
                }
                let f = entry.flags();
                removed.push(AbsMapping {
                    pa: entry.addr().0,
                    size: PageSize::Size4K,
                    flags: MapFlags {
                        writable: f.contains(PtFlags::WRITABLE),
                        user: f.contains(PtFlags::USER),
                        nx: f.contains(PtFlags::NX),
                    },
                });
                mem.write_u64(slot, PtEntry::zero().0);
            }
        }
        Ok(removed)
    }

    fn resolve(&self, mem: &PhysMem, va: VAddr) -> Result<ResolveAnswer, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        let idxs = indices(va);
        let mut table = self.cr3;
        let mut level = 4u8;
        loop {
            let idx = idxs[(4 - level) as usize];
            let entry = PtEntry(mem.read_u64(entry_addr(table, idx)));
            if !entry.is_present() {
                return Err(PtError::NotMapped);
            }
            let is_leaf = level == 1 || entry.is_huge();
            if is_leaf {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return Err(PtError::NotMapped),
                };
                let span = size.bytes();
                let base = VAddr(va.0 & !(span - 1));
                let f = entry.flags();
                return Ok(ResolveAnswer {
                    pa: PAddr(entry.addr().0 + (va.0 - base.0)),
                    base,
                    size,
                    flags: MapFlags {
                        writable: f.contains(PtFlags::WRITABLE),
                        user: f.contains(PtFlags::USER),
                        nx: f.contains(PtFlags::NX),
                    },
                });
            }
            table = entry.addr();
            level -= 1;
        }
    }

    fn root(&self) -> PAddr {
        self.cr3
    }
}

impl UnverifiedPageTable {
    fn rollback(
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        fresh: &mut Vec<(PAddr, Option<PAddr>)>,
    ) {
        // Unlink the topmost fresh directory from its parent, then free
        // the chain (fresh directories only contain each other).
        if let Some((_, Some(first_slot))) = fresh.first() {
            mem.write_u64(*first_slot, PtEntry::zero().0);
        }
        for (frame, _) in fresh.drain(..) {
            mem.zero_frame(frame);
            alloc.free_frame(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_hw::StackFrameSource;

    fn setup() -> (PhysMem, StackFrameSource) {
        (
            PhysMem::new(1024),
            StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(512 * PAGE_4K)),
        )
    }

    #[test]
    fn map_resolve_unmap_round_trip() {
        let (mut mem, mut alloc) = setup();
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        assert_eq!(pt.resolve(&mem, VAddr(0x1123)).unwrap().pa, PAddr(0x8123));
        let m = pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x1000)).unwrap();
        assert_eq!(m.pa, 0x8000);
        assert_eq!(pt.resolve(&mem, VAddr(0x1123)), Err(PtError::NotMapped));
    }

    #[test]
    fn unmap_frees_empty_directories() {
        let (mut mem, mut alloc) = setup();
        let before = alloc.free_frames();
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x1000)).unwrap();
        assert_eq!(alloc.free_frames(), before - 1);
        pt.destroy(&mut mem, &mut alloc);
        assert_eq!(alloc.free_frames(), before);
    }

    #[test]
    fn oom_rolls_back_partially_created_path() {
        let mut mem = PhysMem::new(64);
        let mut alloc = StackFrameSource::new(PAddr(0x1000), PAddr(0x3000));
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        assert_eq!(
            pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000)),
            Err(PtError::OutOfMemory)
        );
        assert_eq!(alloc.free_frames(), 1);
        assert!(veros_hw::interpret_page_table(&mem, pt.root()).is_empty());
    }

    #[test]
    fn map_range_matches_per_page_loop_and_mmu() {
        let (mut mem, mut alloc) = setup();
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        let req = MapRequest::rw_4k(0x1f_d000, 0x80_0000); // crosses 0x20_0000
        pt.map_range(&mut mem, &mut alloc, req, 12).unwrap();
        for i in 0..12u64 {
            let va = VAddr(req.va.0 + i * 0x1000);
            assert_eq!(pt.resolve(&mem, va).unwrap().pa, PAddr(req.pa.0 + i * 0x1000));
            // The MMU sees exactly what resolve reports, fast path or not.
            let m = veros_hw::walk(&mem, pt.root(), va).unwrap();
            assert_eq!(m.pa_base, PAddr(req.pa.0 + i * 0x1000));
        }
        let removed = pt.unmap_range(&mut mem, &mut alloc, req.va, 12).unwrap();
        assert_eq!(removed.len(), 12);
        assert_eq!(pt.resolve(&mem, req.va), Err(PtError::NotMapped));
    }

    #[test]
    fn range_failures_roll_back() {
        let (mut mem, mut alloc) = setup();
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x4000, 0x9000))
            .unwrap();
        let held = alloc.free_frames();
        assert_eq!(
            pt.map_range(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x80_0000), 8),
            Err(PtError::AlreadyMapped)
        );
        assert_eq!(alloc.free_frames(), held, "failed map_range leaks nothing");
        assert_eq!(pt.resolve(&mem, VAddr(0x1000)), Err(PtError::NotMapped));
        // unmap_range across the hole left after removing 0x4000:
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x4000)).unwrap();
        pt.map_range(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x80_0000), 2)
            .unwrap();
        assert_eq!(
            pt.unmap_range(&mut mem, &mut alloc, VAddr(0x1000), 4),
            Err(PtError::NotMapped)
        );
        for i in 0..2u64 {
            assert_eq!(
                pt.resolve(&mem, VAddr(0x1000 + i * 0x1000)).unwrap().pa,
                PAddr(0x80_0000 + i * 0x1000),
                "removed prefix restored"
            );
        }
    }

    #[test]
    fn agrees_with_mmu_walk() {
        let (mut mem, mut alloc) = setup();
        let mut pt = UnverifiedPageTable::new(&mut mem, &mut alloc).unwrap();
        let req = MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_ro(),
        };
        pt.map_frame(&mut mem, &mut alloc, req).unwrap();
        let m = veros_hw::walk(&mem, pt.root(), VAddr(0x20_1234)).unwrap();
        assert_eq!(m.pa_base, PAddr(0x40_0000));
        assert_eq!(m.size, PageSize::Size2M.bytes());
        assert!(!m.writable && m.user);
    }
}
