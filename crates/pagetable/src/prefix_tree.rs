//! The "Prefix Tree Map" — the intermediate layer of the paper's Fig 2.
//!
//! Between the flat mathematical map (high-level spec) and the bit-level
//! implementation sits a 4-level prefix tree of mathematical maps: the
//! same *shape* as the hardware page table, but with abstract nodes
//! instead of physical frames and entries. The refinement splits into
//! two manageable steps — flat map ↔ prefix tree (pure data-structure
//! reasoning, checked here with genuine forward simulation) and prefix
//! tree ↔ bits in memory (checked in [`crate::interp`]).
//!
//! Structural invariant: **no empty directories**. Directories are
//! created only on the way to installing a leaf and removed as soon as
//! their last child goes; consequently "a directory exists at this slot"
//! implies "some mapping overlaps this slot's range", which is what makes
//! error behaviour line up with the high-level overlap check.

use std::collections::BTreeMap;

use veros_hw::{PAddr, VAddr, PAGE_4K};
use veros_spec::StateMachine;

use crate::high_spec::{AbsMap, AbsMapping, HighSpec};
use crate::ops::{MapRequest, PtError, PtOp, ResolveAnswer};

/// A node of the prefix tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// An inner node: child index (0..512) → child node.
    Directory(BTreeMap<u16, Node>),
    /// A leaf mapping; its level determines its size.
    Leaf(AbsMapping),
}

/// The 4-level prefix tree.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PrefixTree {
    /// The level-4 directory (the root is always present, mirroring the
    /// hardware's always-present CR3 frame).
    pub root: BTreeMap<u16, Node>,
}

/// Index of `va` at `level` (4 = PML4 … 1 = PT).
fn index_at(va: VAddr, level: u8) -> u16 {
    match level {
        4 => va.pml4_index() as u16,
        3 => va.pdpt_index() as u16,
        2 => va.pd_index() as u16,
        1 => va.pt_index() as u16,
        _ => unreachable!("no level {level}"),
    }
}

/// The size of the region one entry at `level` spans.
fn span_at(level: u8) -> u64 {
    PAGE_4K << (9 * (level - 1))
}

impl PrefixTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `map` operation; same preconditions and errors as the
    /// high-level spec.
    pub fn map(&mut self, req: &MapRequest) -> Result<(), PtError> {
        if !req.va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !req.va.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedVa);
        }
        if !req.pa.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedPa);
        }
        Self::map_rec(&mut self.root, 4, req)
    }

    fn map_rec(dir: &mut BTreeMap<u16, Node>, level: u8, req: &MapRequest) -> Result<(), PtError> {
        let idx = index_at(req.va, level);
        if level == req.size.leaf_level() {
            // A leaf goes here; any occupant (leaf or directory, the
            // latter nonempty by invariant) means overlap.
            if dir.contains_key(&idx) {
                return Err(PtError::AlreadyMapped);
            }
            dir.insert(
                idx,
                Node::Leaf(AbsMapping {
                    pa: req.pa.0,
                    size: req.size,
                    flags: req.flags,
                }),
            );
            return Ok(());
        }
        match dir.get_mut(&idx) {
            Some(Node::Leaf(_)) => Err(PtError::AlreadyMapped),
            Some(Node::Directory(child)) => Self::map_rec(child, level - 1, req),
            None => {
                // Create the child directory, insert, and keep the
                // no-empty-dirs invariant: the recursive call at
                // leaf-creation depth cannot fail (fresh directories are
                // empty), so the new directory always ends up populated.
                let mut child = BTreeMap::new();
                let result = Self::map_rec(&mut child, level - 1, req);
                debug_assert!(result.is_ok(), "insert into fresh directory cannot fail");
                dir.insert(idx, Node::Directory(child));
                result
            }
        }
    }

    /// The `unmap` operation: removes the mapping based exactly at `va`.
    pub fn unmap(&mut self, va: VAddr) -> Result<AbsMapping, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !va.is_aligned(PAGE_4K) {
            return Err(PtError::MisalignedVa);
        }
        Self::unmap_rec(&mut self.root, 4, va)
    }

    fn unmap_rec(
        dir: &mut BTreeMap<u16, Node>,
        level: u8,
        va: VAddr,
    ) -> Result<AbsMapping, PtError> {
        let idx = index_at(va, level);
        match dir.get_mut(&idx) {
            None => Err(PtError::NotMapped),
            Some(Node::Leaf(m)) => {
                // The leaf's base is va with all lower-level indices and
                // the offset zeroed; unmap requires va to *be* the base.
                if va.is_aligned(span_at(level)) {
                    let m = *m;
                    dir.remove(&idx);
                    Ok(m)
                } else {
                    Err(PtError::NotMapped)
                }
            }
            Some(Node::Directory(child)) => {
                let m = Self::unmap_rec(child, level - 1, va)?;
                if child.is_empty() {
                    // Maintain the no-empty-dirs invariant.
                    dir.remove(&idx);
                }
                Ok(m)
            }
        }
    }

    /// The `resolve` operation: the translation of an arbitrary address.
    pub fn resolve(&self, va: VAddr) -> Result<ResolveAnswer, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        let mut dir = &self.root;
        let mut level = 4u8;
        loop {
            let idx = index_at(va, level);
            match dir.get(&idx) {
                None => return Err(PtError::NotMapped),
                Some(Node::Leaf(m)) => {
                    let base = VAddr(va.0 & !(span_at(level) - 1));
                    return Ok(ResolveAnswer {
                        pa: PAddr(m.pa + (va.0 - base.0)),
                        base,
                        size: m.size,
                        flags: m.flags,
                    });
                }
                Some(Node::Directory(child)) => {
                    dir = child;
                    level -= 1;
                }
            }
        }
    }

    /// Applies any [`PtOp`] (the differential-check entry point).
    pub fn apply(&mut self, op: &PtOp) -> Result<Option<ResolveAnswer>, PtError> {
        match op {
            PtOp::Map(req) => self.map(req).map(|()| None),
            PtOp::Unmap(va) => self.unmap(*va).map(|m| {
                Some(ResolveAnswer {
                    pa: PAddr(m.pa),
                    base: *va,
                    size: m.size,
                    flags: m.flags,
                })
            }),
            PtOp::Resolve(va) => self.resolve(*va).map(Some),
        }
    }

    /// Flattens the tree into the high-level mathematical map — the
    /// abstraction function of the first refinement step.
    pub fn flatten(&self) -> AbsMap {
        let mut out = AbsMap::new();
        Self::flatten_rec(&self.root, 4, 0, &mut out);
        out
    }

    fn flatten_rec(dir: &BTreeMap<u16, Node>, level: u8, base: u64, out: &mut AbsMap) {
        for (idx, node) in dir {
            let child_base = base + *idx as u64 * span_at(level);
            // Sign-extend at the root to produce canonical addresses.
            let child_base = if level == 4 && *idx >= 256 {
                child_base | 0xffff_0000_0000_0000
            } else {
                child_base
            };
            match node {
                Node::Leaf(m) => {
                    out.insert(child_base, *m);
                }
                Node::Directory(child) => Self::flatten_rec(child, level - 1, child_base, out),
            }
        }
    }

    /// Structural well-formedness: no empty directories, leaves only at
    /// levels 3/2/1 with the matching size, physical bases aligned.
    pub fn wf(&self) -> bool {
        Self::wf_rec(&self.root, 4, true)
    }

    fn wf_rec(dir: &BTreeMap<u16, Node>, level: u8, is_root: bool) -> bool {
        if dir.is_empty() && !is_root {
            return false;
        }
        dir.iter().all(|(idx, node)| {
            if *idx >= 512 {
                return false;
            }
            match node {
                Node::Leaf(m) => level <= 3 && m.size.leaf_level() == level && m.pa % m.size.bytes() == 0,
                Node::Directory(child) => level > 1 && Self::wf_rec(child, level - 1, false),
            }
        })
    }

    /// Number of directory nodes (excluding the root), which must equal
    /// the number of directory frames the bit-level implementation holds.
    pub fn directory_count(&self) -> usize {
        fn rec(dir: &BTreeMap<u16, Node>) -> usize {
            dir.values()
                .map(|n| match n {
                    Node::Directory(c) => 1 + rec(c),
                    Node::Leaf(_) => 0,
                })
                .sum()
        }
        rec(&self.root)
    }
}

/// The prefix tree as a finite [`StateMachine`] over an op universe, for
/// the forward-simulation VC against [`HighSpecMachine`](crate::high_spec::HighSpecMachine)
/// (crate::high_spec::HighSpecMachine).
pub struct PrefixTreeMachine {
    /// Candidate operations.
    pub universe: Vec<PtOp>,
}

impl StateMachine for PrefixTreeMachine {
    type State = PrefixTree;
    type Action = PtOp;

    fn init_states(&self) -> Vec<PrefixTree> {
        vec![PrefixTree::new()]
    }

    fn actions(&self, state: &PrefixTree) -> Vec<PtOp> {
        self.universe
            .iter()
            .filter(|op| {
                let mut s = state.clone();
                s.apply(op).is_ok()
            })
            .copied()
            .collect()
    }

    fn step(&self, state: &PrefixTree, action: &PtOp) -> Option<PrefixTree> {
        let mut s = state.clone();
        s.apply(action).ok().map(|_| s)
    }
}

/// The forward-simulation map from [`PrefixTreeMachine`] to
/// [`crate::high_spec::HighSpecMachine`]: abstraction is flattening, and
/// every enabled op maps to the same op.
pub struct TreeToFlat;

impl veros_spec::RefinementMap for TreeToFlat {
    type Concrete = PrefixTreeMachine;
    type Abstract = crate::high_spec::HighSpecMachine;

    fn abstraction(&self, s: &PrefixTree) -> HighSpec {
        HighSpec { map: s.flatten() }
    }

    fn abstract_action(&self, _pre: &PrefixTree, action: &PtOp) -> Option<PtOp> {
        match action {
            // Resolve is read-only: a stutter at the abstract level.
            PtOp::Resolve(_) => None,
            other => Some(*other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::high_spec::HighSpecMachine;
    use crate::ops::{MapFlags, PageSize};
    use veros_spec::{check_refinement, ExploreLimits};

    fn huge_2m(va: u64, pa: u64) -> MapRequest {
        MapRequest {
            va: VAddr(va),
            pa: PAddr(pa),
            size: PageSize::Size2M,
            flags: MapFlags::user_rw(),
        }
    }

    #[test]
    fn map_resolve_unmap_round_trip() {
        let mut t = PrefixTree::new();
        t.map(&MapRequest::rw_4k(0x1000, 0x8000)).unwrap();
        let r = t.resolve(VAddr(0x1123)).unwrap();
        assert_eq!(r.pa, PAddr(0x8123));
        let m = t.unmap(VAddr(0x1000)).unwrap();
        assert_eq!(m.pa, 0x8000);
        assert!(t.root.is_empty(), "empty dirs pruned all the way up");
    }

    #[test]
    fn no_empty_directories_after_unmap() {
        let mut t = PrefixTree::new();
        t.map(&MapRequest::rw_4k(0x1000, 0x8000)).unwrap();
        t.map(&MapRequest::rw_4k(0x40_0000, 0x9000)).unwrap(); // Different L2 subtree.
        t.unmap(VAddr(0x1000)).unwrap();
        assert!(t.wf());
        assert_eq!(t.flatten().len(), 1);
        t.unmap(VAddr(0x40_0000)).unwrap();
        assert!(t.root.is_empty());
    }

    #[test]
    fn huge_leaf_blocks_descent() {
        let mut t = PrefixTree::new();
        t.map(&huge_2m(0x20_0000, 0x40_0000)).unwrap();
        assert_eq!(
            t.map(&MapRequest::rw_4k(0x20_1000, 0x1000)),
            Err(PtError::AlreadyMapped)
        );
        // Resolve inside the huge page works with the right offset.
        let r = t.resolve(VAddr(0x21_2345)).unwrap();
        assert_eq!(r.pa, PAddr(0x41_2345));
        assert_eq!(r.base, VAddr(0x20_0000));
    }

    #[test]
    fn small_leaf_blocks_huge_map() {
        let mut t = PrefixTree::new();
        t.map(&MapRequest::rw_4k(0x20_1000, 0x1000)).unwrap();
        assert_eq!(t.map(&huge_2m(0x20_0000, 0x40_0000)), Err(PtError::AlreadyMapped));
    }

    #[test]
    fn unmap_inside_huge_page_is_not_base() {
        let mut t = PrefixTree::new();
        t.map(&huge_2m(0x20_0000, 0x40_0000)).unwrap();
        assert_eq!(t.unmap(VAddr(0x20_1000)), Err(PtError::NotMapped));
        assert!(t.unmap(VAddr(0x20_0000)).is_ok());
    }

    #[test]
    fn flatten_produces_canonical_high_half_addresses() {
        let mut t = PrefixTree::new();
        let va = VAddr::from_indices(300, 1, 2, 3);
        t.map(&MapRequest {
            va,
            pa: PAddr(0x8000),
            size: PageSize::Size4K,
            flags: MapFlags::kernel_rw(),
        })
        .unwrap();
        let flat = t.flatten();
        assert_eq!(flat.len(), 1);
        assert!(flat.contains_key(&va.0), "flatten must sign-extend: {flat:?}");
    }

    #[test]
    fn flatten_matches_incremental_high_spec() {
        let mut t = PrefixTree::new();
        let mut s = HighSpec::new();
        let ops = [
            PtOp::Map(MapRequest::rw_4k(0x1000, 0x8000)),
            PtOp::Map(huge_2m(0x20_0000, 0x40_0000)),
            PtOp::Map(MapRequest::rw_4k(0x2000, 0x9000)),
            PtOp::Unmap(VAddr(0x1000)),
            PtOp::Map(MapRequest::rw_4k(0x1000, 0xa000)),
        ];
        for op in &ops {
            let a = t.apply(op);
            let b = s.apply(op);
            assert_eq!(a, b, "differential mismatch on {op:?}");
            assert_eq!(t.flatten(), s.map);
        }
    }

    #[test]
    fn directory_count_tracks_structure() {
        let mut t = PrefixTree::new();
        assert_eq!(t.directory_count(), 0);
        t.map(&MapRequest::rw_4k(0x1000, 0x8000)).unwrap();
        assert_eq!(t.directory_count(), 3, "L3+L2+L1 directories");
        t.map(&huge_2m(0x20_0000, 0x40_0000)).unwrap();
        assert_eq!(t.directory_count(), 3, "huge page reuses L3, leaf at L2");
        t.unmap(VAddr(0x1000)).unwrap();
        assert_eq!(t.directory_count(), 2);
    }

    #[test]
    fn forward_simulation_against_high_spec() {
        let universe = HighSpecMachine::small().universe;
        let stats = check_refinement(
            &TreeToFlat,
            PrefixTreeMachine {
                universe: universe.clone(),
            },
            &HighSpecMachine { universe },
            ExploreLimits::default(),
        )
        .expect("prefix tree must refine the flat map");
        assert!(stats.complete);
    }
}
