//! The verified page-table implementation (layer 3 of the paper's Fig 2).
//!
//! "We implement executable, concrete functions in Rust for the map,
//! unmap and resolve operations. Those functions read and write memory
//! locations of the page table to perform mapping or unmapping of frames,
//! as well as allocate or free memory used to store the page table."
//!
//! The code is structured the way the Verus proof structures it: one
//! function per level, so each function's obligations (preserve the
//! structural invariant, refine the prefix-tree layer) are local. In
//! *audit mode* the table carries its ghost prefix tree — the executable
//! analogue of Verus ghost state — and updates it in lock-step; audit
//! mode is what the verification conditions run, while the benchmarks run
//! with the ghost erased (exactly as Verus erases ghost state at
//! compile time), so Figures 1b/1c compare like with like.

use veros_hw::{FrameSource, PAddr, PhysMem, PtEntry, PtFlags, VAddr, PAGE_4K};

use crate::high_spec::AbsMapping;
use crate::ops::{MapFlags, MapRequest, PageSize, PtError, ResolveAnswer};
use crate::prefix_tree::PrefixTree;
use crate::PageTableOps;

/// Flags given to directory entries: maximally permissive, so the leaf
/// entry alone determines the effective permissions (the MMU accumulates
/// conjunctively for W/U and disjunctively for NX).
fn dir_flags() -> PtFlags {
    PtFlags::PRESENT | PtFlags::WRITABLE | PtFlags::USER
}

/// Encodes abstract [`MapFlags`] into a leaf entry's architectural bits.
pub fn encode_leaf(pa: PAddr, size: PageSize, flags: MapFlags) -> PtEntry {
    let mut f = PtFlags::PRESENT;
    if flags.writable {
        f |= PtFlags::WRITABLE;
    }
    if flags.user {
        f |= PtFlags::USER;
    }
    if flags.nx {
        f |= PtFlags::NX;
    }
    if size.leaf_level() > 1 {
        f |= PtFlags::HUGE;
    }
    PtEntry::new(pa, f)
}

/// Decodes a leaf entry back to abstract flags.
pub fn decode_leaf(e: PtEntry) -> MapFlags {
    MapFlags {
        writable: e.flags().contains(PtFlags::WRITABLE),
        user: e.flags().contains(PtFlags::USER),
        nx: e.flags().contains(PtFlags::NX),
    }
}

fn entry_addr(table: PAddr, idx: u16) -> PAddr {
    PAddr(table.0 + 8 * idx as u64)
}

fn index_at(va: VAddr, level: u8) -> u16 {
    match level {
        4 => va.pml4_index() as u16,
        3 => va.pdpt_index() as u16,
        2 => va.pd_index() as u16,
        1 => va.pt_index() as u16,
        _ => unreachable!("no level {level}"),
    }
}

/// Span of one entry at `level`.
fn span_at(level: u8) -> u64 {
    PAGE_4K << (9 * (level - 1))
}

/// The verified page table.
pub struct VerifiedPageTable {
    cr3: PAddr,
    ghost: Option<PrefixTree>,
}

impl VerifiedPageTable {
    /// Creates an empty address space, allocating the root frame.
    ///
    /// `audit` enables ghost-state tracking (used by the verification
    /// conditions; benchmarks pass `false`).
    pub fn new(
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        audit: bool,
    ) -> Result<Self, PtError> {
        let cr3 = alloc.alloc_frame().ok_or(PtError::OutOfMemory)?;
        mem.zero_frame(cr3);
        Ok(Self {
            cr3,
            ghost: audit.then(PrefixTree::new),
        })
    }

    /// The ghost prefix tree, when running in audit mode.
    ///
    /// This is the implementation's `view()` in the paper's sense: the
    /// abstraction of its concrete state that client reasoning uses.
    pub fn ghost(&self) -> Option<&PrefixTree> {
        self.ghost.as_ref()
    }

    /// Frees every directory frame (including the root). The table must
    /// not be used afterwards.
    pub fn destroy(self, mem: &mut PhysMem, alloc: &mut dyn FrameSource) {
        Self::free_subtree(mem, alloc, self.cr3, 4);
    }

    fn free_subtree(mem: &mut PhysMem, alloc: &mut dyn FrameSource, table: PAddr, level: u8) {
        if level > 1 {
            for idx in 0..512u16 {
                let e = PtEntry(mem.read_u64(entry_addr(table, idx)));
                if e.is_present() && !e.is_huge() {
                    Self::free_subtree(mem, alloc, e.addr(), level - 1);
                }
            }
        }
        mem.zero_frame(table);
        alloc.free_frame(table);
    }

    // --- map ------------------------------------------------------------

    /// Per-level map function. Mirrors `PrefixTree::map_rec` — that
    /// correspondence *is* the refinement argument, discharged by the
    /// differential VCs.
    fn map_at(
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        table: PAddr,
        level: u8,
        req: &MapRequest,
    ) -> Result<(), PtError> {
        let idx = index_at(req.va, level);
        let slot = entry_addr(table, idx);
        let entry = PtEntry(mem.read_u64(slot));
        if level == req.size.leaf_level() {
            if entry.is_present() {
                return Err(PtError::AlreadyMapped);
            }
            mem.write_u64(slot, encode_leaf(req.pa, req.size, req.flags).0);
            return Ok(());
        }
        if entry.is_present() {
            if entry.is_huge() {
                return Err(PtError::AlreadyMapped);
            }
            return Self::map_at(mem, alloc, entry.addr(), level - 1, req);
        }
        // Allocate a fresh directory. Descending into it can only fail
        // with OutOfMemory (fresh tables are empty); roll back on failure
        // so no empty directory is ever left installed.
        let child = alloc.alloc_frame().ok_or(PtError::OutOfMemory)?;
        mem.zero_frame(child);
        match Self::map_at(mem, alloc, child, level - 1, req) {
            Ok(()) => {
                mem.write_u64(slot, PtEntry::new(child, dir_flags()).0);
                Ok(())
            }
            Err(e) => {
                debug_assert_eq!(e, PtError::OutOfMemory);
                alloc.free_frame(child);
                Err(e)
            }
        }
    }

    // --- unmap ----------------------------------------------------------

    /// Per-level unmap. Returns the removed mapping and whether `table`
    /// became empty (so the caller can free it).
    fn unmap_at(
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        table: PAddr,
        level: u8,
        va: VAddr,
    ) -> Result<(AbsMapping, bool), PtError> {
        let idx = index_at(va, level);
        let slot = entry_addr(table, idx);
        let entry = PtEntry(mem.read_u64(slot));
        if !entry.is_present() {
            return Err(PtError::NotMapped);
        }
        let is_leaf = level == 1 || entry.is_huge();
        if is_leaf {
            if !va.is_aligned(span_at(level)) {
                return Err(PtError::NotMapped);
            }
            let size = match level {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(PtError::NotMapped), // Huge bit at L4 is not architectural.
            };
            let mapping = AbsMapping {
                pa: entry.addr().0,
                size,
                flags: decode_leaf(entry),
            };
            mem.write_u64(slot, PtEntry::zero().0);
            return Ok((mapping, Self::table_empty(mem, table)));
        }
        let (mapping, child_empty) = Self::unmap_at(mem, alloc, entry.addr(), level - 1, va)?;
        if child_empty {
            // Free the now-empty child directory and clear our entry —
            // the no-empty-dirs invariant, in bits.
            let child = entry.addr();
            mem.zero_frame(child);
            alloc.free_frame(child);
            mem.write_u64(slot, PtEntry::zero().0);
            return Ok((mapping, Self::table_empty(mem, table)));
        }
        Ok((mapping, false))
    }

    fn table_empty(mem: &PhysMem, table: PAddr) -> bool {
        (0..512u16).all(|i| !PtEntry(mem.read_u64(entry_addr(table, i))).is_present())
    }

    // --- range ops ------------------------------------------------------

    /// Walks to the level-1 table holding `va`'s PTE, when the full
    /// directory path exists (a missing directory or a huge leaf on the
    /// way returns `None`).
    fn walk_to_l1(mem: &PhysMem, cr3: PAddr, va: VAddr) -> Option<PAddr> {
        let mut table = cr3;
        for level in [4u8, 3, 2] {
            let entry = PtEntry(mem.read_u64(entry_addr(table, index_at(va, level))));
            if !entry.is_present() || entry.is_huge() {
                return None;
            }
            table = entry.addr();
        }
        Some(table)
    }

    /// Rolls a partially applied `map_range` back: unmaps the `done`
    /// pages already installed, newest first.
    fn unmap_mapped_prefix(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: &MapRequest,
        done: u64,
    ) {
        let step = req.size.bytes();
        for j in (0..done).rev() {
            let rolled = self.unmap_frame(mem, alloc, VAddr(req.va.0 + j * step));
            debug_assert!(rolled.is_ok(), "map_range rollback failed at page {j}");
        }
    }

    /// Rolls a partially applied `unmap_range` back: re-installs the
    /// removed prefix so the failing call leaves the table untouched.
    fn remap_removed_prefix(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
        removed: &[AbsMapping],
    ) {
        for (j, m) in removed.iter().enumerate().rev() {
            let back = MapRequest {
                va: VAddr(va.0 + j as u64 * PAGE_4K),
                pa: PAddr(m.pa),
                size: m.size,
                flags: m.flags,
            };
            let rolled = self.map_frame(mem, alloc, back);
            debug_assert!(rolled.is_ok(), "unmap_range rollback failed at slot {j}");
        }
    }

    // --- resolve ----------------------------------------------------------

    /// Per-level resolve.
    fn resolve_at(
        mem: &PhysMem,
        table: PAddr,
        level: u8,
        va: VAddr,
    ) -> Result<ResolveAnswer, PtError> {
        let idx = index_at(va, level);
        let entry = PtEntry(mem.read_u64(entry_addr(table, idx)));
        if !entry.is_present() {
            return Err(PtError::NotMapped);
        }
        let is_leaf = level == 1 || entry.is_huge();
        if is_leaf {
            let size = match level {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(PtError::NotMapped),
            };
            let base = VAddr(va.0 & !(span_at(level) - 1));
            return Ok(ResolveAnswer {
                pa: PAddr(entry.addr().0 + (va.0 - base.0)),
                base,
                size,
                flags: decode_leaf(entry),
            });
        }
        Self::resolve_at(mem, entry.addr(), level - 1, va)
    }
}

impl PageTableOps for VerifiedPageTable {
    fn map_frame(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: MapRequest,
    ) -> Result<(), PtError> {
        if !req.va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !req.va.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedVa);
        }
        if !req.pa.is_aligned(req.size.bytes()) {
            return Err(PtError::MisalignedPa);
        }
        let result = Self::map_at(mem, alloc, self.cr3, 4, &req);
        if let Some(ghost) = &mut self.ghost {
            // Ghost state moves in lock-step; OutOfMemory is the one
            // implementation-only failure (a stutter for the ghost).
            match &result {
                Ok(()) => {
                    let g = ghost.map(&req);
                    debug_assert_eq!(g, Ok(()), "ghost diverged on map");
                }
                Err(PtError::OutOfMemory) => {}
                Err(e) => {
                    let g = ghost.map(&req);
                    debug_assert_eq!(g, Err(*e), "ghost diverged on failing map");
                }
            }
        }
        result
    }

    fn unmap_frame(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
    ) -> Result<AbsMapping, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        if !va.is_aligned(PAGE_4K) {
            return Err(PtError::MisalignedVa);
        }
        let result = Self::unmap_at(mem, alloc, self.cr3, 4, va).map(|(m, _)| m);
        if let Some(ghost) = &mut self.ghost {
            let g = ghost.unmap(va);
            debug_assert_eq!(g, result, "ghost diverged on unmap");
        }
        result
    }

    /// Amortized override of the default per-page loop: the first page of
    /// each 2 MiB-aligned chunk goes through the one-page path (full
    /// validation, directory creation, ghost lock-step), and every
    /// further 4 KiB page whose PTE lives in the same level-1 table is a
    /// single read + write into that table — the descent is reused, not
    /// repeated. Alignment and canonicality propagate 4 KiB steps inside
    /// a chunk (the canonical halves are unions of whole 2 MiB chunks),
    /// so the skipped per-page validations hold for free.
    fn map_range(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        req: MapRequest,
        pages: u64,
    ) -> Result<(), PtError> {
        let step = req.size.bytes();
        if crate::range_overflows(req.va.0, step, pages) {
            return Err(PtError::NonCanonical);
        }
        if crate::range_overflows(req.pa.0, step, pages) {
            return Err(PtError::PhysOutOfRange);
        }
        let mut done: u64 = 0;
        while done < pages {
            let head = MapRequest {
                va: VAddr(req.va.0 + done * step),
                pa: PAddr(req.pa.0 + done * step),
                ..req
            };
            if let Err(e) = self.map_frame(mem, alloc, head) {
                self.unmap_mapped_prefix(mem, alloc, &req, done);
                return Err(e);
            }
            done += 1;
            if req.size != PageSize::Size4K {
                continue;
            }
            let Some(l1) = Self::walk_to_l1(mem, self.cr3, head.va) else {
                continue;
            };
            while done < pages {
                let va = VAddr(req.va.0 + done * step);
                if va.0 >> 21 != head.va.0 >> 21 {
                    break;
                }
                let pa = PAddr(req.pa.0 + done * step);
                let page = MapRequest { va, pa, ..req };
                let slot = entry_addr(l1, index_at(va, 1));
                if PtEntry(mem.read_u64(slot)).is_present() {
                    if let Some(ghost) = &mut self.ghost {
                        let g = ghost.map(&page);
                        debug_assert_eq!(
                            g,
                            Err(PtError::AlreadyMapped),
                            "ghost diverged on failing map"
                        );
                    }
                    self.unmap_mapped_prefix(mem, alloc, &req, done);
                    return Err(PtError::AlreadyMapped);
                }
                mem.write_u64(slot, encode_leaf(pa, PageSize::Size4K, req.flags).0);
                if let Some(ghost) = &mut self.ghost {
                    let g = ghost.map(&page);
                    debug_assert_eq!(g, Ok(()), "ghost diverged on map");
                }
                done += 1;
            }
        }
        Ok(())
    }

    /// Amortized override mirroring `map_range`: middle slots of each
    /// level-1 chunk are cleared with one read + write into the cached
    /// table; the first and last in-range slot of every chunk go through
    /// the one-page path, so an emptied level-1 table still gets its
    /// directories pruned (the no-empty-dirs invariant holds on return,
    /// success or rollback).
    fn unmap_range(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut dyn FrameSource,
        va: VAddr,
        pages: u64,
    ) -> Result<Vec<AbsMapping>, PtError> {
        if crate::range_overflows(va.0, PAGE_4K, pages) {
            return Err(PtError::NonCanonical);
        }
        let mut removed: Vec<AbsMapping> = Vec::new();
        while (removed.len() as u64) < pages {
            let head = VAddr(va.0 + removed.len() as u64 * PAGE_4K);
            match self.unmap_frame(mem, alloc, head) {
                Ok(m) => removed.push(m),
                Err(e) => {
                    self.remap_removed_prefix(mem, alloc, va, &removed);
                    return Err(e);
                }
            }
            // A pruned path or a removed huge mapping leaves no level-1
            // table to reuse; the next chunk head descends again.
            let Some(l1) = Self::walk_to_l1(mem, self.cr3, head) else {
                continue;
            };
            loop {
                let i = removed.len() as u64;
                if i >= pages {
                    break;
                }
                let cur = VAddr(va.0 + i * PAGE_4K);
                if cur.0 >> 21 != head.0 >> 21 {
                    break;
                }
                let last_of_chunk = i + 1 >= pages
                    || (va.0 + (i + 1) * PAGE_4K) >> 21 != head.0 >> 21;
                if last_of_chunk {
                    match self.unmap_frame(mem, alloc, cur) {
                        Ok(m) => removed.push(m),
                        Err(e) => {
                            self.remap_removed_prefix(mem, alloc, va, &removed);
                            return Err(e);
                        }
                    }
                    break;
                }
                let slot = entry_addr(l1, index_at(cur, 1));
                let entry = PtEntry(mem.read_u64(slot));
                if !entry.is_present() {
                    if let Some(ghost) = &mut self.ghost {
                        let g = ghost.unmap(cur);
                        debug_assert_eq!(
                            g,
                            Err(PtError::NotMapped),
                            "ghost diverged on failing unmap"
                        );
                    }
                    self.remap_removed_prefix(mem, alloc, va, &removed);
                    return Err(PtError::NotMapped);
                }
                let m = AbsMapping {
                    pa: entry.addr().0,
                    size: PageSize::Size4K,
                    flags: decode_leaf(entry),
                };
                mem.write_u64(slot, PtEntry::zero().0);
                if let Some(ghost) = &mut self.ghost {
                    let g = ghost.unmap(cur);
                    debug_assert_eq!(g, Ok(m), "ghost diverged on unmap");
                }
                removed.push(m);
            }
        }
        Ok(removed)
    }

    fn resolve(&self, mem: &PhysMem, va: VAddr) -> Result<ResolveAnswer, PtError> {
        if !va.is_canonical() {
            return Err(PtError::NonCanonical);
        }
        let result = Self::resolve_at(mem, self.cr3, 4, va);
        if let Some(ghost) = &self.ghost {
            debug_assert_eq!(ghost.resolve(va), result, "ghost diverged on resolve");
        }
        result
    }

    fn root(&self) -> PAddr {
        self.cr3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_hw::StackFrameSource;

    fn setup() -> (PhysMem, StackFrameSource) {
        // 1024 frames of memory; frames 16..512 are allocatable.
        (
            PhysMem::new(1024),
            StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(512 * PAGE_4K)),
        )
    }

    #[test]
    fn map_resolve_round_trip() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        let r = pt.resolve(&mem, VAddr(0x1abc)).unwrap();
        assert_eq!(r.pa, PAddr(0x8abc));
        assert_eq!(r.flags, MapFlags::user_rw());
    }

    #[test]
    fn mmu_walk_agrees_with_resolve() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x7000, 0x9000))
            .unwrap();
        let m = veros_hw::walk(&mem, pt.root(), VAddr(0x7010)).unwrap();
        assert_eq!(m.pa_base, PAddr(0x9000));
        assert!(m.writable && m.user && m.nx);
        let r = pt.resolve(&mem, VAddr(0x7010)).unwrap();
        assert_eq!(m.translate(VAddr(0x7010)), r.pa);
    }

    #[test]
    fn unmap_frees_empty_directories() {
        let (mut mem, mut alloc) = setup();
        let before = alloc.free_frames();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        assert_eq!(alloc.free_frames(), before - 4, "root + 3 directories");
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x1000)).unwrap();
        assert_eq!(alloc.free_frames(), before - 1, "only the root remains");
        pt.destroy(&mut mem, &mut alloc);
        assert_eq!(alloc.free_frames(), before, "no leaked frames");
    }

    #[test]
    fn shared_directories_survive_partial_unmap() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000))
            .unwrap();
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x2000, 0x9000))
            .unwrap();
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x1000)).unwrap();
        // 0x2000 shares all three directories: still resolvable.
        assert_eq!(pt.resolve(&mem, VAddr(0x2000)).unwrap().pa, PAddr(0x9000));
    }

    #[test]
    fn huge_page_map_and_conflicts() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let huge = MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_ro(),
        };
        pt.map_frame(&mut mem, &mut alloc, huge).unwrap();
        assert_eq!(
            pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x20_1000, 0x1000)),
            Err(PtError::AlreadyMapped)
        );
        let r = pt.resolve(&mem, VAddr(0x21_0123)).unwrap();
        assert_eq!(r.pa, PAddr(0x41_0123));
        assert_eq!(r.size, PageSize::Size2M);
        assert_eq!(r.flags, MapFlags::user_ro());
        // The MMU agrees, including the huge mapping's span.
        let m = veros_hw::walk(&mem, pt.root(), VAddr(0x21_0123)).unwrap();
        assert_eq!(m.size, PageSize::Size2M.bytes());
        assert!(!m.writable);
    }

    #[test]
    fn gig_page_round_trip() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let gig = MapRequest {
            va: VAddr(0x4000_0000),
            pa: PAddr(0x4000_0000),
            size: PageSize::Size1G,
            flags: MapFlags::kernel_rw(),
        };
        pt.map_frame(&mut mem, &mut alloc, gig).unwrap();
        let r = pt.resolve(&mem, VAddr(0x4abc_d123)).unwrap();
        assert_eq!(r.pa, PAddr(0x4abc_d123));
        let m = pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x4000_0000)).unwrap();
        assert_eq!(m.size, PageSize::Size1G);
    }

    #[test]
    fn error_cases_match_spec() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        assert_eq!(
            pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1001, 0x8000)),
            Err(PtError::MisalignedVa)
        );
        assert_eq!(
            pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8001)),
            Err(PtError::MisalignedPa)
        );
        assert_eq!(
            pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x5000)),
            Err(PtError::NotMapped)
        );
        assert_eq!(pt.resolve(&mem, VAddr(0x5000)), Err(PtError::NotMapped));
        assert_eq!(
            pt.resolve(&mem, VAddr(0x0000_9000_0000_0000)),
            Err(PtError::NonCanonical)
        );
    }

    #[test]
    fn out_of_memory_rolls_back_cleanly() {
        let mut mem = PhysMem::new(64);
        // Only two frames: root plus one directory — not enough for a
        // full 4-level path.
        let mut alloc = StackFrameSource::new(PAddr(0x1000), PAddr(0x3000));
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        assert_eq!(
            pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1000, 0x8000)),
            Err(PtError::OutOfMemory)
        );
        // The partially allocated chain was rolled back.
        assert_eq!(alloc.free_frames(), 1);
        // The table is still structurally sound and empty.
        assert!(veros_hw::interpret_page_table(&mem, pt.root()).is_empty());
        assert_eq!(pt.ghost().unwrap().flatten().len(), 0);
    }

    #[test]
    fn flag_encoding_round_trips_for_all_combinations() {
        for flags in MapFlags::all_combinations() {
            let e = encode_leaf(PAddr(0x8000), PageSize::Size4K, flags);
            assert_eq!(decode_leaf(e), flags);
            let h = encode_leaf(PAddr(0x20_0000), PageSize::Size2M, flags);
            assert!(h.is_huge());
            assert_eq!(decode_leaf(h), flags);
        }
    }

    #[test]
    fn boundary_indices_work() {
        // Index 511 at every level — the edge of each table.
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let va = VAddr::from_indices(255, 511, 511, 511);
        pt.map_frame(
            &mut mem,
            &mut alloc,
            MapRequest {
                va,
                pa: PAddr(0x8000),
                size: PageSize::Size4K,
                flags: MapFlags::user_rw(),
            },
        )
        .unwrap();
        assert_eq!(pt.resolve(&mem, va).unwrap().pa, PAddr(0x8000));
        assert_eq!(pt.unmap_frame(&mut mem, &mut alloc, va).unwrap().pa, 0x8000);
    }

    #[test]
    fn map_range_round_trips_across_chunk_boundary() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        // 8 pages straddling the 2 MiB chunk boundary at 0x20_0000:
        // exercises both the amortized tail and a fresh chunk-head
        // descent mid-range.
        let req = MapRequest::rw_4k(0x20_0000 - 4 * 0x1000, 0x80_0000);
        pt.map_range(&mut mem, &mut alloc, req, 8).unwrap();
        for i in 0..8u64 {
            let r = pt.resolve(&mem, VAddr(req.va.0 + i * 0x1000 + 0x123)).unwrap();
            assert_eq!(r.pa, PAddr(req.pa.0 + i * 0x1000 + 0x123));
        }
        assert_eq!(pt.ghost().unwrap().flatten().len(), 8);
        let removed = pt.unmap_range(&mut mem, &mut alloc, req.va, 8).unwrap();
        assert_eq!(removed.len(), 8);
        for (i, m) in removed.iter().enumerate() {
            assert_eq!(m.pa, req.pa.0 + i as u64 * 0x1000);
            assert_eq!(m.size, PageSize::Size4K);
        }
        assert_eq!(pt.ghost().unwrap().flatten().len(), 0);
        assert_eq!(pt.resolve(&mem, req.va), Err(PtError::NotMapped));
    }

    #[test]
    fn map_range_failure_rolls_back_everything() {
        let (mut mem, mut alloc) = setup();
        let free_empty = alloc.free_frames();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        // Pre-existing page in the middle of the target range.
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x5000, 0x9000))
            .unwrap();
        let held = alloc.free_frames();
        let req = MapRequest::rw_4k(0x1000, 0x80_0000);
        assert_eq!(
            pt.map_range(&mut mem, &mut alloc, req, 8),
            Err(PtError::AlreadyMapped)
        );
        // Nothing from the failed range survives: only the pre-existing
        // page is mapped and no directory frames leaked.
        assert_eq!(alloc.free_frames(), held);
        assert_eq!(pt.ghost().unwrap().flatten().len(), 1);
        assert_eq!(pt.resolve(&mem, VAddr(0x1000)), Err(PtError::NotMapped));
        assert_eq!(pt.resolve(&mem, VAddr(0x5000)).unwrap().pa, PAddr(0x9000));
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x5000)).unwrap();
        pt.destroy(&mut mem, &mut alloc);
        assert_eq!(alloc.free_frames(), free_empty);
    }

    #[test]
    fn unmap_range_failure_rolls_back_removed_prefix() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let req = MapRequest::rw_4k(0x1000, 0x80_0000);
        pt.map_range(&mut mem, &mut alloc, req, 6).unwrap();
        // Punch a hole at slot 3, then try to unmap all 6 slots.
        pt.unmap_frame(&mut mem, &mut alloc, VAddr(0x4000)).unwrap();
        assert_eq!(
            pt.unmap_range(&mut mem, &mut alloc, VAddr(0x1000), 6),
            Err(PtError::NotMapped)
        );
        // The removed prefix (slots 0..3) came back.
        for i in [0u64, 1, 2, 4, 5] {
            let r = pt.resolve(&mem, VAddr(0x1000 + i * 0x1000)).unwrap();
            assert_eq!(r.pa, PAddr(0x80_0000 + i * 0x1000));
        }
        assert_eq!(pt.ghost().unwrap().flatten().len(), 5);
    }

    #[test]
    fn map_range_frees_directories_like_per_page_loop() {
        // The amortized version must be observationally identical to the
        // per-page default: same resolves, same frame accounting.
        let (mut mem, mut alloc) = setup();
        let before = alloc.free_frames();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let req = MapRequest::rw_4k(0x3f_e000, 0x100_0000); // crosses a chunk edge
        pt.map_range(&mut mem, &mut alloc, req, 520).unwrap();
        let (mut mem2, mut alloc2) = setup();
        let mut ref_pt = VerifiedPageTable::new(&mut mem2, &mut alloc2, true).unwrap();
        for i in 0..520u64 {
            ref_pt
                .map_frame(
                    &mut mem2,
                    &mut alloc2,
                    MapRequest::rw_4k(req.va.0 + i * 0x1000, req.pa.0 + i * 0x1000),
                )
                .unwrap();
        }
        assert_eq!(alloc.free_frames(), alloc2.free_frames());
        for i in (0..520u64).step_by(37) {
            let va = VAddr(req.va.0 + i * 0x1000);
            assert_eq!(pt.resolve(&mem, va), ref_pt.resolve(&mem2, va));
        }
        let removed = pt.unmap_range(&mut mem, &mut alloc, req.va, 520).unwrap();
        assert_eq!(removed.len(), 520);
        pt.destroy(&mut mem, &mut alloc);
        assert_eq!(alloc.free_frames(), before);
    }

    #[test]
    fn unmap_range_removing_huge_mapping_at_last_slot() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        // A 4 KiB page followed by... a huge mapping based at the next
        // chunk: unmap_range over [page, huge_base] removes both (the
        // huge one whole), per the slot-by-slot spec.
        pt.map_frame(&mut mem, &mut alloc, MapRequest::rw_4k(0x1f_f000, 0x8000))
            .unwrap();
        let huge = MapRequest {
            va: VAddr(0x20_0000),
            pa: PAddr(0x40_0000),
            size: PageSize::Size2M,
            flags: MapFlags::user_ro(),
        };
        pt.map_frame(&mut mem, &mut alloc, huge).unwrap();
        let removed = pt
            .unmap_range(&mut mem, &mut alloc, VAddr(0x1f_f000), 2)
            .unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[1].size, PageSize::Size2M);
        assert_eq!(pt.ghost().unwrap().flatten().len(), 0);
    }

    #[test]
    fn range_overflow_is_rejected_up_front() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let req = MapRequest::rw_4k(0xffff_ffff_ffff_f000, 0x8000);
        assert_eq!(
            pt.map_range(&mut mem, &mut alloc, req, u64::MAX),
            Err(PtError::NonCanonical)
        );
        assert_eq!(
            pt.unmap_range(&mut mem, &mut alloc, VAddr(0xffff_ffff_ffff_f000), u64::MAX),
            Err(PtError::NonCanonical)
        );
    }

    #[test]
    fn high_half_addresses_work() {
        let (mut mem, mut alloc) = setup();
        let mut pt = VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let va = VAddr(0xffff_8000_0010_0000);
        pt.map_frame(
            &mut mem,
            &mut alloc,
            MapRequest {
                va,
                pa: PAddr(0x8000),
                size: PageSize::Size4K,
                flags: MapFlags::kernel_rw(),
            },
        )
        .unwrap();
        assert_eq!(pt.resolve(&mem, va + 5).unwrap().pa, PAddr(0x8005));
        let interp = veros_hw::interpret_page_table(&mem, pt.root());
        assert!(interp.contains_key(&va));
    }
}
