//! Bounded differential refinement of the implementations.
//!
//! The prefix-tree → flat-map step is checked by genuine forward
//! simulation ([`crate::prefix_tree::TreeToFlat`]). The implementation →
//! prefix-tree step involves states (physical memory contents) that are
//! too heavy to hash into an explored state set, so it is checked
//! *differentially*: enumerate every operation sequence from a finite
//! universe up to a depth bound, apply it in lock-step to the
//! implementation and to the spec, and require identical observable
//! results at every step. For a deterministic implementation this is
//! exactly bounded refinement checking; the bounds are part of the VC
//! record.

use veros_hw::{PAddr, PhysMem, StackFrameSource, VAddr, PAGE_4K};

use crate::high_spec::HighSpec;
use crate::ops::{MapFlags, MapRequest, PageSize, PtError, PtOp};
use crate::{PageTableOps, UnverifiedPageTable, VerifiedPageTable};

/// Which implementation to check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Impl {
    /// The layered, ghost-carrying implementation.
    Verified,
    /// The NrOS-style baseline.
    Unverified,
}

/// A finite operation universe for bounded checking.
#[derive(Clone, Debug)]
pub struct OpUniverse {
    /// The candidate operations.
    pub ops: Vec<PtOp>,
}

impl OpUniverse {
    /// A universe exercising all three sizes, conflicts, boundary
    /// indices, and both halves of the canonical space.
    pub fn rich() -> Self {
        let mut ops = vec![
            PtOp::Map(MapRequest::rw_4k(0x1000, 0x8000)),
            PtOp::Map(MapRequest::rw_4k(0x2000, 0x9000)),
            PtOp::Map(MapRequest {
                va: VAddr(0x20_0000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_ro(),
            }),
            // Conflicts with the 2 MiB page above once mapped.
            PtOp::Map(MapRequest::rw_4k(0x20_1000, 0xa000)),
            PtOp::Map(MapRequest {
                va: VAddr(0x4000_0000),
                pa: PAddr(0x8000_0000),
                size: PageSize::Size1G,
                flags: MapFlags::kernel_rw(),
            }),
            // High-half kernel mapping.
            PtOp::Map(MapRequest {
                va: VAddr(0xffff_8000_0000_0000),
                pa: PAddr(0xb000),
                size: PageSize::Size4K,
                flags: MapFlags::kernel_rw(),
            }),
        ];
        for va in [
            0x1000u64,
            0x2000,
            0x20_0000,
            0x20_1000,
            0x4000_0000,
            0xffff_8000_0000_0000,
        ] {
            ops.push(PtOp::Unmap(VAddr(va)));
            ops.push(PtOp::Resolve(VAddr(va + 0x123)));
        }
        Self { ops }
    }

    /// A smaller universe for quick (debug-profile) runs.
    pub fn small() -> Self {
        let ops = vec![
            PtOp::Map(MapRequest::rw_4k(0x1000, 0x8000)),
            PtOp::Map(MapRequest {
                va: VAddr(0x20_0000),
                pa: PAddr(0x40_0000),
                size: PageSize::Size2M,
                flags: MapFlags::user_rw(),
            }),
            PtOp::Map(MapRequest::rw_4k(0x20_1000, 0xa000)),
            PtOp::Unmap(VAddr(0x1000)),
            PtOp::Unmap(VAddr(0x20_0000)),
            PtOp::Resolve(VAddr(0x1080)),
            PtOp::Resolve(VAddr(0x20_0040)),
        ];
        Self { ops }
    }
}

struct World {
    mem: PhysMem,
    alloc: StackFrameSource,
    verified: Option<VerifiedPageTable>,
    unverified: Option<UnverifiedPageTable>,
}

fn fresh_world(which: Impl) -> World {
    let mut mem = PhysMem::new(1024);
    let mut alloc = StackFrameSource::new(PAddr(16 * PAGE_4K), PAddr(1024 * PAGE_4K));
    let (verified, unverified) = match which {
        Impl::Verified => (
            // lint: allow(panic-freedom) — checker-harness setup: the
            // fresh 1024-frame arena always has a root frame, and an
            // allocation failure here is a harness bug, not a result.
            Some(VerifiedPageTable::new(&mut mem, &mut alloc, true).expect("root frame")),
            None,
        ),
        Impl::Unverified => (
            None,
            // lint: allow(panic-freedom) — same harness setup as above.
            Some(UnverifiedPageTable::new(&mut mem, &mut alloc).expect("root frame")),
        ),
    };
    World {
        mem,
        alloc,
        verified,
        unverified,
    }
}

fn apply_impl(world: &mut World, op: &PtOp) -> Result<Option<crate::ops::ResolveAnswer>, PtError> {
    let World {
        mem,
        alloc,
        verified,
        unverified,
    } = world;
    let pt: &mut dyn PageTableOps = match (verified, unverified) {
        (Some(v), _) => v,
        (_, Some(u)) => u,
        _ => unreachable!(),
    };
    match op {
        PtOp::Map(req) => pt.map_frame(mem, alloc, *req).map(|()| None),
        PtOp::Unmap(va) => pt.unmap_frame(mem, alloc, *va).map(|m| {
            Some(crate::ops::ResolveAnswer {
                pa: PAddr(m.pa),
                base: *va,
                size: m.size,
                flags: m.flags,
            })
        }),
        PtOp::Resolve(va) => pt.resolve(mem, *va).map(Some),
    }
}

/// Enumerates every op sequence of length `depth` from `universe`
/// (by replay — the implementation is deterministic) and checks that the
/// implementation's observable behaviour matches the high-level spec at
/// every step: same `Ok`/`Err` with the same payload, and after every
/// step the MMU interpretation of the in-memory table equals the spec
/// map.
///
/// Returns the number of `(sequence, step)` checks performed.
pub fn differential_vs_spec(
    which: Impl,
    universe: &OpUniverse,
    depth: usize,
    check_interp_each_step: bool,
) -> Result<usize, String> {
    let mut checks = 0usize;
    let n = universe.ops.len();
    let mut seq = vec![0usize; depth];
    loop {
        // Replay this sequence.
        let mut world = fresh_world(which);
        let mut spec = HighSpec::new();
        for (step, &op_idx) in seq.iter().enumerate() {
            let op = &universe.ops[op_idx];
            let got = apply_impl(&mut world, op);
            let want = spec.apply(op);
            checks += 1;
            if got != want {
                return Err(format!(
                    "step {step} of {seq:?}: op {op:?} -> impl {got:?}, spec {want:?}"
                ));
            }
            if check_interp_each_step {
                let root = match (&world.verified, &world.unverified) {
                    (Some(v), _) => v.root(),
                    (_, Some(u)) => u.root(),
                    _ => unreachable!(),
                };
                crate::interp::interpretation_matches(&world.mem, root, &spec)
                    .map_err(|e| format!("after step {step} of {seq:?}: {e}"))?;
            }
        }
        // Next sequence in lexicographic order.
        let mut i = depth;
        loop {
            if i == 0 {
                return Ok(checks);
            }
            i -= 1;
            seq[i] += 1;
            if seq[i] < n {
                break;
            }
            seq[i] = 0;
        }
    }
}

/// Randomized long-run differential check: applies `steps` random ops
/// from a generated universe to the implementation and the spec,
/// verifying observable equality (and final interpretation equality).
pub fn randomized_vs_spec(which: Impl, seed: u64, steps: usize) -> Result<usize, String> {
    randomized_audit(which, seed, steps, 0, 0)
}

/// Like [`randomized_vs_spec`], additionally re-checking the MMU
/// interpretation every `interp_every` steps and the structural
/// invariants every `structure_every` steps (0 disables the periodic
/// check; both always run once at the end).
pub fn randomized_audit(
    which: Impl,
    seed: u64,
    steps: usize,
    interp_every: usize,
    structure_every: usize,
) -> Result<usize, String> {
    let mut rng = veros_spec::rng::SpecRng::seeded(seed);
    let mut world = fresh_world(which);
    let mut spec = HighSpec::new();
    // A pool of virtual bases across subtrees, plus sizes.
    let vas: Vec<u64> = (0..24)
        .map(|i| {
            let l4 = [0u64, 1, 255, 256, 300][i % 5];
            let l3 = (i as u64 * 7) % 512;
            let l2 = (i as u64 * 13) % 512;
            let l1 = (i as u64 * 29) % 512;
            VAddr::from_indices(l4 as usize, l3 as usize, l2 as usize, l1 as usize).0
        })
        .collect();
    for step in 0..steps {
        let op = match rng.below(10) {
            0..=4 => {
                let va = *rng.choose(&vas);
                let size = match rng.below(12) {
                    0 => PageSize::Size1G,
                    1 | 2 => PageSize::Size2M,
                    _ => PageSize::Size4K,
                };
                let va = va & !(size.bytes() - 1);
                // Keep high-half addresses canonical after alignment.
                let pa = rng.below(1 << 20) * size.bytes() % (1 << 40);
                let flags = *rng.choose(&MapFlags::all_combinations());
                PtOp::Map(MapRequest {
                    va: VAddr(va),
                    pa: PAddr(pa & !(size.bytes() - 1)),
                    size,
                    flags,
                })
            }
            5..=7 => {
                // Unmap an existing base half the time, a random one
                // otherwise.
                if rng.chance(1, 2) && !spec.map.is_empty() {
                    let keys: Vec<u64> = spec.map.keys().copied().collect();
                    PtOp::Unmap(VAddr(*rng.choose(&keys)))
                } else {
                    PtOp::Unmap(VAddr(*rng.choose(&vas)))
                }
            }
            _ => PtOp::Resolve(VAddr(rng.choose(&vas) + rng.below(PAGE_4K))),
        };
        let got = apply_impl(&mut world, &op);
        let want = spec.apply(&op);
        if got != want {
            return Err(format!(
                "seed {seed} step {step}: op {op:?} -> impl {got:?}, spec {want:?}"
            ));
        }
        let root = match (&world.verified, &world.unverified) {
            (Some(v), _) => v.root(),
            (_, Some(u)) => u.root(),
            _ => unreachable!(),
        };
        if interp_every != 0 && step % interp_every == 0 {
            crate::interp::interpretation_matches(&world.mem, root, &spec)
                .map_err(|e| format!("seed {seed} step {step} interpretation: {e}"))?;
        }
        if structure_every != 0 && step % structure_every == 0 {
            crate::invariants::check_structure(&world.mem, root)
                .map_err(|e| format!("seed {seed} step {step} structure: {e}"))?;
        }
    }
    let root = match (&world.verified, &world.unverified) {
        (Some(v), _) => v.root(),
        (_, Some(u)) => u.root(),
        _ => unreachable!(),
    };
    crate::interp::interpretation_matches(&world.mem, root, &spec)
        .map_err(|e| format!("seed {seed} final interpretation: {e}"))?;
    crate::invariants::check_structure(&world.mem, root)
        .map_err(|e| format!("seed {seed} final structure: {e}"))?;
    if let Some(v) = &world.verified {
        // View correspondence: the implementation's ghost view (the
        // paper's `view()`) is exactly the spec map.
        // lint: allow(panic-freedom) — `fresh_world` constructed the
        // verified table with audit mode on, so the ghost view exists.
        let ghost = v.ghost().expect("audit mode");
        if ghost.flatten() != spec.map {
            return Err(format!("seed {seed}: ghost view diverged from spec map"));
        }
        if !ghost.wf() {
            return Err(format!("seed {seed}: ghost tree not well-formed"));
        }
    }
    Ok(steps)
}

/// Differential check of the two implementations against each other:
/// identical op sequences must produce identical results and identical
/// MMU interpretations (this is the "verified == unverified semantics"
/// claim underlying the Fig 1b/1c comparison).
pub fn verified_vs_unverified(seed: u64, steps: usize) -> Result<(), String> {
    let mut rng_a = veros_spec::rng::SpecRng::seeded(seed);
    // Drive both from the same op stream by regenerating with the same
    // seed through the spec-guided generator: reuse randomized_vs_spec's
    // logic indirectly by comparing both against the spec.
    randomized_vs_spec(Impl::Verified, seed, steps)?;
    randomized_vs_spec(Impl::Unverified, seed, steps)?;
    let _ = &mut rng_a;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_differential_small_depth2() {
        let n = differential_vs_spec(Impl::Verified, &OpUniverse::small(), 2, true).unwrap();
        assert_eq!(n, 7 * 7 * 2);
    }

    #[test]
    fn bounded_differential_unverified_depth2() {
        differential_vs_spec(Impl::Unverified, &OpUniverse::small(), 2, true).unwrap();
    }

    #[test]
    fn bounded_differential_depth3_no_interp() {
        // Depth 3 over the small universe, result-equality only (the
        // per-step interpretation is the expensive part).
        differential_vs_spec(Impl::Verified, &OpUniverse::small(), 3, false).unwrap();
    }

    #[test]
    fn randomized_differential_short() {
        randomized_vs_spec(Impl::Verified, 1, 200).unwrap();
        randomized_vs_spec(Impl::Unverified, 1, 200).unwrap();
    }

    #[test]
    fn implementations_agree() {
        verified_vs_unverified(7, 150).unwrap();
    }
}
