//! The interpretation obligation: bits in memory ⇔ abstract map.
//!
//! "This correspondence represents the lion's share of the proof effort,
//! as it requires us to map from a multi-level tree structure encoded as
//! bits to a flat abstract data type" (Section 5). Here the MMU's
//! interpretation function ([`veros_hw::interpret_page_table`]) is run
//! over the implementation's in-memory table and compared, entry by
//! entry, against the high-level spec map — including the *effective*
//! permissions the hardware would accumulate along the walk.
//!
//! The TLB-coherence checks additionally verify the stale-translation
//! semantics: translations through a [`veros_hw::Machine`] match the
//! spec map provided the required invalidations were issued, and the
//! deliberately-missing-invlpg case is observably incoherent (a negative
//! check that the hardware model is not vacuously forgiving).

use veros_hw::{interpret_page_table, PAddr, PhysMem, VAddr};

use crate::high_spec::HighSpec;
use crate::ops::PtError;

/// Checks that the MMU's interpretation of the table rooted at `root`
/// equals `spec.map`, in both directions, with matching permissions.
pub fn interpretation_matches(mem: &PhysMem, root: PAddr, spec: &HighSpec) -> Result<(), String> {
    let interp = interpret_page_table(mem, root);
    if interp.len() != spec.map.len() {
        return Err(format!(
            "interpretation has {} mappings, spec has {}",
            interp.len(),
            spec.map.len()
        ));
    }
    for (va, m) in &spec.map {
        let Some(hw) = interp.get(&VAddr(*va)) else {
            return Err(format!("spec maps {va:#x} but the MMU does not"));
        };
        if hw.pa_base.0 != m.pa {
            return Err(format!(
                "{va:#x}: MMU translates to {} but spec says {:#x}",
                hw.pa_base, m.pa
            ));
        }
        if hw.size != m.size.bytes() {
            return Err(format!(
                "{va:#x}: MMU size {} != spec size {}",
                hw.size,
                m.size.bytes()
            ));
        }
        if hw.writable != m.flags.writable || hw.user != m.flags.user || hw.nx != m.flags.nx {
            return Err(format!(
                "{va:#x}: effective permissions (w={},u={},nx={}) != spec ({},{},{})",
                hw.writable, hw.user, hw.nx, m.flags.writable, m.flags.user, m.flags.nx
            ));
        }
    }
    Ok(())
}

/// Checks per-address translation: for each probe address, walking the
/// hardware table gives exactly what the spec's `resolve` gives.
pub fn walk_matches_resolve(
    mem: &PhysMem,
    root: PAddr,
    spec: &HighSpec,
    probes: &[VAddr],
) -> Result<(), String> {
    for &va in probes {
        let hw = veros_hw::walk(mem, root, va);
        let sp = spec.resolve(va);
        match (hw, sp) {
            (Ok(m), Ok(r)) => {
                if m.translate(va) != r.pa {
                    return Err(format!(
                        "{va}: walk gives {}, spec resolve gives {}",
                        m.translate(va),
                        r.pa
                    ));
                }
            }
            (Err(_), Err(PtError::NotMapped)) => {}
            (Err(veros_hw::WalkError::NonCanonical), Err(PtError::NonCanonical)) => {}
            (hw, sp) => {
                return Err(format!("{va}: walk {hw:?} vs spec resolve {sp:?}"));
            }
        }
    }
    Ok(())
}

/// TLB coherence: a machine that issues `invlpg` after every unmap (and
/// nothing after map, which only *adds* translations) always translates
/// according to the current spec map.
///
/// Returns the number of translations checked.
pub fn tlb_coherent_with_shootdown(seed: u64, steps: usize) -> Result<usize, String> {
    use crate::ops::{MapFlags, MapRequest, PageSize};
    use crate::PageTableOps;

    let mut rng = veros_spec::rng::SpecRng::seeded(seed);
    let mut machine = veros_hw::Machine::new(2048, 8);
    let mut alloc = veros_hw::StackFrameSource::new(
        PAddr(16 * veros_hw::PAGE_4K),
        PAddr(1024 * veros_hw::PAGE_4K),
    );
    let mut pt =
        crate::VerifiedPageTable::new(&mut machine.mem, &mut alloc, false).map_err(|e| e.to_string())?;
    machine.load_cr3(pt.root());
    machine.user_mode = false;
    let mut spec = HighSpec::new();
    let vas: Vec<u64> = (0..8).map(|i| 0x1000 * (i + 1)).collect();
    let mut checked = 0usize;

    for step in 0..steps {
        // Random mutation.
        let va = VAddr(*rng.choose(&vas));
        if rng.chance(1, 2) {
            let req = MapRequest {
                va,
                pa: PAddr((1024 + rng.below(512)) * veros_hw::PAGE_4K),
                size: PageSize::Size4K,
                flags: MapFlags {
                    writable: true,
                    user: false,
                    nx: true,
                },
            };
            let r = pt.map_frame(&mut machine.mem, &mut alloc, req);
            if r.is_ok() {
                spec.apply_map(&req).map_err(|e| format!("spec diverged: {e}"))?;
            }
        } else {
            let r = pt.unmap_frame(&mut machine.mem, &mut alloc, va);
            if r.is_ok() {
                spec.apply_unmap(va).map_err(|e| format!("spec diverged: {e}"))?;
                // The required shootdown.
                machine.tlb.invlpg(va);
            }
        }
        // Probe all addresses through the TLB-enabled machine.
        for &probe in &vas {
            let probe = VAddr(probe + rng.below(veros_hw::PAGE_4K));
            let hw = machine.translate(probe, veros_hw::AccessKind::Read);
            let sp = spec.resolve(probe);
            checked += 1;
            match (hw, sp) {
                (Ok(m), Ok(r)) => {
                    if m.translate(probe) != r.pa {
                        return Err(format!(
                            "step {step}: {probe} -> hw {} vs spec {}",
                            m.translate(probe),
                            r.pa
                        ));
                    }
                }
                (Err(_), Err(_)) => {}
                (hw, sp) => return Err(format!("step {step}: {probe} -> hw {hw:?} vs spec {sp:?}")),
            }
        }
    }
    Ok(checked)
}

/// The negative check: *without* the unmap shootdown the machine serves a
/// stale translation, i.e. the hardware model genuinely caches.
pub fn tlb_incoherent_without_shootdown() -> Result<(), String> {
    use crate::ops::MapRequest;
    use crate::PageTableOps;

    let mut machine = veros_hw::Machine::new(2048, 8);
    let mut alloc = veros_hw::StackFrameSource::new(
        PAddr(16 * veros_hw::PAGE_4K),
        PAddr(1024 * veros_hw::PAGE_4K),
    );
    let mut pt = crate::VerifiedPageTable::new(&mut machine.mem, &mut alloc, false)
        .map_err(|e| e.to_string())?;
    machine.load_cr3(pt.root());
    machine.user_mode = false;
    let va = VAddr(0x1000);
    pt.map_frame(&mut machine.mem, &mut alloc, MapRequest::rw_4k(0x1000, 1024 * 4096))
        .map_err(|e| e.to_string())?;
    // Prime the TLB.
    machine
        .translate(va, veros_hw::AccessKind::Read)
        .map_err(|e| format!("{e:?}"))?;
    pt.unmap_frame(&mut machine.mem, &mut alloc, va)
        .map_err(|e| e.to_string())?;
    // No invlpg: the machine must still translate (staleness observed).
    match machine.translate(va, veros_hw::AccessKind::Read) {
        Ok(_) => Ok(()),
        Err(e) => Err(format!(
            "expected stale TLB hit after skipped shootdown, got fault {e:?} — the TLB model is vacuous"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MapRequest, PtOp};
    use crate::refine::{differential_vs_spec, Impl, OpUniverse};
    use crate::PageTableOps;
    use veros_hw::StackFrameSource;

    #[test]
    fn interpretation_matches_simple_state() {
        let mut mem = PhysMem::new(1024);
        let mut alloc = StackFrameSource::new(PAddr(16 * 4096), PAddr(512 * 4096));
        let mut pt = crate::VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let mut spec = HighSpec::new();
        for (va, pa) in [(0x1000u64, 0x8000u64), (0x2000, 0x9000), (0x40_0000, 0xa000)] {
            let req = MapRequest::rw_4k(va, pa);
            pt.map_frame(&mut mem, &mut alloc, req).unwrap();
            spec.apply_map(&req).unwrap();
        }
        interpretation_matches(&mem, pt.root(), &spec).unwrap();
    }

    #[test]
    fn interpretation_catches_divergence() {
        let mut mem = PhysMem::new(1024);
        let mut alloc = StackFrameSource::new(PAddr(16 * 4096), PAddr(512 * 4096));
        let mut pt = crate::VerifiedPageTable::new(&mut mem, &mut alloc, false).unwrap();
        let mut spec = HighSpec::new();
        let req = MapRequest::rw_4k(0x1000, 0x8000);
        pt.map_frame(&mut mem, &mut alloc, req).unwrap();
        spec.apply_map(&req).unwrap();
        // Sabotage: spec thinks another page exists.
        spec.apply_map(&MapRequest::rw_4k(0x5000, 0x8000)).unwrap();
        assert!(interpretation_matches(&mem, pt.root(), &spec).is_err());
    }

    #[test]
    fn walk_matches_resolve_on_probes() {
        let mut mem = PhysMem::new(1024);
        let mut alloc = StackFrameSource::new(PAddr(16 * 4096), PAddr(512 * 4096));
        let mut pt = crate::VerifiedPageTable::new(&mut mem, &mut alloc, true).unwrap();
        let mut spec = HighSpec::new();
        let req = MapRequest::rw_4k(0x1000, 0x8000);
        pt.map_frame(&mut mem, &mut alloc, req).unwrap();
        spec.apply_map(&req).unwrap();
        let probes: Vec<VAddr> = vec![
            VAddr(0x1000),
            VAddr(0x1fff),
            VAddr(0x2000),
            VAddr(0),
            VAddr(0x0000_8000_0000_0000),
        ];
        walk_matches_resolve(&mem, pt.root(), &spec, &probes).unwrap();
    }

    #[test]
    fn deep_differential_with_interpretation() {
        // Depth-2 over the rich universe with interpretation at every
        // step — the quick version of the heavyweight VC.
        differential_vs_spec(Impl::Verified, &OpUniverse::small(), 2, true).unwrap();
        let _ = PtOp::Resolve(VAddr(0)); // Keep the import honest.
    }

    #[test]
    fn tlb_checks() {
        let n = tlb_coherent_with_shootdown(3, 60).unwrap();
        assert!(n > 0);
        tlb_incoherent_without_shootdown().unwrap();
    }
}
