//! veros-atlas: a static dependency map from workspace code to
//! verification conditions.
//!
//! The paper's audit population grows with every VC-family expansion;
//! re-running everything on every change is the binding constraint
//! (ISSUE 6, ROADMAP "Incremental, parallel VC audit"). This crate is
//! the cheap static layer that carries the load: it parses the whole
//! workspace with the zero-dependency lexer it hosts ([`lexer`],
//! [`source`] — shared downstream by `veros-lint`), extracts an
//! item graph ([`model`]), resolves conservative callee/use edges
//! ([`graph`]), anchors every `engine.register(...)` site to a VC name
//! pattern and seed set ([`anchors`]), and computes each obligation's
//! transitive code footprint. Given a diff ([`changes`]), the audit
//! then re-runs only the VCs whose footprint the diff touches.
//!
//! The safety stance throughout: **over-approximation is free**
//! (extra edges re-run extra VCs), **under-approximation must be
//! loud** — files the parser cannot see and VC names no site pattern
//! claims are counted in [`Coverage`] and gated in CI, and changed
//! files wholly unknown to the map select *every* obligation.

pub mod access;
pub mod anchors;
pub mod changes;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod source;

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use anchors::Site;
use changes::{ChangeSet, FileChange, PathClass};
use graph::{Graph, Imports, Index};
use model::{AtlasFile, Item, ItemKind};

/// A VC's resolved code footprint: file index → merged line ranges.
pub type Footprint = BTreeMap<usize, Vec<(usize, usize)>>;

/// Map-coverage counters — the under-approximation gate.
#[derive(Debug, Default)]
pub struct Coverage {
    /// Runtime source files seen by the map.
    pub files: usize,
    /// Extracted items (excluding preambles).
    pub items: usize,
    /// Dependency edges.
    pub edges: usize,
    /// Registration sites found.
    pub sites: usize,
    /// Runtime source files with code but no extracted items — the
    /// parser is blind to them. Must stay 0.
    pub unparsed: Vec<String>,
    /// Preamble lines that look like item headers the extractor missed.
    /// Must stay 0.
    pub stray_headers: Vec<String>,
    /// Sites with no recoverable name pattern. Must stay 0.
    pub unpatterned_sites: Vec<String>,
}

/// The shared file/item/edge view of the workspace: the layer both the
/// VC dependency map and the lint protocol passes are built on.
pub struct ItemGraph {
    pub files: Vec<AtlasFile>,
    pub items: Vec<Item>,
    pub imports: Vec<Imports>,
    pub graph: Graph,
}

impl ItemGraph {
    /// Builds the graph for the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<ItemGraph> {
        Ok(Self::from_files(model::load_files(root)?))
    }

    /// Builds from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> ItemGraph {
        Self::from_files(
            sources
                .iter()
                .map(|(p, s)| AtlasFile::from_source(p, s))
                .collect(),
        )
    }

    pub fn from_files(files: Vec<AtlasFile>) -> ItemGraph {
        let mut items = Vec::new();
        for (i, f) in files.iter().enumerate() {
            model::extract_items(i, f, &mut items);
        }
        let idx = Index::build(&files, &items);
        let imports: Vec<Imports> = files.iter().map(graph::imports_of).collect();
        let graph = Graph::build(&files, &items, &idx, &imports);
        ItemGraph {
            files,
            items,
            imports,
            graph,
        }
    }

    /// Innermost non-preamble item containing 1-based `line` of `file`.
    pub fn item_at(&self, file: usize, line: usize) -> Option<usize> {
        model::innermost_item(&self.items, file, line)
    }

    /// The per-atomic-field access table over this graph's files.
    pub fn access_table(&self) -> access::AccessTable {
        access::AccessTable::build(&self.files, &self.items)
    }
}

/// The dependency map: files, items, edges, and anchored sites.
pub struct DepMap {
    pub files: Vec<AtlasFile>,
    pub items: Vec<Item>,
    pub graph: Graph,
    pub sites: Vec<Site>,
    /// (site index, pattern) for every patterned site.
    patterns: Vec<(usize, String)>,
    /// Per-site transitive footprint.
    footprints: Vec<Footprint>,
    /// Files covered by at least one site's footprint.
    covered_files: BTreeSet<usize>,
}

impl DepMap {
    /// Builds the map for the workspace rooted at `root`.
    pub fn build(root: &Path) -> io::Result<DepMap> {
        Ok(Self::from_files(model::load_files(root)?))
    }

    /// Builds from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> DepMap {
        Self::from_files(
            sources
                .iter()
                .map(|(p, s)| AtlasFile::from_source(p, s))
                .collect(),
        )
    }

    fn from_files(files: Vec<AtlasFile>) -> DepMap {
        let ItemGraph {
            files,
            items,
            imports,
            graph,
        } = ItemGraph::from_files(files);
        let idx = Index::build(&files, &items);

        let mut sites = Vec::new();
        for (i, f) in files.iter().enumerate() {
            if f.runtime_src {
                sites.extend(anchors::find_sites(i, f));
            }
        }
        let patterns: Vec<(usize, String)> = sites
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.patterns.iter().map(move |p| (i, p.clone())))
            .collect();

        // Footprint per site: closure of its seeds, rendered as line
        // ranges, plus the site's own segment lines.
        let mut footprints = Vec::with_capacity(sites.len());
        let mut covered_files = BTreeSet::new();
        for site in &sites {
            let seeds = anchors::site_seeds(site, &files, &items, &idx, &imports[site.file]);
            let closure = graph.closure(&seeds);
            let mut fp: Footprint = BTreeMap::new();
            for id in closure {
                let it = &items[id];
                fp.entry(it.file).or_default().extend(it.ranges.iter().copied());
            }
            fp.entry(site.file)
                .or_default()
                .push((site.seg_start, site.span.1));
            for (f, ranges) in fp.iter_mut() {
                *ranges = merge_ranges(std::mem::take(ranges));
                covered_files.insert(*f);
            }
            footprints.push(fp);
        }

        DepMap {
            files,
            items,
            graph,
            sites,
            patterns,
            footprints,
            covered_files,
        }
    }

    pub fn file_index(&self, rel_path: &str) -> Option<usize> {
        self.files.iter().position(|f| f.rel_path == rel_path)
    }

    /// Best-matching site indices for a VC name (longest literal-prefix
    /// pattern wins; empty when no site claims the name).
    pub fn sites_for(&self, vc_name: &str) -> Vec<usize> {
        anchors::best_matches(&self.patterns, vc_name)
    }

    /// The union footprint of a VC name across its matching sites.
    /// `None` when no site claims the name — the caller must treat the
    /// VC as unanchored (always run it, and gate on the count).
    pub fn footprint(&self, vc_name: &str) -> Option<Footprint> {
        let sites = self.sites_for(vc_name);
        if sites.is_empty() {
            return None;
        }
        let mut fp: Footprint = BTreeMap::new();
        for s in sites {
            for (f, ranges) in &self.footprints[s] {
                fp.entry(*f).or_default().extend(ranges.iter().copied());
            }
        }
        for ranges in fp.values_mut() {
            *ranges = merge_ranges(std::mem::take(ranges));
        }
        Some(fp)
    }

    /// Decides whether `vc_name` must re-run under `cs`. Conservative
    /// on every unknown: unanchored names, unknown runtime files, and
    /// runtime files no footprint covers all select the VC.
    pub fn impacted(&self, vc_name: &str, cs: &ChangeSet) -> bool {
        let fp = self.footprint(vc_name);
        for (path, change) in &cs.files {
            match changes::classify(path) {
                PathClass::Ignore => continue,
                PathClass::SelectAll => return true,
                PathClass::Code => {}
            }
            let Some(fi) = self.file_index(path) else {
                // A new/unknown .rs file: nothing can reference it yet,
                // but shipped-source additions can shadow resolution —
                // stay conservative for runtime paths.
                if model::is_runtime_src(path) {
                    return true;
                }
                continue;
            };
            if !self.files[fi].runtime_src {
                continue;
            }
            if !self.covered_files.contains(&fi) {
                // A runtime file invisible to every footprint: the map
                // cannot bound its effect.
                return true;
            }
            let Some(fp) = &fp else { return true };
            let Some(ranges) = fp.get(&fi) else { continue };
            match change {
                FileChange::Whole => return true,
                FileChange::Ranges(touched) => {
                    if touched.iter().any(|&(a, b)| {
                        ranges.iter().any(|&(c, d)| a <= d && c <= b)
                    }) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Selection over a full name list: `true` = run.
    pub fn select(&self, names: &[String], cs: &ChangeSet) -> Vec<bool> {
        names.iter().map(|n| self.impacted(n, cs)).collect()
    }

    /// Human-readable footprint report for `--explain`.
    pub fn explain(&self, vc_name: &str) -> Option<String> {
        let sites = self.sites_for(vc_name);
        if sites.is_empty() {
            return None;
        }
        let fp = self.footprint(vc_name)?;
        let mut out = String::new();
        out.push_str(&format!("{vc_name}\n"));
        for s in &sites {
            let site = &self.sites[*s];
            out.push_str(&format!(
                "  site: {}:{}..{} (pattern `{}`)\n",
                self.files[site.file].rel_path,
                site.span.0,
                site.span.1,
                if site.patterns.is_empty() {
                    "-".to_string()
                } else {
                    site.patterns.join("`, `")
                },
            ));
            for cov in &site.covers {
                out.push_str(&format!("  covers: {cov}\n"));
            }
        }
        let total: usize = fp
            .values()
            .flat_map(|rs| rs.iter().map(|&(a, b)| b - a + 1))
            .sum();
        out.push_str(&format!(
            "  footprint: {} files, {} lines\n",
            fp.len(),
            total
        ));
        for (f, ranges) in &fp {
            let spans: Vec<String> = ranges
                .iter()
                .map(|&(a, b)| if a == b { format!("{a}") } else { format!("{a}-{b}") })
                .collect();
            out.push_str(&format!(
                "    {}: {}\n",
                self.files[*f].rel_path,
                spans.join(",")
            ));
        }
        Some(out)
    }

    /// Coverage counters for the CI gate.
    pub fn coverage(&self) -> Coverage {
        let mut cov = Coverage {
            sites: self.sites.len(),
            items: self
                .items
                .iter()
                .filter(|i| i.kind != ItemKind::Preamble)
                .count(),
            edges: self.graph.edges.iter().map(BTreeSet::len).sum(),
            ..Coverage::default()
        };
        for (i, f) in self.files.iter().enumerate() {
            if !f.runtime_src {
                continue;
            }
            cov.files += 1;
            // Pure re-export files (the root facade is all `pub use`)
            // legitimately have no items; `use` lines and attributes
            // don't count as unparseable code.
            let has_code = f.src.lines.iter().any(|l| {
                let t = l.code.trim_start();
                !l.is_code_blank()
                    && !l.is_attr()
                    && !t.starts_with("use ")
                    && !t.starts_with("pub use ")
                    && !t.starts_with("pub(crate) use ")
                    && t != "};"
                    && !t.chars().all(|c| "{}();,".contains(c) || c.is_whitespace())
            });
            let has_items = self
                .items
                .iter()
                .any(|it| it.file == i && it.kind != ItemKind::Preamble);
            if has_code && !has_items {
                cov.unparsed.push(f.rel_path.clone());
            }
            // Preamble lines that still look like definitions: the
            // extractor failed on them.
            if let Some(pre) = self
                .items
                .iter()
                .find(|it| it.file == i && it.kind == ItemKind::Preamble)
            {
                for &(a, b) in &pre.ranges {
                    for l in a..=b.min(f.src.lines.len()) {
                        let code = &f.src.lines[l - 1].code;
                        if let Some((k, _)) = model::header_of(code) {
                            if !matches!(k, ItemKind::Const | ItemKind::Mod) {
                                cov.stray_headers.push(format!("{}:{}", f.rel_path, l));
                            }
                        }
                    }
                }
            }
        }
        for site in &self.sites {
            if site.patterns.is_empty() {
                cov.unpatterned_sites
                    .push(format!("{}:{}", self.files[site.file].rel_path, site.span.0));
            }
        }
        cov
    }
}

/// Merges and sorts 1-based inclusive ranges.
fn merge_ranges(mut ranges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    ranges.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for (a, b) in ranges {
        match out.last_mut() {
            Some(last) if a <= last.1 + 1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use changes::FileChange;

    fn fixture() -> DepMap {
        DepMap::from_sources(&[
            (
                "crates/alpha/src/lib.rs",
                "//! Alpha.\npub mod inner;\npub fn entry() -> u64 { inner::work(7) }\n",
            ),
            (
                "crates/alpha/src/inner.rs",
                "//! Inner.\npub fn work(x: u64) -> u64 { x * 2 }\npub fn unused_helper() -> u64 { 9 }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "//! Beta: registers VCs over alpha.\n\
                 use veros_alpha::entry;\n\
                 use veros_spec::{VcEngine, VcKind};\n\
                 pub fn register_all(engine: &mut VcEngine) {\n\
                     engine.register(\"m\", VcKind::Property, \"alpha::entry_doubles\", || {\n\
                         if entry() == 14 { Ok(()) } else { Err(\"bad\".into()) }\n\
                     });\n\
                     for seed in 0..3u64 {\n\
                         engine.register(\"m\", VcKind::Property, format!(\"alpha::seeded_{seed}\"), move || Ok(()));\n\
                     }\n\
                 }\n",
            ),
            (
                "crates/gamma/src/lib.rs",
                "//! Gamma: unrelated.\npub fn lonely() -> u64 { 3 }\n",
            ),
        ])
    }

    #[test]
    fn items_and_sites_extracted() {
        let map = fixture();
        let cov = map.coverage();
        assert_eq!(cov.sites, 2, "two register sites");
        assert!(cov.unparsed.is_empty());
        assert!(cov.unpatterned_sites.is_empty());
        assert!(cov.stray_headers.is_empty(), "{:?}", cov.stray_headers);
        let names: Vec<&str> = map.items.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"entry"));
        assert!(names.contains(&"work"));
        assert!(names.contains(&"register_all"));
    }

    #[test]
    fn footprint_crosses_crates() {
        let map = fixture();
        let fp = map.footprint("alpha::entry_doubles").expect("anchored");
        let alpha_lib = map.file_index("crates/alpha/src/lib.rs").unwrap();
        let alpha_inner = map.file_index("crates/alpha/src/inner.rs").unwrap();
        assert!(fp.contains_key(&alpha_lib), "entry() referenced");
        assert!(fp.contains_key(&alpha_inner), "entry -> inner::work edge");
        let pat = map.footprint("alpha::seeded_1").expect("glob pattern");
        assert!(pat.contains_key(&map.file_index("crates/beta/src/lib.rs").unwrap()));
    }

    #[test]
    fn selection_respects_footprints() {
        let map = fixture();
        // Docs-only diff: nothing selected.
        let docs = ChangeSet::from_entries(&[("README.md", FileChange::Whole)]);
        assert!(!map.impacted("alpha::entry_doubles", &docs));
        // alpha's work() touched: entry_doubles selected.
        let cs = ChangeSet::from_entries(&[(
            "crates/alpha/src/inner.rs",
            FileChange::Ranges(vec![(2, 2)]),
        )]);
        assert!(map.impacted("alpha::entry_doubles", &cs));
        // gamma is covered by no footprint: conservative select-all.
        let cs = ChangeSet::from_entries(&[(
            "crates/gamma/src/lib.rs",
            FileChange::Ranges(vec![(2, 2)]),
        )]);
        assert!(map.impacted("alpha::entry_doubles", &cs));
        // Build config always selects.
        let cs = ChangeSet::from_entries(&[("Cargo.toml", FileChange::Ranges(vec![(1, 1)]))]);
        assert!(map.impacted("alpha::entry_doubles", &cs));
        // Unanchored names always run.
        let cs = ChangeSet::from_entries(&[(
            "crates/alpha/src/inner.rs",
            FileChange::Ranges(vec![(2, 2)]),
        )]);
        assert!(map.impacted("no_site::claims_this", &cs));
    }

    #[test]
    fn unused_helper_edit_selects_nothing_anchored() {
        let map = fixture();
        // inner.rs line 3 is unused_helper: no footprint overlaps it,
        // but the file itself IS covered — precise selection applies.
        let cs = ChangeSet::from_entries(&[(
            "crates/alpha/src/inner.rs",
            FileChange::Ranges(vec![(3, 3)]),
        )]);
        assert!(!map.impacted("alpha::entry_doubles", &cs));
    }

    #[test]
    fn explain_renders_footprint() {
        let map = fixture();
        let text = map.explain("alpha::entry_doubles").expect("explain");
        assert!(text.contains("crates/beta/src/lib.rs"));
        assert!(text.contains("footprint:"));
        assert!(map.explain("unknown::vc").is_none());
    }
}
