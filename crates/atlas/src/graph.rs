//! Conservative name resolution over the item graph.
//!
//! Edges are computed from lexical references: `a::b::c` paths, `f(...)`
//! calls, `.m(...)` method calls, `name!` macro invocations, and bare
//! identifiers that match known item names. Resolution is scoped by the
//! file's `use` imports (`use veros_x::...` maps names into crate `x`;
//! `crate::`/`self::` stay local), and anything ambiguous resolves to
//! *every* candidate — over-approximation is the design invariant:
//! an extra edge only enlarges a VC's footprint, a missed edge could
//! shrink it, so every heuristic here errs toward more edges.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::model::{AtlasFile, Item, ItemKind};

/// Names that are Rust keywords, primitives, or ubiquitous std items —
/// never resolved to workspace items.
fn is_reserved(name: &str) -> bool {
    const RESERVED: &[&str] = &[
        "fn", "let", "mut", "pub", "use", "mod", "if", "else", "match", "for", "while",
        "loop", "return", "in", "as", "where", "impl", "dyn", "move", "ref", "break",
        "continue", "static", "const", "type", "enum", "struct", "trait", "unsafe",
        "async", "await", "self", "Self", "crate", "super", "true", "false", "u8",
        "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
        "isize", "f32", "f64", "bool", "char", "str", "String", "Vec", "Box", "Option",
        "Some", "None", "Result", "Ok", "Err", "Arc", "Rc", "Cell", "RefCell", "Mutex",
        "RwLock", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Default",
        "Clone", "Copy", "Debug", "Display", "PartialEq", "Eq", "Hash", "Ord",
        "PartialOrd", "Send", "Sync", "Sized", "Drop", "From", "Into", "TryFrom",
        "TryInto", "Iterator", "IntoIterator", "Ordering", "PhantomData", "std",
        "core", "alloc", "derive", "cfg", "test", "allow", "deny", "doc", "inline",
        "must_use", "non_exhaustive", "repr",
    ];
    RESERVED.contains(&name)
}

/// Per-file import view.
#[derive(Debug, Default)]
pub struct Imports {
    /// Crate keys this file pulls items from (via `use veros_x::...`).
    pub crates: BTreeSet<String>,
    /// Imported leaf name (or `as` alias) → crate key it came from.
    pub names: HashMap<String, String>,
}

/// Maps a `use` path head (or qualified-path head) to a crate key.
/// Returns `None` for std/external heads that resolve nowhere.
pub fn crate_of_head(head: &str, own: &str) -> Option<String> {
    match head {
        "crate" | "self" | "super" => Some(own.to_string()),
        "std" | "core" | "alloc" | "libc" => None,
        "veros" => Some("veros".to_string()),
        _ => {
            if let Some(dir) = head.strip_prefix("veros_") {
                Some(dir.to_string())
            } else {
                // A bare head is a local module path.
                Some(own.to_string())
            }
        }
    }
}

/// Parses every `use` statement of a file into an [`Imports`] view.
pub fn imports_of(file: &AtlasFile) -> Imports {
    let mut imp = Imports::default();
    let lines = &file.src.lines;
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].code.trim_start();
        let is_use = t.starts_with("use ") || t.starts_with("pub use ") || t.starts_with("pub(crate) use ");
        if !is_use {
            i += 1;
            continue;
        }
        // Accumulate the statement through its `;`.
        let mut stmt = String::new();
        while i < lines.len() {
            stmt.push_str(lines[i].code.trim());
            stmt.push(' ');
            i += 1;
            if stmt.contains(';') {
                break;
            }
        }
        let stmt = stmt.trim_start_matches("pub(crate)").trim_start();
        let stmt = stmt.trim_start_matches("pub").trim_start();
        let Some(body) = stmt.strip_prefix("use ") else { continue };
        let body = body.split(';').next().unwrap_or(body);
        collect_use(body.trim(), &file.crate_key, &mut imp);
    }
    imp
}

/// Recursively expands one `use` body (`a::b::{c, d::e as f, *}`).
fn collect_use(body: &str, own: &str, imp: &mut Imports) {
    // Split the leading path from a trailing brace group.
    let (path_part, group) = match body.find('{') {
        Some(p) if body.ends_with('}') => (&body[..p], Some(&body[p + 1..body.len() - 1])),
        _ => (body, None),
    };
    let segs: Vec<&str> = path_part
        .trim_end_matches("::")
        .split("::")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let Some(head) = segs.first() else {
        // `use {a, b}` form: treat each element as its own body.
        if let Some(g) = group {
            for part in split_group(g) {
                collect_use(&part, own, imp);
            }
        }
        return;
    };
    let Some(target) = crate_of_head(head, own) else { return };
    if target != own {
        imp.crates.insert(target.clone());
    }
    match group {
        Some(g) => {
            for part in split_group(g) {
                // Nested groups keep resolving into the same crate; the
                // leaf name (after any `as`) is what enters scope.
                collect_leaf(&part, &target, imp);
            }
        }
        None => {
            // `use a::b::c [as d];`
            let leaf = segs.last().unwrap_or(head);
            collect_leaf(leaf, &target, imp);
        }
    }
    // Intermediate segments (e.g. `abi` in `use veros_kernel::syscall::abi`)
    // also name modules usable as qualifiers.
    for seg in segs.iter().skip(1) {
        if *seg != "*" && !seg.contains(' ') {
            imp.names.insert((*seg).to_string(), target.clone());
        }
    }
}

/// Splits a brace-group body on top-level commas.
fn split_group(g: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in g.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Registers one `use` leaf (possibly `path::to::name as alias`, `*`,
/// or a nested group) under its crate.
fn collect_leaf(leaf: &str, target: &str, imp: &mut Imports) {
    let leaf = leaf.trim();
    if leaf.is_empty() || leaf == "*" {
        return;
    }
    if let Some(p) = leaf.find('{') {
        if leaf.ends_with('}') {
            for part in split_group(&leaf[p + 1..leaf.len() - 1]) {
                collect_leaf(&part, target, imp);
            }
            // The path prefix before the group also names a module.
            for seg in leaf[..p].split("::").map(str::trim) {
                if !seg.is_empty() {
                    imp.names.insert(seg.to_string(), target.to_string());
                }
            }
            return;
        }
    }
    if let Some(p) = leaf.find(" as ") {
        let alias = leaf[p + 4..].trim();
        if alias != "_" {
            imp.names.insert(alias.to_string(), target.to_string());
        }
        // The original path segments still matter as qualifiers.
        for seg in leaf[..p].split("::").map(str::trim) {
            if !seg.is_empty() {
                imp.names.insert(seg.to_string(), target.to_string());
            }
        }
        return;
    }
    for seg in leaf.split("::").map(str::trim) {
        if !seg.is_empty() && seg != "*" {
            imp.names.insert(seg.to_string(), target.to_string());
        }
    }
}

/// One lexical reference found in item code.
#[derive(Debug)]
pub struct RRef {
    pub path: Vec<String>,
    /// Preceded by `.` — a method call.
    pub method: bool,
    /// Followed by `!` — a macro invocation.
    pub mac: bool,
    /// Followed by `(` — called.
    pub called: bool,
}

/// Extracts all references from blanked code text.
pub fn refs_in(code: &str) -> Vec<RRef> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        if !(c.is_ascii_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        let prev = if i > 0 { b[i - 1] as char } else { ' ' };
        if prev.is_ascii_alphanumeric() || prev == '_' {
            i += 1;
            continue;
        }
        // Read a `::`-joined path of identifiers.
        let mut path = Vec::new();
        loop {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            path.push(code[start..i].to_string());
            if i + 1 < b.len() && b[i] == b':' && b[i + 1] == b':' {
                let j = i + 2;
                if j < b.len() && ((b[j] as char).is_ascii_alphabetic() || b[j] == b'_') {
                    i = j;
                    continue;
                }
                // Turbofish / `::<` — stop the path here.
            }
            break;
        }
        let mac = i < b.len() && b[i] == b'!';
        let mut j = i + usize::from(mac);
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        let called = j < b.len() && (b[j] == b'(' || (mac && (b[j] == b'[' || b[j] == b'{')));
        out.push(RRef {
            path,
            method: prev == '.',
            mac,
            called,
        });
    }
    out
}

/// Item lookup index: crate key → item name → item ids.
pub struct Index {
    by_name: HashMap<(String, String), Vec<usize>>,
    /// Children of each impl/trait block: (crate, parent, fn-name) → ids.
    by_parent: HashMap<(String, String, String), Vec<usize>>,
}

impl Index {
    pub fn build(files: &[AtlasFile], items: &[Item]) -> Index {
        let mut by_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_parent: HashMap<(String, String, String), Vec<usize>> = HashMap::new();
        for (id, it) in items.iter().enumerate() {
            if it.kind == ItemKind::Preamble {
                continue;
            }
            let ck = files[it.file].crate_key.clone();
            by_name.entry((ck.clone(), it.name.clone())).or_default().push(id);
            if let Some(p) = &it.parent {
                by_parent
                    .entry((ck, p.clone(), it.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        Index { by_name, by_parent }
    }

    fn lookup(&self, ck: &str, name: &str) -> &[usize] {
        self.by_name
            .get(&(ck.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn lookup_method(&self, ck: &str, qualifier: &str, name: &str) -> &[usize] {
        self.by_parent
            .get(&(ck.to_string(), qualifier.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Resolves one reference to candidate item ids.
pub fn resolve(r: &RRef, own: &str, imp: &Imports, idx: &Index, out: &mut BTreeSet<usize>) {
    if r.path.len() == 1 {
        let n = &r.path[0];
        if is_reserved(n) {
            return;
        }
        if r.method {
            // `.m(...)`: the receiver type is unknown — any fn named
            // `m` in this crate or any imported crate qualifies.
            out.extend(idx.lookup(own, n).iter().copied());
            for ck in &imp.crates {
                out.extend(idx.lookup(ck, n).iter().copied());
            }
            return;
        }
        out.extend(idx.lookup(own, n).iter().copied());
        if let Some(ck) = imp.names.get(n) {
            out.extend(idx.lookup(ck, n).iter().copied());
        }
        return;
    }
    // Qualified path `a::...::q::last`.
    let head = &r.path[0];
    let last = r.path.last().unwrap();
    if is_reserved(last) && r.path.len() == 2 && is_reserved(head) {
        return;
    }
    let mut targets: BTreeSet<String> = BTreeSet::new();
    match crate_of_head(head, own) {
        Some(t) if t == *own => {
            // Local path — but the head may itself be an imported module
            // (`abi::flags` with `use veros_kernel::syscall::abi`).
            targets.insert(own.to_string());
            if let Some(ck) = imp.names.get(head) {
                targets.insert(ck.clone());
            }
        }
        Some(t) => {
            targets.insert(t);
        }
        None => return,
    }
    let qualifier = if r.path.len() >= 2 {
        Some(&r.path[r.path.len() - 2])
    } else {
        None
    };
    for ck in &targets {
        // `Type::method` — prefer methods of that type, plus the type
        // itself; fall back to any item with the leaf name.
        let mut narrowed = false;
        if let Some(q) = qualifier {
            if !is_reserved(q) {
                let methods = idx.lookup_method(ck, q, last);
                if !methods.is_empty() {
                    out.extend(methods.iter().copied());
                    narrowed = true;
                }
                out.extend(idx.lookup(ck, q).iter().copied());
            }
        }
        if !narrowed && !is_reserved(last) {
            out.extend(idx.lookup(ck, last).iter().copied());
        }
    }
}

/// The dependency graph: adjacency list over item ids.
pub struct Graph {
    pub edges: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Builds edges for every item: references in its code, an implicit
    /// edge to its file's preamble, and preamble → imported crates'
    /// `lib.rs` preambles (so cross-crate closure always reaches the
    /// target crate's root wiring).
    pub fn build(files: &[AtlasFile], items: &[Item], idx: &Index, imports: &[Imports]) -> Graph {
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); items.len()];
        // Preamble id per file, crate roots.
        let mut preamble: HashMap<usize, usize> = HashMap::new();
        let mut crate_root_pre: HashMap<String, usize> = HashMap::new();
        for (id, it) in items.iter().enumerate() {
            if it.kind == ItemKind::Preamble {
                preamble.insert(it.file, id);
                let f = &files[it.file];
                if f.rel_path.ends_with("/src/lib.rs") || f.rel_path == "src/lib.rs" {
                    crate_root_pre.insert(f.crate_key.clone(), id);
                }
            }
        }
        for (id, it) in items.iter().enumerate() {
            let file = &files[it.file];
            let own = &file.crate_key;
            let imp = &imports[it.file];
            if let Some(&p) = preamble.get(&it.file) {
                if p != id {
                    edges[id].insert(p);
                }
            }
            if it.kind == ItemKind::Preamble {
                for ck in &imp.crates {
                    if let Some(&p) = crate_root_pre.get(ck) {
                        edges[id].insert(p);
                    }
                }
            }
            // Resolve references line by line over the item's ranges.
            // `use` lines are skipped: imports only bring names into
            // scope, and items referencing those names already get
            // direct edges through the imports map. Resolving the use
            // lines themselves would weld every item of a file to the
            // union of everything the file imports (core/vcs.rs imports
            // every crate) and collapse all footprints into one.
            let mut in_use_stmt = false;
            for &(a, b) in &it.ranges {
                for l in a..=b.min(file.src.lines.len()) {
                    let code = &file.src.lines[l - 1].code;
                    let t = code.trim_start();
                    if !in_use_stmt
                        && (t.starts_with("use ")
                            || t.starts_with("pub use ")
                            || t.starts_with("pub(crate) use "))
                    {
                        in_use_stmt = true;
                    }
                    if in_use_stmt {
                        if code.contains(';') {
                            in_use_stmt = false;
                        }
                        continue;
                    }
                    for r in refs_in(code) {
                        resolve(&r, own, imp, idx, &mut edges[id]);
                    }
                }
            }
            edges[id].remove(&id);
        }
        Graph { edges }
    }

    /// Transitive closure from `seeds` (inclusive).
    pub fn closure(&self, seeds: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut seen = seeds.clone();
        let mut q: VecDeque<usize> = seeds.iter().copied().collect();
        while let Some(n) = q.pop_front() {
            for &m in &self.edges[n] {
                if seen.insert(m) {
                    q.push_back(m);
                }
            }
        }
        seen
    }
}
