//! VC anchoring: finding every `engine.register(...)` site, recovering
//! the VC name (or name *pattern* for `format!` loops) from the raw
//! source, and collecting the site's seed references.
//!
//! A site's name pattern is a glob where every `format!` interpolation
//! becomes `*`. At audit time the engine's actual VC names are matched
//! back against these patterns; the match with the longest literal
//! prefix wins, so a fully-dynamic `"{tag}::{name}"` site only captures
//! names no more specific site claims.

use std::collections::BTreeSet;

use crate::model::AtlasFile;

/// One `register(...)` call site.
#[derive(Debug)]
pub struct Site {
    pub file: usize,
    /// 1-based inclusive span of the call itself.
    pub span: (usize, usize),
    /// 1-based start of the site's *segment*: preceding loop headers /
    /// `let` bindings attributed to this site (capped, and never
    /// overlapping the previous site).
    pub seg_start: usize,
    /// Glob patterns for VC names registered here. Usually one,
    /// recovered from the name literal (`*` = interpolation); a
    /// `// covers:` entry containing `*` overrides the recovered
    /// pattern entirely — the escape hatch for fully-computed names
    /// whose probe-derived glob would otherwise claim everything.
    /// Empty when no pattern could be recovered.
    pub patterns: Vec<String>,
    /// `// covers: Enum::Variant` anchors attached to the site
    /// (glob-free entries only; glob entries become [`Self::patterns`]).
    pub covers: Vec<String>,
}

/// Finds all non-test `register(` call sites in a file. A site must
/// mention `VcKind::` somewhere in its argument span to qualify (this
/// filters unrelated `register` methods, e.g. NR replica registration).
pub fn find_sites(file_idx: usize, file: &AtlasFile) -> Vec<Site> {
    let lines = &file.src.lines;
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if file.src.in_test[i] {
            i += 1;
            continue;
        }
        let code = &lines[i].code;
        let Some(pos) = code.find(".register(") else {
            i += 1;
            continue;
        };
        // Walk the argument list to its closing paren, across lines.
        let mut depth = 0i64;
        let mut end = i;
        let mut started = false;
        let mut col = pos + ".register(".len() - 1; // index of the '('
        'outer: for (li, line) in lines.iter().enumerate().skip(i) {
            let c0 = if li == i { col } else { 0 };
            for c in line.code[c0.min(line.code.len())..].chars() {
                match c {
                    '(' | '{' | '[' => {
                        depth += 1;
                        started = true;
                    }
                    ')' | '}' | ']' => {
                        depth -= 1;
                        if started && depth == 0 {
                            end = li;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            end = li;
            col = 0;
        }
        let span = (i + 1, end + 1);
        let has_kind = (span.0..=span.1).any(|l| lines[l - 1].code.contains("VcKind::"));
        if has_kind {
            sites.push(Site {
                file: file_idx,
                span,
                seg_start: span.0, // fixed up below
                patterns: pattern_for(file, span).into_iter().collect(),
                covers: Vec::new(), // filled below
            });
        }
        i = end + 1;
    }
    // Segments: attribute the code between consecutive sites (loop
    // headers, `let` bindings sizing the obligation) to the *next*
    // site, capped so interleaved helper functions stay out.
    const SEG_CAP: usize = 12;
    let mut prev_end = 0usize;
    for s in sites.iter_mut() {
        let floor = prev_end + 1;
        s.seg_start = s.span.0.saturating_sub(SEG_CAP).max(floor).min(s.span.0);
        prev_end = s.span.1;
    }
    // Covers anchors: comment lines within the segment + span. Entries
    // containing `*` are explicit name patterns and *replace* the
    // probe-derived one; the rest stay seed anchors.
    for s in sites.iter_mut() {
        for l in s.seg_start..=s.span.1 {
            collect_covers(&lines[l - 1].comment, &mut s.covers);
        }
        let globs: Vec<String> = s.covers.iter().filter(|c| c.contains('*')).cloned().collect();
        if !globs.is_empty() {
            s.covers.retain(|c| !c.contains('*'));
            s.patterns = globs;
        }
    }
    sites
}

/// Parses `covers: A::B, C::D` out of one comment string.
fn collect_covers(comment: &str, out: &mut Vec<String>) {
    let Some(pos) = comment.find("covers:") else { return };
    for part in comment[pos + "covers:".len()..].split(',') {
        let p = part.trim().trim_end_matches('.');
        if !p.is_empty()
            && p.chars().all(|c| c.is_alphanumeric() || c == ':' || c == '_' || c == '*')
        {
            out.push(p.to_string());
        }
    }
}

/// Recovers the VC name pattern for a site from *raw* source text
/// (the lexer blanks string literals, so patterns live only in raw
/// lines). Searches the span first, then up to 8 lines above it for
/// the `let name = format!(...)` idiom.
fn pattern_for(file: &AtlasFile, span: (usize, usize)) -> Option<String> {
    // Only `::`-bearing literals qualify as VC names; failure-message
    // literals rarely contain `::` and always come after the name
    // argument in a `register` call, so first match wins.
    let probe = |line: &str| -> Option<String> {
        string_literals(line)
            .into_iter()
            .find(|l| l.contains("::"))
            .map(|l| globify(&l))
    };
    for l in span.0..=span.1.min(file.raw.len()) {
        if let Some(p) = probe(&file.raw[l - 1]) {
            return Some(p);
        }
    }
    let lo = span.0.saturating_sub(8).max(1);
    for l in (lo..span.0).rev() {
        let raw = &file.raw[l - 1];
        if raw.contains("format!") || raw.contains("let name") || raw.contains("name =") {
            if let Some(p) = probe(raw) {
                return Some(p);
            }
        }
    }
    // Span-local fallback: a `format!("...")` with no `::` in the
    // literal (fully computed names still get a wildcard pattern).
    for l in span.0..=span.1.min(file.raw.len()) {
        let raw = &file.raw[l - 1];
        if raw.contains("format!") {
            for lit in string_literals(raw) {
                if lit.contains('{') {
                    return Some(globify(&lit));
                }
            }
        }
    }
    None
}

/// Extracts the contents of plain `"..."` string literals in one raw
/// line (escape-aware; raw strings not needed for VC names).
fn string_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = line.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < b.len() && b[j] != b'"' {
                if b[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j <= b.len() {
                out.push(line[start..j.min(line.len())].to_string());
            }
            i = j + 1;
        } else if b[i] == b'\'' && i + 2 < b.len() && b[i + 2] == b'\'' {
            i += 3; // skip char literal so 'x' can't open a "string"
        } else {
            i += 1;
        }
    }
    out
}

/// Turns a format-string literal into a glob: every `{...}` hole
/// becomes `*`; literal `{{`/`}}` escape to `{`/`}`.
fn globify(lit: &str) -> String {
    let mut out = String::new();
    let b: Vec<char> = lit.chars().collect();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            '{' if i + 1 < b.len() && b[i + 1] == '{' => {
                out.push('{');
                i += 2;
            }
            '}' if i + 1 < b.len() && b[i + 1] == '}' => {
                out.push('}');
                i += 2;
            }
            '{' => {
                while i < b.len() && b[i] != '}' {
                    i += 1;
                }
                i += 1;
                // Collapse adjacent wildcards.
                if !out.ends_with('*') {
                    out.push('*');
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Glob match: `*` spans any substring (including empty).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[char], n: &[char]) -> bool {
        match p.split_first() {
            None => n.is_empty(),
            Some(('*', rest)) => {
                (0..=n.len()).any(|k| inner(rest, &n[k..]))
            }
            Some((c, rest)) => n.split_first().is_some_and(|(d, nr)| c == d && inner(rest, nr)),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    inner(&p, &n)
}

/// Length of the literal prefix before the first `*` — the match
/// specificity used to pick the winning site for a VC name.
pub fn literal_prefix(pattern: &str) -> usize {
    pattern.find('*').unwrap_or(pattern.len())
}

/// Resolves the best-matching site indices for a VC name: all matches
/// sharing the longest literal prefix.
pub fn best_matches(patterns: &[(usize, String)], name: &str) -> Vec<usize> {
    let mut best: Vec<usize> = Vec::new();
    let mut best_len = 0usize;
    let mut found = false;
    for (site, pat) in patterns {
        if !glob_match(pat, name) {
            continue;
        }
        let l = literal_prefix(pat);
        if !found || l > best_len {
            best = vec![*site];
            best_len = l;
            found = true;
        } else if l == best_len {
            best.push(*site);
        }
    }
    best
}

/// Seed items of a site: every reference in its segment+span resolved,
/// plus its covers-enum items, plus same-file profile-sizing items
/// (`Profile`/`Params`/`params`) — sizing changes rightly re-run every
/// obligation registered in the file.
pub fn site_seeds(
    site: &Site,
    files: &[AtlasFile],
    items: &[crate::model::Item],
    idx: &crate::graph::Index,
    imports: &crate::graph::Imports,
) -> BTreeSet<usize> {
    let file = &files[site.file];
    let own = &file.crate_key;
    let mut seeds = BTreeSet::new();
    for l in site.seg_start..=site.span.1.min(file.src.lines.len()) {
        for r in crate::graph::refs_in(&file.src.lines[l - 1].code) {
            crate::graph::resolve(&r, own, imports, idx, &mut seeds);
        }
    }
    for cov in &site.covers {
        let head = cov.split("::").next().unwrap_or(cov);
        for (id, it) in items.iter().enumerate() {
            if it.name == head && it.kind == crate::model::ItemKind::Type {
                seeds.insert(id);
            }
        }
    }
    for sizing in ["Profile", "Params", "params"] {
        for (id, it) in items.iter().enumerate() {
            if it.file == site.file && it.name == sizing {
                seeds.insert(id);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globify_and_match() {
        assert_eq!(globify("abi::random_args_s{seed}"), "abi::random_args_s*");
        assert_eq!(globify("{tag}::{name}"), "*::*");
        assert_eq!(globify("plain::name"), "plain::name");
        assert!(glob_match("abi::random_args_s*", "abi::random_args_s3"));
        assert!(glob_match("*::*", "boot::identity_map"));
        assert!(!glob_match("abi::x*", "abj::x3"));
        assert!(glob_match("a*c*", "abcd"));
    }

    #[test]
    fn specificity_prefers_literal_sites() {
        let pats = vec![
            (0usize, "*::*".to_string()),
            (1usize, "abi::random_args_s*".to_string()),
            (2usize, "abi::all_variants_roundtrip".to_string()),
        ];
        assert_eq!(best_matches(&pats, "abi::all_variants_roundtrip"), vec![2]);
        assert_eq!(best_matches(&pats, "abi::random_args_s7"), vec![1]);
        assert_eq!(best_matches(&pats, "boot::wild_dynamic"), vec![0]);
        assert!(best_matches(&pats, "nocolon").is_empty());
    }

    #[test]
    fn string_literal_extraction_survives_escapes() {
        let lits = string_literals(r#"engine.register(M, k, "a::b", check("x\"y"));"#);
        assert_eq!(lits[0], "a::b");
        assert_eq!(lits[1], "x\\\"y");
    }
}
