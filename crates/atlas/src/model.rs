//! The atlas file/item model: every workspace `.rs` file scanned twice
//! (raw text for name-pattern extraction, lexed code via the shared
//! [`crate::lexer`] for structure), and a brace-depth item extractor
//! that recovers
//! `fn`/`impl`/`struct`/`enum`/`trait`/`mod`/`macro_rules!` definitions
//! with their line ranges.
//!
//! The extractor is deliberately lexical, not a parser: it only needs
//! line ranges and names good enough for conservative name resolution.
//! Anything it cannot place lands in the file's *preamble* pseudo-item,
//! which every item of the file implicitly depends on — so a miss makes
//! footprints larger, never smaller.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Directory names never descended into (mirrors veros-lint).
const EXCLUDED_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// What kind of definition an [`Item`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    /// `struct` / `enum` / `trait` / `union` definitions.
    Type,
    Mod,
    /// `macro_rules!` definitions.
    Macro,
    /// `const` / `static` items.
    Const,
    /// Per-file pseudo-item: all code lines not inside any other item
    /// (use statements, module docs, stray declarations).
    Preamble,
}

/// One extracted definition with its 1-based inclusive line ranges.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub name: String,
    pub file: usize,
    /// 1-based inclusive line ranges. Single range for real items; the
    /// preamble may be scattered.
    pub ranges: Vec<(usize, usize)>,
    /// For `fn` items inside an `impl`/`trait` block: the block's name,
    /// enabling `Type::method` qualified resolution.
    pub parent: Option<String>,
}

impl Item {
    pub fn contains_line(&self, line: usize) -> bool {
        self.ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// One workspace file in the atlas.
pub struct AtlasFile {
    pub rel_path: String,
    /// Raw source lines (string literals intact — needed to read VC
    /// name patterns out of `register(...)` calls).
    pub raw: Vec<String>,
    /// Lexed view: code with literals blanked, comments split out,
    /// test-region flags.
    pub src: SourceFile,
    /// Resolution namespace: crate dir under `crates/`, `"veros"` for
    /// the root package `src/`, `"root"` for top-level tests/examples.
    pub crate_key: String,
    /// True for shipped library code (`crates/*/src/**`, root `src/**`):
    /// the only files VC footprints and the coverage gate care about.
    pub runtime_src: bool,
}

/// Computes the resolution namespace for a workspace-relative path.
pub fn crate_key_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some(c) = rest.split('/').next() {
            return c.to_string();
        }
    }
    if rel_path.starts_with("src/") {
        return "veros".to_string();
    }
    "root".to_string()
}

/// True for shipped library code the map must cover.
pub fn is_runtime_src(rel_path: &str) -> bool {
    if rel_path.starts_with("src/") {
        return true;
    }
    rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.contains("/fixtures/")
}

impl AtlasFile {
    pub fn from_source(rel_path: &str, text: &str) -> AtlasFile {
        AtlasFile {
            rel_path: rel_path.to_string(),
            raw: text.lines().map(str::to_string).collect(),
            src: SourceFile::from_source(rel_path, text),
            crate_key: crate_key_of(rel_path),
            runtime_src: is_runtime_src(rel_path),
        }
    }
}

/// Walks `root` collecting every `.rs` file, sorted by path (mirrors
/// `crate::source::Workspace::load`, but keeps raw text too).
pub fn load_files(root: &Path) -> io::Result<Vec<AtlasFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if EXCLUDED_DIRS.contains(&name) {
                    continue;
                }
                let rel = rel_of(root, &path);
                if rel.starts_with("crates/lint/tests/fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let text = fs::read_to_string(&path)?;
                files.push(AtlasFile::from_source(&rel_of(root, &path), &text));
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Reads the item header (if any) that a code line begins: strips
/// visibility/qualifier keywords, then matches the defining keyword.
/// Only recognizes headers at the (trimmed) start of a line — rustfmt
/// output always puts them there, and a missed header degrades to
/// preamble, which is the safe direction.
pub fn header_of(code: &str) -> Option<(ItemKind, String)> {
    let mut rest = code.trim_start();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("pub(") {
            rest = &r[r.find(')')? + 1..];
            continue;
        }
        let mut stripped = false;
        for q in ["pub ", "unsafe ", "default ", "async ", "extern \"\" "] {
            if let Some(r) = rest.strip_prefix(q) {
                rest = r;
                stripped = true;
                break;
            }
        }
        if stripped {
            continue;
        }
        // `const` doubles as a qualifier (`const fn`) and a keyword
        // (`const NAME: ...`).
        if let Some(r) = rest.strip_prefix("const ") {
            let r = r.trim_start();
            if r.starts_with("fn ") {
                rest = r;
                continue;
            }
            return Some((ItemKind::Const, ident_at(r)?));
        }
        break;
    }
    if let Some(r) = rest.strip_prefix("fn ") {
        return Some((ItemKind::Fn, ident_at(r)?));
    }
    if let Some(r) = rest.strip_prefix("macro_rules!") {
        return Some((ItemKind::Macro, ident_at(r.trim_start())?));
    }
    if rest.starts_with("impl ") || rest.starts_with("impl<") {
        return Some((ItemKind::Impl, impl_name(&rest[4..])));
    }
    if let Some(r) = rest.strip_prefix("mod ") {
        return Some((ItemKind::Mod, ident_at(r)?));
    }
    for kw in ["struct ", "enum ", "trait ", "union "] {
        if let Some(r) = rest.strip_prefix(kw) {
            return Some((ItemKind::Type, ident_at(r)?));
        }
    }
    if let Some(r) = rest.strip_prefix("static ") {
        let r = r.trim_start().strip_prefix("mut ").unwrap_or(r.trim_start());
        return Some((ItemKind::Const, ident_at(r)?));
    }
    None
}

/// Leading identifier of `s`, if it starts with one.
fn ident_at(s: &str) -> Option<String> {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if end == 0 || s.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    Some(s[..end].to_string())
}

/// Names the type an `impl` block is for: the last path segment of the
/// self type (after `for` when present), generics stripped. `rest` is
/// the header text after the `impl` keyword.
fn impl_name(rest: &str) -> String {
    let mut s = rest.trim_start();
    if s.starts_with('<') {
        // Skip the generic parameter list.
        let mut depth = 0usize;
        let mut cut = s.len();
        for (i, c) in s.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        s = &s[cut..];
    }
    // Keep everything before the body/where clause, prefer the segment
    // after a standalone `for`.
    let head = s.split('{').next().unwrap_or(s);
    let head = match head.find(" where ") {
        Some(p) => &head[..p],
        None => head,
    };
    let target = match find_word_pos(head, "for") {
        Some(p) => &head[p + 3..],
        None => head,
    };
    // Last path-segment identifier before any generics.
    let target = target.trim_start().trim_start_matches(['&', ' ']);
    let target = target.strip_prefix("mut ").unwrap_or(target);
    let target = target.strip_prefix("dyn ").unwrap_or(target);
    let path = target
        .split(|c: char| c == '<' || c == '(' || c.is_whitespace())
        .next()
        .unwrap_or("");
    path.rsplit("::")
        .next()
        .filter(|s| !s.is_empty())
        .unwrap_or("impl")
        .to_string()
}

/// Position of `word` as a standalone token in `s`.
fn find_word_pos(s: &str, word: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut start = 0;
    while let Some(pos) = s[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

/// Innermost non-preamble item containing 1-based `line` of `file`
/// (smallest covering range wins, so an `fn` beats its `impl` block).
pub fn innermost_item(items: &[Item], file: usize, line: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_span = usize::MAX;
    for (id, it) in items.iter().enumerate() {
        if it.file != file || it.kind == ItemKind::Preamble || !it.contains_line(line) {
            continue;
        }
        let span: usize = it.ranges.iter().map(|&(a, b)| b - a + 1).sum();
        if span < best_span {
            best = Some(id);
            best_span = span;
        }
    }
    best
}

/// A header whose body/terminator has not been seen yet.
struct Pending {
    kind: ItemKind,
    name: String,
    /// 0-based line the header started on.
    line: usize,
}

/// An item whose `{` has opened but whose `}` has not closed.
struct Open {
    kind: ItemKind,
    name: String,
    start: usize,
    /// Brace depth just before the opening `{`; the item closes when
    /// depth returns here.
    entry: i64,
    parent: Option<String>,
}

/// Extracts all items of `file` (appending to `items`), including the
/// trailing preamble pseudo-item. `file_idx` is stored on each item.
pub fn extract_items(file_idx: usize, file: &AtlasFile, items: &mut Vec<Item>) {
    let first = items.len();
    let lines = &file.src.lines;
    let mut depth: i64 = 0;
    let mut pending: Option<Pending> = None;
    // Paren/bracket nesting carried across lines while a header is
    // pending, so a `;` inside `[u8; 4]` or a multi-line signature does
    // not terminate the declaration early.
    let mut pb: i64 = 0;
    let mut stack: Vec<Open> = Vec::new();

    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if pending.is_none() && !line.is_attr() {
            if let Some((kind, name)) = header_of(code) {
                pending = Some(Pending { kind, name, line: i });
                pb = 0;
            }
        }
        for c in code.chars() {
            match c {
                '(' | '[' => pb += 1,
                ')' | ']' => pb -= 1,
                '{' => {
                    if let Some(p) = pending.take() {
                        let parent = stack
                            .iter()
                            .rev()
                            .find(|o| matches!(o.kind, ItemKind::Impl | ItemKind::Type))
                            .map(|o| o.name.clone());
                        stack.push(Open {
                            kind: p.kind,
                            name: p.name,
                            start: p.line,
                            entry: depth,
                            parent,
                        });
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|t| depth <= t.entry) {
                        let top = stack.pop().unwrap();
                        items.push(Item {
                            kind: top.kind,
                            name: top.name,
                            file: file_idx,
                            ranges: vec![(top.start + 1, i + 1)],
                            parent: top.parent,
                        });
                    }
                }
                ';' if pb <= 0 => {
                    if let Some(p) = pending.take() {
                        // Declaration form: `mod x;`, `const X: T = v;`,
                        // a trait method signature.
                        items.push(Item {
                            kind: p.kind,
                            name: p.name,
                            file: file_idx,
                            ranges: vec![(p.line + 1, i + 1)],
                            parent: stack.last().map(|o| o.name.clone()),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed items (unbalanced braces) still get a range to EOF.
    while let Some(top) = stack.pop() {
        items.push(Item {
            kind: top.kind,
            name: top.name,
            file: file_idx,
            ranges: vec![(top.start + 1, lines.len().max(1))],
            parent: top.parent,
        });
    }

    // Preamble: non-blank code lines not covered by any top-level item.
    let mut covered = vec![false; lines.len()];
    for it in &items[first..] {
        if it.parent.is_none() {
            for &(a, b) in &it.ranges {
                for l in a..=b.min(lines.len()) {
                    covered[l - 1] = true;
                }
            }
        }
    }
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if covered[i] || line.is_code_blank() {
            continue;
        }
        match ranges.last_mut() {
            Some(r) if r.1 == i => r.1 = i + 1,
            _ => ranges.push((i + 1, i + 1)),
        }
    }
    if !ranges.is_empty() {
        items.push(Item {
            kind: ItemKind::Preamble,
            name: format!("<preamble:{}>", file.rel_path),
            file: file_idx,
            ranges,
            parent: None,
        });
    }
}
