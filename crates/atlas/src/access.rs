//! Per-atomic-field access extraction: the table the concurrency
//! protocol passes in `veros-lint` consume.
//!
//! For every atomic field or static declared in a runtime crate, this
//! module records **every** load/store/RMW of it — with the parsed
//! `Ordering` halves, the enclosing item, and `file:line` — plus the
//! raw "touches" (field projections) of protocol-annotated fields.
//! Two annotation forms are read from the comment on (or directly
//! above) a field declaration:
//!
//! ```text
//! // protocol: seqlock(<stamp-field>)
//! // guarded-by: <lock-field>
//! ```
//!
//! The analysis is lexical and conservative in the atlas tradition:
//! extra accesses or touches only make the lint passes stricter, and
//! everything the extractor *cannot* bind is counted loudly —
//! [`AccessTable::unbound`] (an `Ordering`-carrying call whose receiver
//! resolves to no declared field), [`AccessTable::unknown_order`] (an
//! access of a tracked field whose ordering token is unreadable), and
//! [`AccessTable::ambiguous`] (a tracked name declared twice in one
//! crate, which would let pairing evidence from one field excuse
//! another). All three are gated to zero in CI.

use std::collections::{BTreeMap, HashMap};

use crate::lexer;
use crate::model::{self, AtlasFile, Item, ItemKind};

/// Crates the protocol passes never look at: the analyzers themselves
/// and the bench harness (not shipped runtime code).
pub const PROTOCOL_EXCLUDED_CRATES: &[&str] = &["bench", "lint", "atlas"];

/// Atomic-method ordering halves, parsed from the call arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrder {
    fn parse(tok: &str) -> Option<MemOrder> {
        Some(match tok {
            "Relaxed" => MemOrder::Relaxed,
            "Acquire" => MemOrder::Acquire,
            "Release" => MemOrder::Release,
            "AcqRel" => MemOrder::AcqRel,
            "SeqCst" => MemOrder::SeqCst,
            _ => return None,
        })
    }

    /// True when a load at this ordering synchronizes-with a release.
    pub fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    /// True when a store at this ordering publishes prior writes.
    pub fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }
}

/// A protocol annotation attached to a field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Annotation {
    /// `// protocol: seqlock(<stamp>)` — writes are bracketed by stamp
    /// bumps, reads re-check the stamp.
    Seqlock(String),
    /// `// guarded-by: <lock>` — only touched under that lock.
    GuardedBy(String),
}

/// One tracked field or static declaration.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    pub crate_key: String,
    /// Declaring struct name, `<static>`, or `<param>` (an atomic
    /// reference taken as a function parameter).
    pub holder: String,
    pub name: String,
    pub file: usize,
    /// 1-based declaration line.
    pub line: usize,
    /// Declared with an atomic (or all-atomic carrier) type. Annotated
    /// non-atomic fields (e.g. an `UnsafeCell` seqlock payload) are
    /// tracked with `atomic: false`.
    pub atomic: bool,
    /// `pub`/`pub(...)` — touches are searched crate-wide instead of
    /// declaration-file-only.
    pub public: bool,
    pub type_text: String,
    pub annotations: Vec<Annotation>,
}

impl FieldDecl {
    pub fn seqlock_stamp(&self) -> Option<&str> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::Seqlock(s) => Some(s.as_str()),
            _ => None,
        })
    }

    pub fn guarded_by(&self) -> Option<&str> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::GuardedBy(l) => Some(l.as_str()),
            _ => None,
        })
    }
}

/// One atomic operation on a tracked field.
#[derive(Clone, Debug)]
pub struct Access {
    /// Index into [`AccessTable::fields`].
    pub field: usize,
    /// Innermost enclosing non-preamble item, if any.
    pub item: Option<usize>,
    pub file: usize,
    /// 1-based line of the method call.
    pub line: usize,
    pub method: String,
    /// Ordering of the read half, when the op reads.
    pub load: Option<MemOrder>,
    /// Ordering of the write half, when the op writes.
    pub store: Option<MemOrder>,
}

/// One raw projection (`.field`) of an annotated field — the unit the
/// seqlock and guard passes reason about.
#[derive(Clone, Debug)]
pub struct Touch {
    pub field: usize,
    pub item: Option<usize>,
    pub file: usize,
    pub line: usize,
}

/// A declaration whose type looks like a lock — the candidates
/// `guarded-by:` annotations resolve against.
#[derive(Clone, Debug)]
pub struct LockDecl {
    pub crate_key: String,
    pub holder: String,
    pub name: String,
    pub file: usize,
    pub line: usize,
    pub type_text: String,
}

/// Something the extractor could not resolve, anchored for diagnosis.
#[derive(Clone, Debug)]
pub struct Unresolved {
    pub file: usize,
    /// 1-based.
    pub line: usize,
    pub what: String,
}

/// The workspace-wide access table plus its loud-fail-open counters.
#[derive(Debug, Default)]
pub struct AccessTable {
    pub fields: Vec<FieldDecl>,
    pub accesses: Vec<Access>,
    pub touches: Vec<Touch>,
    /// Lock-typed declarations (any type mentioning `Mutex`/`Lock`).
    pub locks: Vec<LockDecl>,
    /// Ordering-carrying calls bound to no field. Must stay 0.
    pub unbound: Vec<Unresolved>,
    /// Tracked-field ops with unreadable ordering tokens. Must stay 0.
    pub unknown_order: Vec<Unresolved>,
    /// Tracked names declared twice in one crate. Must stay 0.
    pub ambiguous: Vec<Unresolved>,
}

/// Atomic method names and how their ordering arguments split into
/// load/store halves.
const METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Primitive atomic type names (word-level, so `AtomicityProof` never
/// matches).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

fn file_in_scope(f: &AtlasFile) -> bool {
    f.runtime_src
        && !f.src.test_path
        && !PROTOCOL_EXCLUDED_CRATES.contains(&f.crate_key.as_str())
}

fn mentions_atomic_primitive(ty: &str) -> bool {
    ATOMIC_TYPES.iter().any(|t| lexer::has_word(ty, t))
}

/// A raw field declaration before carrier classification.
struct RawField {
    crate_key: String,
    holder: String,
    name: String,
    file: usize,
    line: usize,
    public: bool,
    type_text: String,
}

/// Parses `pub name: Type,` declarations (used inside `struct` bodies).
/// Returns `(name, type_text, public)`.
fn parse_named_field(code: &str) -> Option<(String, String, bool)> {
    let t = code.trim_start();
    let (t, public) = strip_visibility(t);
    let bytes = t.as_bytes();
    let mut end = 0;
    while end < bytes.len()
        && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
    {
        end += 1;
    }
    if end == 0 || bytes[0].is_ascii_digit() {
        return None;
    }
    let name = &t[..end];
    let rest = t[end..].trim_start();
    // `::` is a path, `:` introduces the type.
    let rest = rest.strip_prefix(':')?;
    if rest.starts_with(':') {
        return None;
    }
    // Keywords that precede `:` in non-field positions never appear
    // here because struct bodies hold only fields, but reject the
    // obvious statement forms anyway.
    if matches!(name, "let" | "if" | "while" | "match" | "return" | "fn") {
        return None;
    }
    let ty = rest.trim().trim_end_matches(',').trim();
    if ty.is_empty() {
        return None;
    }
    Some((name.to_string(), ty.to_string(), public))
}

fn strip_visibility(t: &str) -> (&str, bool) {
    if let Some(r) = t.strip_prefix("pub(") {
        if let Some(close) = r.find(')') {
            return (r[close + 1..].trim_start(), true);
        }
    }
    if let Some(r) = t.strip_prefix("pub ") {
        return (r.trim_start(), true);
    }
    (t, false)
}

/// Splits `s` on commas at angle/paren/bracket depth 0.
fn split_top_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth <= 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Reads the protocol annotations attached to declaration line `idx`
/// (0-based): its own comment, then pure-comment/attribute lines
/// directly above — the same chain the lint suppression walk uses.
fn annotations_at(file: &AtlasFile, idx: usize) -> Vec<Annotation> {
    let mut out = Vec::new();
    collect_annotations(&file.src.lines[idx].comment, &mut out);
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.src.lines[i];
        let pure_comment = l.is_code_blank() && !l.comment.is_empty();
        if !(pure_comment || l.is_attr()) {
            break;
        }
        collect_annotations(&l.comment, &mut out);
    }
    out
}

fn collect_annotations(comment: &str, out: &mut Vec<Annotation>) {
    if let Some(pos) = comment.find("protocol: seqlock(") {
        let rest = &comment[pos + "protocol: seqlock(".len()..];
        if let Some(close) = rest.find(')') {
            let stamp = rest[..close].trim();
            if !stamp.is_empty() {
                out.push(Annotation::Seqlock(stamp.to_string()));
            }
        }
    }
    if let Some(pos) = comment.find("guarded-by:") {
        let rest = comment[pos + "guarded-by:".len()..].trim_start();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end > 0 {
            out.push(Annotation::GuardedBy(rest[..end].to_string()));
        }
    }
}

impl AccessTable {
    /// Builds the table over `files` and their extracted `items`.
    pub fn build(files: &[AtlasFile], items: &[Item]) -> AccessTable {
        let mut table = AccessTable::default();

        // ---- Phase 1: declarations -------------------------------------
        // Every named field of every struct/enum (any type — the carrier
        // fixpoint needs the non-atomic ones too), tuple-struct field
        // types, and statics.
        let mut raw: Vec<RawField> = Vec::new();
        // (crate, holder) -> all member type texts, for the carrier rule.
        let mut members: HashMap<(String, String), Vec<String>> = HashMap::new();

        for (fi, file) in files.iter().enumerate() {
            if !file_in_scope(file) {
                continue;
            }
            for it in items.iter().filter(|it| it.file == fi) {
                match it.kind {
                    ItemKind::Type => {
                        let &(start, end) = &it.ranges[0];
                        // Header-line members: a tuple struct
                        // `struct Name(T, U);` or a single-line body
                        // `struct Name { a: T }`.
                        let header = &file.src.lines[start - 1].code;
                        if model::header_of(header).is_some_and(|(k, _)| k == ItemKind::Type) {
                            if let Some(p) = header.find('{') {
                                let inner = header[p + 1..]
                                    .rsplit_once('}')
                                    .map(|(a, _)| a)
                                    .unwrap_or(&header[p + 1..]);
                                for part in split_top_commas(inner) {
                                    let Some((name, ty, public)) = parse_named_field(&part)
                                    else {
                                        continue;
                                    };
                                    members
                                        .entry((file.crate_key.clone(), it.name.clone()))
                                        .or_default()
                                        .push(ty.clone());
                                    raw.push(RawField {
                                        crate_key: file.crate_key.clone(),
                                        holder: it.name.clone(),
                                        name,
                                        file: fi,
                                        line: start,
                                        public,
                                        type_text: ty,
                                    });
                                }
                            } else if let Some(p) = header.find('(') {
                                let inner = header[p + 1..]
                                    .rsplit_once(')')
                                    .map(|(a, _)| a)
                                    .unwrap_or(&header[p + 1..]);
                                for ty in split_top_commas(inner) {
                                    let ty = strip_visibility(&ty).0.to_string();
                                    members
                                        .entry((file.crate_key.clone(), it.name.clone()))
                                        .or_default()
                                        .push(ty);
                                }
                            }
                        }
                        for l in start..end.min(file.src.lines.len()) {
                            // Body lines only (skip the header itself).
                            let line = &file.src.lines[l];
                            if l == start - 1
                                || line.is_attr()
                                || file.src.in_test[l]
                                || model::header_of(&line.code).is_some()
                            {
                                continue;
                            }
                            if let Some((name, ty, public)) = parse_named_field(&line.code) {
                                members
                                    .entry((file.crate_key.clone(), it.name.clone()))
                                    .or_default()
                                    .push(ty.clone());
                                raw.push(RawField {
                                    crate_key: file.crate_key.clone(),
                                    holder: it.name.clone(),
                                    name,
                                    file: fi,
                                    line: l + 1,
                                    public,
                                    type_text: ty,
                                });
                            }
                        }
                    }
                    ItemKind::Const => {
                        let line0 = it.ranges[0].0;
                        let code = &file.src.lines[line0 - 1].code;
                        if file.src.in_test[line0 - 1] {
                            continue;
                        }
                        let (t, public) = strip_visibility(code.trim_start());
                        let Some(rest) = t.strip_prefix("static ") else { continue };
                        let rest = rest.trim_start();
                        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                        let Some((name, ty, _)) =
                            parse_named_field(rest)
                        else {
                            continue;
                        };
                        let ty = ty.split('=').next().unwrap_or(&ty).trim().to_string();
                        raw.push(RawField {
                            crate_key: file.crate_key.clone(),
                            holder: "<static>".to_string(),
                            name,
                            file: fi,
                            line: line0,
                            public,
                            type_text: ty,
                        });
                    }
                    _ => {}
                }
            }
        }

        // ---- Phase 2: carrier fixpoint ---------------------------------
        // A struct is an atomic *carrier* iff all of its members are
        // atomic or carrier-typed (`Pad(AtomicU64)`, an all-atomic slot
        // struct, a padded wrapper). Field types naming a carrier count
        // as atomic.
        let mut carriers: BTreeMap<String, Vec<String>> = BTreeMap::new(); // crate -> names
        loop {
            let mut changed = false;
            for ((ck, holder), tys) in &members {
                let known = carriers.entry(ck.clone()).or_default();
                if known.contains(holder) || tys.is_empty() {
                    continue;
                }
                let all_atomic = tys.iter().all(|ty| {
                    mentions_atomic_primitive(ty)
                        || known.iter().any(|c| lexer::has_word(ty, c))
                });
                if all_atomic {
                    carriers.get_mut(ck.as_str()).unwrap().push(holder.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let is_atomic_ty = |ck: &str, ty: &str| -> bool {
            mentions_atomic_primitive(ty)
                || carriers
                    .get(ck)
                    .is_some_and(|cs| cs.iter().any(|c| lexer::has_word(ty, c)))
        };

        // ---- Phase 3: tracked fields -----------------------------------
        // Atomic-typed declarations plus annotated declarations of any
        // type, keyed (crate, name); duplicates are loud.
        let mut index: HashMap<(String, String), usize> = HashMap::new();
        for rf in raw {
            if rf.type_text.contains("Mutex") || rf.type_text.contains("Lock") {
                table.locks.push(LockDecl {
                    crate_key: rf.crate_key.clone(),
                    holder: rf.holder.clone(),
                    name: rf.name.clone(),
                    file: rf.file,
                    line: rf.line,
                    type_text: rf.type_text.clone(),
                });
            }
            let atomic = is_atomic_ty(&rf.crate_key, &rf.type_text);
            let annotations = annotations_at(&files[rf.file], rf.line - 1);
            if !atomic && annotations.is_empty() {
                continue;
            }
            let key = (rf.crate_key.clone(), rf.name.clone());
            if let Some(&prev) = index.get(&key) {
                let p: &FieldDecl = &table.fields[prev];
                table.ambiguous.push(Unresolved {
                    file: rf.file,
                    line: rf.line,
                    what: format!(
                        "`{}::{}` tracked under two declarations: {} at {}:{} and {} here",
                        rf.crate_key,
                        rf.name,
                        p.holder,
                        files[p.file].rel_path,
                        p.line,
                        rf.holder,
                    ),
                });
                continue;
            }
            index.insert(key, table.fields.len());
            table.fields.push(FieldDecl {
                crate_key: rf.crate_key,
                holder: rf.holder,
                name: rf.name,
                file: rf.file,
                line: rf.line,
                atomic,
                public: rf.public,
                type_text: rf.type_text,
                annotations,
            });
        }

        // ---- Phase 4: atomic fn parameters ------------------------------
        // `fn combine(pending: &AtomicU64, ...)` — the body's accesses
        // must bind somewhere, and orderings on a borrowed atomic are as
        // checkable as on a field. A param shadowing a tracked field
        // name in its crate is ambiguous and loud.
        for (fi, file) in files.iter().enumerate() {
            if !file_in_scope(file) {
                continue;
            }
            let lines = &file.src.lines;
            for (i, line) in lines.iter().enumerate() {
                if file.src.in_test[i]
                    || !model::header_of(&line.code)
                        .is_some_and(|(k, _)| k == ItemKind::Fn)
                {
                    continue;
                }
                // Collect the signature through its opening `{` or `;`.
                let mut sig = String::new();
                for l in lines.iter().skip(i).take(8) {
                    sig.push_str(&l.code);
                    sig.push(' ');
                    if l.code.contains('{') || l.code.contains(';') {
                        break;
                    }
                }
                let Some(p) = sig.find('(') else { continue };
                let inner = sig[p + 1..]
                    .split(['{', ';'])
                    .next()
                    .unwrap_or("")
                    .rsplit_once(')')
                    .map(|(a, _)| a)
                    .unwrap_or("");
                bind_atomic_params(inner, file, fi, i, &mut index, &mut table);
            }
            // Typed closure params bind the same way:
            // `let bump = |cell: &AtomicU64, n: u64| ...` — the body's
            // `cell.store(..)` must resolve somewhere.
            for (i, line) in lines.iter().enumerate() {
                if file.src.in_test[i] {
                    continue;
                }
                let Some(b0) = line.code.find('|') else { continue };
                let Some(rel) = line.code[b0 + 1..].find('|') else { continue };
                let inner = &line.code[b0 + 1..b0 + 1 + rel];
                if inner.contains(':') {
                    bind_atomic_params(inner, file, fi, i, &mut index, &mut table);
                }
            }
        }

        // ---- Phase 5: atomic accesses ----------------------------------
        for (fi, file) in files.iter().enumerate() {
            if !file_in_scope(file) {
                continue;
            }
            let aliases = local_aliases(file, &index);
            let lines = &file.src.lines;
            for (i, line) in lines.iter().enumerate() {
                if file.src.in_test[i] {
                    continue;
                }
                for (dot, method) in method_calls(&line.code) {
                    let mut segs = receiver_of(&line.code, dot);
                    if segs.is_empty() && line.code[..dot].trim().is_empty() {
                        // Multi-line receiver: `self.seq` on the line(s)
                        // above a wrapped `.compare_exchange(...)`.
                        let mut j = i;
                        while j > 0 {
                            j -= 1;
                            let prev = lines[j].code.trim_end();
                            if prev.is_empty() {
                                continue;
                            }
                            segs = receiver_of(prev, prev.len());
                            break;
                        }
                    }
                    let candidate = segs
                        .iter()
                        .rev()
                        .find(|s| !s.chars().all(|c| c.is_ascii_digit()))
                        .cloned()
                        .unwrap_or_default();
                    let fidx = index
                        .get(&(file.crate_key.clone(), candidate.clone()))
                        .or_else(|| {
                            aliases
                                .get(&candidate)
                                .and_then(|binds| {
                                    binds.iter().rev().find(|(at, _)| *at <= i)
                                })
                                .and_then(|(_, f)| index.get(&(file.crate_key.clone(), f.clone())))
                        })
                        .copied();
                    // Argument text: this line from the call's paren,
                    // plus continuation lines until it balances.
                    let args = call_args(lines, i, dot + 1 + method.len());
                    let orders = ordering_tokens(&args);
                    if orders.is_empty() {
                        // Not an atomic op (`path.load(cfg)`) — unless
                        // the receiver IS a tracked atomic, in which
                        // case the ordering is just unreadable: loud.
                        if let Some(f) = fidx {
                            if table.fields[f].atomic {
                                table.unknown_order.push(Unresolved {
                                    file: fi,
                                    line: i + 1,
                                    what: format!(
                                        "ordering of `{}.{}` unreadable",
                                        table.fields[f].name, method
                                    ),
                                });
                            }
                        }
                        continue;
                    }
                    let Some(f) = fidx else {
                        table.unbound.push(Unresolved {
                            file: fi,
                            line: i + 1,
                            what: format!(
                                "atomic op `{}.{}` binds to no declared field",
                                if candidate.is_empty() { "?" } else { &candidate },
                                method
                            ),
                        });
                        continue;
                    };
                    let item = model::innermost_item(items, fi, i + 1);
                    let push = |table: &mut AccessTable, load, store| {
                        table.accesses.push(Access {
                            field: f,
                            item,
                            file: fi,
                            line: i + 1,
                            method: method.clone(),
                            load,
                            store,
                        });
                    };
                    let one = orders[0];
                    match method.as_str() {
                        "load" => push(&mut table, Some(one), None),
                        "store" => push(&mut table, None, Some(one)),
                        "compare_exchange" | "compare_exchange_weak" => {
                            let fail = orders.get(1).copied().unwrap_or(one);
                            // Success half: an RMW at the success
                            // ordering; failure half: a pure load.
                            push(&mut table, Some(one), Some(one));
                            push(&mut table, Some(fail), None);
                        }
                        "fetch_update" => {
                            let fetch = orders.get(1).copied().unwrap_or(one);
                            push(&mut table, Some(fetch), Some(one));
                        }
                        // swap / fetch_*: one ordering, both halves.
                        _ => push(&mut table, Some(one), Some(one)),
                    }
                }
            }
        }

        // ---- Phase 6: raw touches of annotated fields -------------------
        // `.field` projections (not method calls), searched across the
        // declaring crate for public fields and the declaring file for
        // private ones — private fields cannot be projected elsewhere.
        for f in 0..table.fields.len() {
            if table.fields[f].annotations.is_empty() {
                continue;
            }
            let (ck, name, public, decl_file) = {
                let fd = &table.fields[f];
                (fd.crate_key.clone(), fd.name.clone(), fd.public, fd.file)
            };
            for (fi, file) in files.iter().enumerate() {
                if !file_in_scope(file) || file.crate_key != ck {
                    continue;
                }
                if !public && fi != decl_file {
                    continue;
                }
                for (i, line) in file.src.lines.iter().enumerate() {
                    if file.src.in_test[i] {
                        continue;
                    }
                    for _ in projections(&line.code, &name) {
                        table.touches.push(Touch {
                            field: f,
                            item: model::innermost_item(items, fi, i + 1),
                            file: fi,
                            line: i + 1,
                        });
                    }
                }
            }
        }

        table
            .ambiguous
            .sort_by(|a, b| (a.file, a.line, &a.what).cmp(&(b.file, b.line, &b.what)));
        table
            .ambiguous
            .dedup_by(|a, b| (a.file, a.line, &a.what) == (b.file, b.line, &b.what));
        table
    }

    pub fn field_index(&self, crate_key: &str, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.crate_key == crate_key && f.name == name)
    }
}

/// Finds `(dot_position, method_name)` for every atomic-method call
/// shape `.method(` in a code line.
fn method_calls(code: &str) -> Vec<(usize, String)> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'.' {
            continue;
        }
        let start = i + 1;
        let mut end = start;
        while end < b.len() && ((b[end] as char).is_ascii_alphanumeric() || b[end] == b'_') {
            end += 1;
        }
        if end == start || end >= b.len() || b[end] != b'(' {
            continue;
        }
        let name = &code[start..end];
        if METHODS.contains(&name) {
            out.push((i, name.to_string()));
        }
    }
    out
}

/// Walks backwards from the dot of a method call, collecting the
/// receiver's `.`-separated identifier segments (index expressions
/// skipped). `self.slots[i & mask].seq` yields `[self, slots, seq]`.
fn receiver_of(code: &str, dot: usize) -> Vec<String> {
    let b = code.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        // Skip one balanced `[...]` group.
        while i > 0 && b[i - 1] == b']' {
            let mut depth = 0i64;
            let mut j = i;
            while j > 0 {
                j -= 1;
                match b[j] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 {
                return segs;
            }
            i = j;
        }
        let end = i;
        while i > 0 && ((b[i - 1] as char).is_ascii_alphanumeric() || b[i - 1] == b'_') {
            i -= 1;
        }
        if end == i {
            break;
        }
        segs.insert(0, code[i..end].to_string());
        if i > 0 && b[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        break;
    }
    segs
}

/// Collects call-argument text from the opening paren at `(line, col)`
/// until the parens balance (bounded lookahead).
fn call_args(lines: &[lexer::ScannedLine], line: usize, col: usize) -> String {
    let mut out = String::new();
    let mut depth = 0i64;
    for (n, l) in lines.iter().enumerate().skip(line).take(12) {
        let code = if n == line { &l.code[col.min(l.code.len())..] } else { &l.code };
        for c in code.chars() {
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        out.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                    out.push(c);
                }
                _ if depth >= 1 => out.push(c),
                _ => {}
            }
        }
        out.push(' ');
    }
    out
}

/// Ordering tokens of an argument list, in positional order. Accepts
/// `Ordering::X` and (as a fallback) bare imported `X` names.
fn ordering_tokens(args: &str) -> Vec<MemOrder> {
    let mut out = Vec::new();
    let b = args.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        if !(c.is_ascii_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        let prev_ident = i > 0 && ((b[i - 1] as char).is_ascii_alphanumeric() || b[i - 1] == b'_');
        let start = i;
        while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if prev_ident {
            continue;
        }
        let word = &args[start..i];
        let qualified = start >= 2 && &args[start - 2..start] == "::";
        if qualified {
            // Only accept `Ordering::X`-qualified tokens.
            let head_end = start - 2;
            let mut hs = head_end;
            while hs > 0 && ((b[hs - 1] as char).is_ascii_alphanumeric() || b[hs - 1] == b'_') {
                hs -= 1;
            }
            if &args[hs..head_end] != "Ordering" {
                continue;
            }
        }
        if let Some(o) = MemOrder::parse(word) {
            if qualified || !args.contains("Ordering::") {
                out.push(o);
            }
        }
    }
    out
}

/// Registers the atomic-typed names of a parameter list (fn signature
/// or typed closure) as `<param>`-holder pseudo-fields. A param
/// shadowing a tracked field name in its crate is ambiguous and loud.
fn bind_atomic_params(
    inner: &str,
    file: &AtlasFile,
    fi: usize,
    i: usize,
    index: &mut HashMap<(String, String), usize>,
    table: &mut AccessTable,
) {
    for part in split_top_commas(inner) {
        let Some((name, ty)) = part.split_once(':') else { continue };
        let name = name.trim().trim_start_matches("mut ").trim();
        let ty = ty.trim().trim_start_matches('&').trim();
        let ty = ty
            .strip_prefix('\'')
            .map(|r| r.split_once(' ').map(|(_, t)| t).unwrap_or(""))
            .unwrap_or(ty)
            .trim();
        if name.is_empty()
            || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
            || !mentions_atomic_primitive(ty)
        {
            continue;
        }
        let key = (file.crate_key.clone(), name.to_string());
        if let Some(&prev) = index.get(&key) {
            if table.fields[prev].holder != "<param>" {
                table.ambiguous.push(Unresolved {
                    file: fi,
                    line: i + 1,
                    what: format!(
                        "`{}::{}` field shadowed by an atomic fn param",
                        file.crate_key, name,
                    ),
                });
            }
            continue;
        }
        index.insert(key, table.fields.len());
        table.fields.push(FieldDecl {
            crate_key: file.crate_key.clone(),
            holder: "<param>".to_string(),
            name: name.to_string(),
            file: fi,
            line: i + 1,
            atomic: true,
            public: false,
            type_text: ty.to_string(),
            annotations: Vec::new(),
        });
    }
}

/// The identifiers bound by a `let`/`for`/closure pattern: handles
/// plain names, `mut x`, and tuple patterns like `(i, b)`.
fn pat_idents(pat: &str) -> Vec<String> {
    pat.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|s| {
            !s.is_empty()
                && !matches!(*s, "mut" | "ref" | "_")
                && s.chars().next().is_some_and(|c| !c.is_ascii_digit())
        })
        .map(str::to_string)
        .collect()
}

/// Local alias bindings of a file, in line order: `let cell =
/// ...&shard.cells[i]...;`, `for r in &self.readers`, and iterator
/// closures like `.map(|t| t.load(..))` whose enclosing statement
/// projects the field, all bind `cell`/`r`/`t` to a tracked field.
/// Only unambiguous single-field contexts bind; a use resolves against
/// the nearest binding at or above it, so rebindings of a name (the
/// usual `let theirs = ...` shadowing) do not leak backwards.
fn local_aliases(
    file: &AtlasFile,
    index: &HashMap<(String, String), usize>,
) -> HashMap<String, Vec<(usize, String)>> {
    // Fields projected (or statics mentioned) in `text`; bind only if
    // exactly one matches.
    let single_field = |text: &str| -> Option<String> {
        let mut fields: Vec<&String> = Vec::new();
        for (ck, fname) in index.keys() {
            if *ck != file.crate_key {
                continue;
            }
            let hit = !projections(text, fname).is_empty()
                || (fname.chars().next().is_some_and(|c| c.is_uppercase())
                    && lexer::has_word(text, fname));
            if hit {
                fields.push(fname);
            }
        }
        fields.sort();
        fields.dedup();
        match fields.as_slice() {
            [one] => Some((*one).clone()),
            _ => None,
        }
    };
    let mut out: HashMap<String, Vec<(usize, String)>> = HashMap::new();
    let lines = &file.src.lines;
    for (i, line) in lines.iter().enumerate() {
        if file.src.in_test[i] {
            continue;
        }
        let t = line.code.trim_start();
        let (pat, rhs) = if let Some(r) = t.strip_prefix("let ") {
            let Some(eq) = r.find('=') else { continue };
            let pat = r[..eq].split(':').next().unwrap_or("").trim();
            (pat.to_string(), r[eq + 1..].to_string())
        } else if let Some(r) = t.strip_prefix("for ") {
            let Some(inp) = r.find(" in ") else { continue };
            (r[..inp].trim().to_string(), r[inp + 4..].to_string())
        } else if let Some(b0) = t.find('|') {
            // Untyped iterator closure: the enclosing statement (this
            // line joined with its wrapped-receiver lines above) names
            // the field the closure iterates.
            let Some(rel) = t[b0 + 1..].find('|') else { continue };
            let pat = &t[b0 + 1..b0 + 1 + rel];
            if pat.contains(':') {
                continue; // typed — handled as a pseudo-field param
            }
            let mut stmt = String::new();
            let mut j = i;
            let mut taken = 0;
            while j > 0 && taken < 4 {
                let prev_line = &lines[j - 1];
                let prev = prev_line.code.trim();
                if prev.is_empty() {
                    // Pure comments (e.g. a reviewed-site justification
                    // inside the chain) do not end the statement.
                    if prev_line.comment.is_empty() {
                        break;
                    }
                    j -= 1;
                    continue;
                }
                if prev.ends_with([';', '{', '}']) {
                    break;
                }
                j -= 1;
                taken += 1;
                stmt.insert_str(0, prev);
            }
            stmt.push_str(t);
            (pat.to_string(), stmt)
        } else {
            continue;
        };
        if let Some(field) = single_field(&rhs) {
            for name in pat_idents(&pat) {
                out.entry(name).or_default().push((i, field.clone()));
            }
        }
    }
    out
}

/// Positions of `.name` field projections in a code line: preceded by a
/// receiver (`x.name`, `].name`, `).name`), word-bounded, and not a
/// method call (`.name(`).
fn projections(code: &str, name: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = code[from..].find(name) {
        let at = from + p;
        from = at + name.len();
        if at < 1 || b[at - 1] != b'.' {
            continue;
        }
        // Receiver check: the char before the dot must end an
        // expression (identifier, index, call) — rules out `..name`
        // ranges and struct-literal shorthand.
        if at < 2 {
            continue;
        }
        let before = b[at - 2] as char;
        if !(before.is_ascii_alphanumeric() || before == '_' || before == ']' || before == ')') {
            continue;
        }
        let end = at + name.len();
        if end < b.len() {
            let after = b[end] as char;
            if after.is_ascii_alphanumeric() || after == '_' || after == '(' {
                continue;
            }
        }
        out.push(at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sources: &[(&str, &str)]) -> (Vec<AtlasFile>, Vec<Item>, AccessTable) {
        let files: Vec<AtlasFile> = sources
            .iter()
            .map(|(p, s)| AtlasFile::from_source(p, s))
            .collect();
        let mut items = Vec::new();
        for (i, f) in files.iter().enumerate() {
            model::extract_items(i, f, &mut items);
        }
        let table = AccessTable::build(&files, &items);
        (files, items, table)
    }

    #[test]
    fn tracks_fields_and_orderings() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Ring {
    head: AtomicU64,
    mask: u64,
}
impl Ring {
    pub fn push(&self) {
        self.head.store(1, Ordering::Release);
    }
    pub fn pop(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(t.fields.len(), 1, "{:?}", t.fields);
        assert_eq!(t.fields[0].name, "head");
        assert!(t.fields[0].atomic);
        assert_eq!(t.accesses.len(), 2);
        let store = t.accesses.iter().find(|a| a.method == "store").unwrap();
        assert_eq!(store.store, Some(MemOrder::Release));
        assert_eq!(store.load, None);
        let load = t.accesses.iter().find(|a| a.method == "load").unwrap();
        assert!(load.load.unwrap().acquires());
        assert!(t.unbound.is_empty(), "{:?}", t.unbound);
    }

    #[test]
    fn carrier_fixpoint_and_tuple_index() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
#[repr(align(64))]
pub struct Pad(pub AtomicU64);
pub struct Shared {
    head: Pad,
    tail: Pad,
}
impl Shared {
    fn bump(&self) {
        self.head.0.store(1, Ordering::Release);
        let t = self.tail.0.load(Ordering::Acquire);
        let _ = t;
    }
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        let names: Vec<&str> = t.fields.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"head") && names.contains(&"tail"), "{names:?}");
        assert_eq!(t.accesses.len(), 2);
        assert!(t.unbound.is_empty(), "{:?}", t.unbound);
        let head = t.field_index("demo", "head").unwrap();
        assert!(t.accesses.iter().any(|a| a.field == head));
    }

    #[test]
    fn cas_splits_success_and_failure() {
        let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
struct L { seq: AtomicUsize }
impl L {
    fn claim(&self) -> bool {
        self.seq
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(t.accesses.len(), 2, "{:?}", t.accesses);
        let rmw = &t.accesses[0];
        assert_eq!(rmw.store, Some(MemOrder::AcqRel));
        assert_eq!(rmw.load, Some(MemOrder::AcqRel));
        let fail = &t.accesses[1];
        assert_eq!(fail.store, None);
        assert_eq!(fail.load, Some(MemOrder::Acquire));
        assert!(t.unknown_order.is_empty());
    }

    #[test]
    fn aliases_and_params_bind() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Shard { cells: [AtomicU64; 4] }
impl Shard {
    fn add(&self, i: usize) {
        let cell = &self.cells[i];
        cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }
}
pub fn drain(pending: &AtomicU64) -> u64 {
    pending.swap(0, Ordering::Relaxed)
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        assert!(t.unbound.is_empty(), "{:?}", t.unbound);
        let cells = t.field_index("demo", "cells").unwrap();
        assert_eq!(t.accesses.iter().filter(|a| a.field == cells).count(), 2);
        let pending = t.field_index("demo", "pending").unwrap();
        assert_eq!(t.fields[pending].holder, "<param>");
        assert_eq!(t.accesses.iter().filter(|a| a.field == pending).count(), 1);
    }

    #[test]
    fn annotations_parse_and_touches_found() {
        let src = "\
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
pub struct Cell2 {
    seq: AtomicUsize,
    // protocol: seqlock(seq)
    val: UnsafeCell<u64>,
}
impl Cell2 {
    fn publish(&self, v: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        unsafe { *self.val.get() = v };
        self.seq.store(s + 1, Ordering::Release);
    }
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        let val = t.field_index("demo", "val").unwrap();
        assert!(!t.fields[val].atomic);
        assert_eq!(t.fields[val].seqlock_stamp(), Some("seq"));
        let touch_lines: Vec<usize> = t
            .touches
            .iter()
            .filter(|x| x.field == val)
            .map(|x| x.line)
            .collect();
        assert_eq!(touch_lines, vec![11], "decl/init lines are not touches");
    }

    #[test]
    fn guard_annotation_and_ambiguity() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct A {
    // guarded-by: lock
    pub n: AtomicU64,
}
pub struct B { pub n: AtomicU64 }
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(t.fields.len(), 1, "duplicate dropped");
        assert_eq!(t.fields[0].guarded_by(), Some("lock"));
        assert_eq!(t.ambiguous.len(), 1, "{:?}", t.ambiguous);
    }

    #[test]
    fn non_atomic_load_calls_ignored_and_tests_skipped() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
pub struct C { n: AtomicU64 }
pub fn read_cfg(path: &str) -> String {
    store.load(path.to_string())
}
#[cfg(test)]
mod tests {
    fn t(c: &super::C) { c.n.store(1, Ordering::Relaxed); }
}
";
        let (_, _, t) = build(&[("crates/demo/src/lib.rs", src)]);
        assert!(t.accesses.is_empty(), "{:?}", t.accesses);
        assert!(t.unbound.is_empty(), "non-atomic `.load(cfg)` skipped");
    }
}
