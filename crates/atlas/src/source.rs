//! The workspace model: scanned source files with per-line test-region
//! flags, kernel-path classification, and suppression lookup.

use crate::lexer::{self, ScannedLine};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates on the kernel path: code that executes under the verified
/// stack's no-panic discipline (see ISSUE/DESIGN). `panic-freedom`
/// applies only to these crates' `src/` trees. `ulib` joined with the
/// ring executor: its poller pump sits on every ring-routed syscall,
/// so a panic there takes down the data plane as surely as one in the
/// engine.
pub const KERNEL_PATH_CRATES: &[&str] =
    &["kernel", "pagetable", "nr", "hw", "fs", "net", "uring", "ulib"];

/// One scanned workspace file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Scanned lines (index 0 is line 1).
    pub lines: Vec<ScannedLine>,
    /// Per-line flag: inside a `#[cfg(test)]` region or a `#[test]` fn.
    pub in_test: Vec<bool>,
    /// Crate directory name under `crates/` (e.g. `nr`), if any.
    pub crate_name: Option<String>,
    /// True for `tests/`, `benches/`, `examples/`, `build.rs` — code
    /// outside the shipped library/binary.
    pub test_path: bool,
}

impl SourceFile {
    /// Scans `src`, classifying lines and path. `rel_path` must use `/`
    /// separators.
    pub fn from_source(rel_path: &str, src: &str) -> SourceFile {
        let lines = lexer::scan(src);
        let in_test = mark_test_regions(&lines);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let test_path = rel_path.contains("/tests/")
            || rel_path.contains("/benches/")
            || rel_path.contains("/examples/")
            || rel_path.ends_with("build.rs");
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            in_test,
            crate_name,
            test_path,
        }
    }

    /// True when the file lives in a kernel-path crate's `src/` tree.
    pub fn is_kernel_path_src(&self) -> bool {
        !self.test_path
            && self.rel_path.contains("/src/")
            && self
                .crate_name
                .as_deref()
                .is_some_and(|c| KERNEL_PATH_CRATES.contains(&c))
    }

    /// True when a suppression for `lint_id` covers 0-based line `idx`.
    ///
    /// Syntax: `// lint: allow(<lint-id>) — reason` (a `-` works too).
    /// The directive must carry a non-empty reason and may sit on the
    /// flagged line itself or on the comment lines directly above it.
    pub fn is_suppressed(&self, lint_id: &str, idx: usize) -> bool {
        if suppresses(&self.lines[idx].comment, lint_id) {
            return true;
        }
        // Walk upward over comment-only / attribute lines. A line with
        // code of its own ends the chain: its trailing suppression
        // belongs to that line, not to the lines below it.
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let l = &self.lines[i];
            let pure_comment = l.is_code_blank() && !l.comment.is_empty();
            if !(pure_comment || l.is_attr()) {
                break;
            }
            if suppresses(&l.comment, lint_id) {
                return true;
            }
        }
        false
    }
}

/// Checks one comment string for a reasoned `lint: allow(<id>)`.
fn suppresses(comment: &str, lint_id: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    if rest[..close].trim() != lint_id {
        return false;
    }
    // Require a justification after the closing paren: at least a few
    // non-punctuation characters.
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim();
    reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3
}

/// Computes per-line test-region membership by tracking `#[cfg(test)]` /
/// `#[test]` attributes and brace depth.
fn mark_test_regions(lines: &[ScannedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth thresholds: a region is active while depth > entry depth.
    let mut regions: Vec<i64> = Vec::new();
    // A test attribute was seen and we are waiting for its item's `{`.
    let mut pending = false;

    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if line.is_attr() && (code.contains("cfg(test)") || code.contains("#[test]")) {
            pending = true;
        }
        let active_before = !regions.is_empty();
        let mut active_here = active_before || pending;

        for c in code.chars() {
            match c {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                        active_here = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while let Some(&entry) = regions.last() {
                        if depth <= entry {
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                ';' if pending && regions.is_empty() => {
                    // `#[cfg(test)] mod tests;` — out-of-line item; the
                    // region is the referenced file, not this one.
                    pending = false;
                }
                _ => {}
            }
        }
        flags[i] = active_here;
    }
    flags
}

/// The loaded workspace: every `.rs` file under the root, minus
/// excluded trees.
#[derive(Debug, Default)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into.
const EXCLUDED_DIRS: &[&str] = &["target", ".git", ".github", "results"];

impl Workspace {
    /// Walks `root` collecting all `.rs` files, excluding build output
    /// and the lint crate's own test fixtures (which intentionally
    /// violate every lint).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for path in entries {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if path.is_dir() {
                    if EXCLUDED_DIRS.contains(&name) {
                        continue;
                    }
                    let rel = rel_path(root, &path);
                    if rel.starts_with("crates/lint/tests/fixtures") {
                        continue;
                    }
                    stack.push(path);
                } else if name.ends_with(".rs") {
                    let src = fs::read_to_string(&path)?;
                    files.push(SourceFile::from_source(&rel_path(root, &path), &src));
                }
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Builds a workspace from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: sources
                .iter()
                .map(|(p, s)| SourceFile::from_source(p, s))
                .collect(),
        }
    }

    pub fn find(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_tracking() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { x.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::from_source("crates/nr/src/lib.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1]);
        assert!(f.in_test[2]);
        assert!(f.in_test[3]);
        assert!(f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn test_attr_fn_region() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn live() {}\n";
        let f = SourceFile::from_source("crates/nr/src/lib.rs", src);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3]);
        assert!(!f.in_test[4]);
    }

    #[test]
    fn out_of_line_test_mod_does_not_poison_rest() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let f = SourceFile::from_source("crates/nr/src/lib.rs", src);
        assert!(!f.in_test[2]);
    }

    #[test]
    fn kernel_path_classification() {
        let k = SourceFile::from_source("crates/nr/src/log.rs", "");
        assert!(k.is_kernel_path_src());
        let t = SourceFile::from_source("crates/nr/tests/randomized.rs", "");
        assert!(!t.is_kernel_path_src());
        let u = SourceFile::from_source("crates/ulib/src/runtime.rs", "");
        assert!(u.is_kernel_path_src(), "the ring executor is kernel-path");
        let b = SourceFile::from_source("crates/bench/src/uring.rs", "");
        assert!(!b.is_kernel_path_src());
        let root = SourceFile::from_source("src/lib.rs", "");
        assert!(!root.is_kernel_path_src());
    }

    #[test]
    fn suppression_same_line_and_above() {
        let src = "// lint: allow(panic-freedom) — bound checked above\n\
                   let x = v[0];\n\
                   let y = w.unwrap(); // lint: allow(panic-freedom) - spec guarantees Some\n\
                   let z = q.unwrap();\n";
        let f = SourceFile::from_source("crates/fs/src/memfs.rs", src);
        assert!(f.is_suppressed("panic-freedom", 1));
        assert!(f.is_suppressed("panic-freedom", 2));
        assert!(!f.is_suppressed("panic-freedom", 3));
        assert!(!f.is_suppressed("unsafe-audit", 1), "wrong lint id");
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "// lint: allow(panic-freedom)\nlet x = v.unwrap();\n";
        let f = SourceFile::from_source("crates/fs/src/memfs.rs", src);
        assert!(!f.is_suppressed("panic-freedom", 1));
    }
}
