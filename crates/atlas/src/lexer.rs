//! A hand-rolled lexical scanner for Rust source.
//!
//! The lints need to know, per line, *what is code and what is not*:
//! string/char-literal contents must not trigger keyword matches,
//! comments must be separated out (they carry `SAFETY:` audits,
//! `covers:` annotations, and suppression directives), and nested block
//! comments, raw strings, and attributes must all be tracked. This is
//! deliberately not a full Rust parser — the analyzer's whole point
//! (per the layering argument of the paper's §3 tooling discussion) is
//! to be a cheap, dependency-free discipline layer below the heavyweight
//! spec machinery, so it works line-by-line on lexical structure only.

/// One scanned source line, split into lexical classes.
#[derive(Clone, Debug, Default)]
pub struct ScannedLine {
    /// The line's code, with comment text removed and every string/char
    /// literal's content blanked (delimiters preserved). Keyword and
    /// pattern matching runs against this.
    pub code: String,
    /// Concatenated comment text on this line, including the `//`,
    /// `//!`, `///` or `/* */` delimiters.
    pub comment: String,
}

impl ScannedLine {
    /// True when the line has no code at all (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// True when the line's code is an attribute (`#[...]` / `#![...]`).
    pub fn is_attr(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#!")
    }
}

/// Scanner state across lines.
enum State {
    /// Plain code.
    Normal,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a `"..."` string.
    Str,
    /// Inside a raw string with `hashes` trailing `#` marks.
    RawStr(u32),
}

/// Scans `src` into per-line code/comment streams.
///
/// Handles: line comments (`//`, `///`, `//!`), nested block comments,
/// string literals with escapes, raw (and byte/raw-byte) strings with
/// arbitrary hash counts, char and byte literals vs lifetimes, and
/// attributes (left in the code stream; see [`ScannedLine::is_attr`]).
pub fn scan(src: &str) -> Vec<ScannedLine> {
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut state = State::Normal;
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0;

    // Looks ahead from a quote for `r"`/`r#"` raw-string openings and
    // returns the hash count.
    fn raw_open(chars: &[char], mut i: usize) -> Option<u32> {
        let mut hashes = 0;
        while i < chars.len() && chars[i] == '#' {
            hashes += 1;
            i += 1;
        }
        if i < chars.len() && chars[i] == '"' {
            Some(hashes)
        } else {
            None
        }
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    // Line comment: consume to end of line.
                    let start = i;
                    while i < n && chars[i] != '\n' {
                        i += 1;
                    }
                    cur.comment.extend(&chars[start..i]);
                    continue;
                }
                if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::BlockComment(1);
                    cur.comment.push_str("/*");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if (c == 'r' || c == 'b') && i + 1 < n {
                    // r"..", r#".."#, br".., b"..", b'..'
                    let (skip, rest) = if c == 'b' && chars[i + 1] == 'r' { (2, i + 2) } else { (1, i + 1) };
                    let raw = c == 'r' || (c == 'b' && chars[i + 1] == 'r');
                    // Only a literal when not part of an identifier.
                    let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    if !prev_ident {
                        if raw {
                            if let Some(h) = raw_open(&chars, rest) {
                                cur.code.extend(&chars[i..i + skip]);
                                for _ in 0..h {
                                    cur.code.push('#');
                                }
                                cur.code.push('"');
                                state = State::RawStr(h);
                                i = rest + h as usize + 1;
                                continue;
                            }
                        } else if c == 'b' && chars[i + 1] == '"' {
                            cur.code.push_str("b\"");
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                    }
                }
                if c == '\'' {
                    // Char/byte literal vs lifetime. A literal when the
                    // quote closes within a short span; a lifetime when
                    // followed by an identifier not closed by `'`.
                    if i + 1 < n && chars[i + 1] == '\\' {
                        // Escaped char literal: consume through closing quote.
                        cur.code.push_str("''");
                        i += 2; // past \
                        while i < n && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if i < n && chars[i] == '\'' {
                            i += 1;
                        }
                        continue;
                    }
                    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                        // Simple 'x' literal.
                        cur.code.push_str("''");
                        i += 3;
                        continue;
                    }
                    // Lifetime or stray quote: keep as code.
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    cur.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < n {
                    i += 2; // skip escaped char (contents are blanked)
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Check for closing `"###...`.
                    let mut j = i + 1;
                    let mut seen = 0;
                    while j < n && seen < hashes && chars[j] == '#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        state = State::Normal;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

/// True when `code` contains `word` as a standalone token (not part of a
/// longer identifier).
pub fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked() {
        let lines = scan(r#"let x = "unsafe { panic!() }"; call();"#);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("call()"));
        assert!(lines[0].code.contains("\"\""));
    }

    #[test]
    fn line_comments_split_out() {
        let lines = scan("foo(); // SAFETY: fine\nbar();");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].code.trim(), "foo();");
        assert!(lines[0].comment.contains("SAFETY: fine"));
        assert_eq!(lines[1].code.trim(), "bar();");
    }

    #[test]
    fn nested_block_comments() {
        let lines = scan("a /* one /* two */ still */ b");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains("two"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lines = scan(r###"let s = r#"has "quotes" and unsafe"#; end();"###);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("end()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; g(); }");
        assert!(lines[0].code.contains("<'a>"));
        assert!(lines[0].code.contains("g();"));
        // The '{' literal must not look like an open brace.
        let opens = lines[0].code.matches('{').count();
        let closes = lines[0].code.matches('}').count();
        assert_eq!(opens, closes, "blanked char literal kept brace balance");
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = scan("code();\n/* comment\nstill comment */\nmore();");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].is_code_blank());
        assert!(lines[2].is_code_blank());
        assert!(lines[2].comment.contains("still comment"));
        assert_eq!(lines[3].code.trim(), "more();");
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_code", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
        assert!(has_word("(unsafe)", "unsafe"));
    }

    #[test]
    fn attributes_recognized() {
        let lines = scan("#[cfg(test)]\nmod tests {}");
        assert!(lines[0].is_attr());
        assert!(!lines[1].is_attr());
    }
}
