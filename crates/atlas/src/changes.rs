//! Change sets for incremental selection: parse `git diff --unified=0`
//! output into per-file touched-line ranges, and classify paths into
//! *ignore* (docs, results, baselines), *select-all* (build config, CI,
//! the toolchain — anything whose effect the map cannot bound), and
//! *code* (intersect with VC footprints).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Touched lines of one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileChange {
    /// 1-based inclusive new-side ranges (a pure deletion contributes
    /// the boundary line).
    Ranges(Vec<(usize, usize)>),
    /// Whole file (deleted, renamed, or binary).
    Whole,
}

/// How a changed path feeds selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathClass {
    /// Cannot affect any obligation: docs, licenses, results, committed
    /// baselines (a baseline edit is judged by the full run on main).
    Ignore,
    /// Affects everything: build config, CI, toolchain, lockfile.
    SelectAll,
    /// Rust source — intersect with footprints.
    Code,
}

/// Classifies one workspace-relative path.
pub fn classify(path: &str) -> PathClass {
    let lower = path.to_ascii_lowercase();
    let base = lower.rsplit('/').next().unwrap_or(&lower);
    if base.ends_with(".md")
        || base.ends_with(".txt")
        || base.starts_with("license")
        || base == ".gitignore"
        || lower.starts_with("results/")
        || base.ends_with(".json")
    {
        return PathClass::Ignore;
    }
    if base == "build.rs"
        || base == "cargo.toml"
        || base == "cargo.lock"
        || base.starts_with("rust-toolchain")
        || lower.starts_with(".github/")
        || base.ends_with(".yml")
        || base.ends_with(".yaml")
    {
        return PathClass::SelectAll;
    }
    if base.ends_with(".rs") {
        return PathClass::Code;
    }
    // Unknown file types: conservative.
    PathClass::SelectAll
}

/// A parsed diff: every changed file with its touched ranges.
#[derive(Debug, Default)]
pub struct ChangeSet {
    pub files: BTreeMap<String, FileChange>,
}

impl ChangeSet {
    /// Runs `git diff --unified=0 <rev> -- .` at `root` and parses it.
    pub fn from_git(root: &Path, rev: &str) -> Result<ChangeSet, String> {
        let out = Command::new("git")
            .current_dir(root)
            .args(["diff", "--unified=0", "--no-color", rev, "--", "."])
            .output()
            .map_err(|e| format!("running git diff: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git diff {rev} failed: {}",
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(Self::from_diff(&String::from_utf8_lossy(&out.stdout)))
    }

    /// Parses unified-diff text (`--unified=0` hunk headers).
    pub fn from_diff(diff: &str) -> ChangeSet {
        let mut cs = ChangeSet::default();
        let mut old_path: Option<String> = None;
        let mut cur: Option<String> = None;
        for line in diff.lines() {
            if let Some(p) = line.strip_prefix("--- ") {
                old_path = p.strip_prefix("a/").map(str::to_string);
                continue;
            }
            if let Some(p) = line.strip_prefix("+++ ") {
                if p == "/dev/null" {
                    // Deleted file: every line of the old file is a
                    // change; select on the old path, whole-file.
                    if let Some(op) = old_path.take() {
                        cs.files.insert(op, FileChange::Whole);
                    }
                    cur = None;
                } else if let Some(np) = p.strip_prefix("b/") {
                    cur = Some(np.to_string());
                    cs.files
                        .entry(np.to_string())
                        .or_insert_with(|| FileChange::Ranges(Vec::new()));
                }
                continue;
            }
            if line.starts_with("Binary files") {
                if let Some(c) = &cur {
                    cs.files.insert(c.clone(), FileChange::Whole);
                }
                continue;
            }
            let Some(hunk) = line.strip_prefix("@@ ") else { continue };
            let Some(c) = &cur else { continue };
            // `@@ -l[,n] +l[,n] @@` — take the new-side range; a pure
            // deletion (n == 0) still touches the boundary line.
            let Some(plus) = hunk.split(' ').find(|t| t.starts_with('+')) else { continue };
            let mut it = plus[1..].split(',');
            let start: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            let count: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            let (a, b) = if count == 0 {
                (start.max(1), start.max(1))
            } else {
                (start.max(1), start + count - 1)
            };
            if let Some(FileChange::Ranges(rs)) = cs.files.get_mut(c) {
                rs.push((a, b));
            }
        }
        cs
    }

    /// Builds a change set from explicit entries (tests, tooling).
    pub fn from_entries(entries: &[(&str, FileChange)]) -> ChangeSet {
        ChangeSet {
            files: entries
                .iter()
                .map(|(p, c)| (p.to_string(), c.clone()))
                .collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("README.md"), PathClass::Ignore);
        assert_eq!(classify("BENCH_audit.json"), PathClass::Ignore);
        assert_eq!(classify("results/AUDIT.json"), PathClass::Ignore);
        assert_eq!(classify("Cargo.toml"), PathClass::SelectAll);
        assert_eq!(classify("crates/nr/Cargo.toml"), PathClass::SelectAll);
        assert_eq!(classify(".github/workflows/ci.yml"), PathClass::SelectAll);
        assert_eq!(classify("crates/net/src/rdt.rs"), PathClass::Code);
        assert_eq!(classify("crates/fs/build.rs"), PathClass::SelectAll);
    }

    #[test]
    fn parse_unified_zero() {
        let diff = "\
diff --git a/crates/net/src/rdt.rs b/crates/net/src/rdt.rs
--- a/crates/net/src/rdt.rs
+++ b/crates/net/src/rdt.rs
@@ -10,2 +10,3 @@ fn x() {
+new
@@ -40 +41,0 @@ fn y() {
diff --git a/gone.rs b/gone.rs
--- a/gone.rs
+++ /dev/null
@@ -1,5 +0,0 @@
";
        let cs = ChangeSet::from_diff(diff);
        assert_eq!(
            cs.files.get("crates/net/src/rdt.rs"),
            Some(&FileChange::Ranges(vec![(10, 12), (41, 41)]))
        );
        assert_eq!(cs.files.get("gone.rs"), Some(&FileChange::Whole));
    }
}
