//! The atlas against the real workspace: every runtime source file must
//! be visible to the map, every VC name the engines actually register
//! must resolve to a site, and selection must behave sanely for the
//! diff shapes CI exercises (docs-only, single-crate).

use std::path::PathBuf;

use veros_atlas::changes::{ChangeSet, FileChange};
use veros_atlas::DepMap;
use veros_spec::vc::VcEngine;

fn workspace_root() -> PathBuf {
    // crates/atlas -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn real_map() -> DepMap {
    DepMap::build(&workspace_root()).expect("map builds")
}

/// Every VC name in the Full profile, in registration order.
fn full_names() -> Vec<String> {
    let mut e = VcEngine::new();
    veros_core::vcs::register_all(&mut e, veros_core::vcs::Profile::Full);
    e.names().iter().map(|s| s.to_string()).collect()
}

#[test]
fn map_sees_every_runtime_file() {
    let cov = real_map().coverage();
    assert!(cov.files > 50, "workspace has dozens of runtime files");
    assert!(
        cov.unparsed.is_empty(),
        "files invisible to the map: {:?}",
        cov.unparsed
    );
    assert!(
        cov.stray_headers.is_empty(),
        "item headers the extractor missed: {:?}",
        cov.stray_headers
    );
    assert!(
        cov.unpatterned_sites.is_empty(),
        "register sites with no recoverable name pattern: {:?}",
        cov.unpatterned_sites
    );
    assert!(cov.sites >= 40, "found only {} register sites", cov.sites);
}

#[test]
fn every_registered_vc_is_anchored() {
    let map = real_map();
    let unanchored: Vec<String> = full_names()
        .into_iter()
        .filter(|n| map.footprint(n).is_none())
        .collect();
    assert!(
        unanchored.is_empty(),
        "VCs no site pattern claims: {unanchored:?}"
    );
}

/// The converse of anchoring: a name nothing registers must match no
/// site, so the unanchored gate can actually fire. This is what the
/// `covers: verified::*, unverified::*` override on the pagetable
/// scenario site buys — without it, its fully-dynamic `{tag}::{name}`
/// pattern would claim every `x::y` string.
#[test]
fn unregistered_names_are_unanchored() {
    let map = real_map();
    assert!(map.footprint("nope::definitely_not_registered").is_none());
    assert!(map.explain("nope::definitely_not_registered").is_none());
}

#[test]
fn pagetable_population_is_anchored_too() {
    let map = real_map();
    let mut e = VcEngine::new();
    veros_pagetable::vcs::register_all(&mut e, veros_pagetable::vcs::Profile::Quick);
    let unanchored: Vec<String> = e
        .names()
        .iter()
        .filter(|n| map.footprint(n).is_none())
        .map(|s| s.to_string())
        .collect();
    assert!(
        unanchored.is_empty(),
        "pagetable VCs no site claims: {unanchored:?}"
    );
}

#[test]
fn docs_only_diff_selects_nothing() {
    let map = real_map();
    let names = full_names();
    let cs = ChangeSet::from_entries(&[
        ("README.md", FileChange::Whole),
        ("DESIGN.md", FileChange::Ranges(vec![(1, 40)])),
        ("results/AUDIT.json", FileChange::Whole),
    ]);
    let selected = map.select(&names, &cs).iter().filter(|b| **b).count();
    assert_eq!(selected, 0, "docs-only diff must select no VCs");
}

#[test]
fn single_crate_diff_selects_strict_subset() {
    let map = real_map();
    let names = full_names();
    // Touch the whole of net's RDT implementation.
    let cs = ChangeSet::from_entries(&[("crates/net/src/rdt.rs", FileChange::Whole)]);
    let sel = map.select(&names, &cs);
    let selected = sel.iter().filter(|b| **b).count();
    assert!(selected > 0, "rdt edits must select the rdt family");
    // Strict subset: rdt's footprint is large (the whole replication
    // fleet rides RDT conversations) but must never reach the VCs that
    // never touch the network — the TLB cache family stays skipped.
    assert!(
        selected < names.len(),
        "single-crate diff selected everything ({selected}/{})",
        names.len()
    );
    for (name, picked) in names.iter().zip(&sel) {
        if name.starts_with("tlb::") {
            assert!(!picked, "rdt edit must not select {name}");
        }
    }
    // Every rdt-family VC must be in the selection (no false negative
    // on the directly-touched family).
    for (name, picked) in names.iter().zip(&sel) {
        if name.starts_with("rdt::") {
            assert!(picked, "rdt edit must select {name}");
        }
    }
}

#[test]
fn build_config_diff_selects_everything() {
    let map = real_map();
    let names = full_names();
    let cs = ChangeSet::from_entries(&[("Cargo.toml", FileChange::Ranges(vec![(1, 1)]))]);
    assert!(map.select(&names, &cs).iter().all(|b| *b));
}

/// The `audit --quick` module-coverage assertion (ISSUE 6 satellite):
/// every runtime crate of the workspace must be inside the union
/// footprint of the Quick profile, so profile drift can never silently
/// drop a crate from PR CI.
#[test]
fn quick_profile_covers_every_runtime_crate() {
    let map = real_map();
    let mut e = VcEngine::new();
    veros_core::vcs::register_all(&mut e, veros_core::vcs::Profile::Quick);
    let mut covered_crates = std::collections::BTreeSet::new();
    for name in e.names() {
        let fp = map
            .footprint(&name)
            .unwrap_or_else(|| panic!("{name} unanchored"));
        for fi in fp.keys() {
            if let Some(c) = map.files[*fi].rel_path.strip_prefix("crates/") {
                covered_crates.insert(c.split('/').next().unwrap().to_string());
            }
        }
    }
    // Every crate the root facade ships (tooling crates — lint, atlas,
    // bench — are exercised by their own tests, not by VCs).
    for krate in [
        "spec", "hw", "pagetable", "nr", "kernel", "fs", "net", "ulib", "uring", "core",
        "blockstore", "telemetry",
    ] {
        assert!(
            covered_crates.contains(krate),
            "no Quick-profile VC footprint reaches crates/{krate} (covered: {covered_crates:?})"
        );
    }
}

#[test]
fn explain_covers_every_full_profile_vc() {
    let map = real_map();
    for name in full_names() {
        let text = map.explain(&name).unwrap_or_else(|| panic!("no explain for {name}"));
        assert!(text.contains("footprint:"), "explain for {name} has no footprint");
        assert!(text.contains("site:"), "explain for {name} has no site");
    }
}
