//! Lexer edge-case regressions over the shared fixture.
//!
//! The same fixture is scanned by `crates/lint/tests/lexer_edges.rs`
//! through the re-exported path, so the two crates can never drift onto
//! different scanners without a test noticing.

use veros_atlas::lexer::scan;

const FIXTURE: &str = include_str!("fixtures/lexer_edges.rs");

#[test]
fn raw_strings_with_hashes_do_not_open_comments_or_close_early() {
    let lines = scan(FIXTURE);
    // `r"not//comment"`: the slashes are string content, not a comment.
    assert!(lines[3].code.contains("let url"));
    assert!(!lines[3].code.contains("not//comment"), "content is blanked");
    assert!(lines[3].comment.is_empty());
    // `r#".."#` guards an embedded quote and slashes.
    assert!(lines[4].code.contains("let hashed"));
    assert!(lines[4].comment.is_empty());
    // `r##"… "# …"##`: the inner `"#` must not terminate the string.
    assert!(lines[5].code.contains("let double"));
    assert!(lines[5].comment.is_empty());
    assert!(
        lines[5].code.trim_end().ends_with(';'),
        "raw string closed at ## guard, not at the embedded \"#: {:?}",
        lines[5].code
    );
}

#[test]
fn byte_and_raw_byte_strings_scan_as_strings() {
    let lines = scan(FIXTURE);
    assert!(lines[6].code.contains("let bytes"));
    assert!(lines[6].comment.is_empty(), "b\"..//..\" is not a comment");
    assert!(lines[7].code.contains("let raw_bytes"));
    assert!(lines[7].comment.is_empty());
}

#[test]
fn nested_block_comment_ends_once_and_code_after_it_counts() {
    let lines = scan(FIXTURE);
    assert!(lines[8].comment.contains("nested"));
    assert!(lines[8].comment.contains("still comment"));
    assert!(
        lines[8].code.contains("let after_comment"),
        "code after the outer close is code: {:?}",
        lines[8].code
    );
}

#[test]
fn slashes_inside_plain_strings_stay_strings() {
    let lines = scan(FIXTURE);
    assert!(lines[9].code.contains("let plain"));
    assert!(!lines[9].code.contains("slashes"), "content is blanked");
    assert_eq!(lines[9].comment.trim(), "// real trailing comment");
    // Escaped quotes do not end the string early.
    assert!(lines[10].code.contains("let escaped"));
    assert!(lines[10].comment.is_empty());
    assert!(!lines[10].code.contains("hi"));
}

#[test]
fn quote_chars_and_lifetimes_do_not_open_strings() {
    let lines = scan(FIXTURE);
    assert!(lines[11].code.contains("let ch"));
    assert!(lines[11].comment.is_empty(), "'\"' must not open a string");
    assert!(lines[12].code.contains("let not_lifetime"));
    assert!(lines[13].code.contains("static"), "lifetime is code");
    assert_eq!(lines[14].comment.trim(), "// done");
}
