//! Fixture: lexer edge cases shared by the atlas and lint test suites.

fn edges() {
    let url = r"not//comment";
    let hashed = r#"quote " and // inside"#;
    let double = r##"nested "# guard"##;
    let bytes = b"bytes // not comment";
    let raw_bytes = br#"raw bytes " too"#;
    /* block /* nested */ still comment */ let after_comment = 1;
    let plain = "string // with slashes"; // real trailing comment
    let escaped = "say \"hi\" // still string";
    let ch = '"';
    let not_lifetime = 'a';
    let lt: &'static str = "x";
} // done
