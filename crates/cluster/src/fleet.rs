//! The fleet harness: N storage nodes, a coordinator, C clients, one
//! fault-injecting wire.
//!
//! Host layout: storage nodes are hosts `0..nodes`, the coordinator is
//! host `nodes`, clients are hosts `nodes + 1 ..`. The network is built
//! with [`Network::new_fleet`] so a thousand-client fleet doesn't pay a
//! quadratic neighbour fill. [`Fleet::step`] advances the whole world
//! one tick: wire, coordinator, every live node, every client — all
//! deterministic in `(config, seed)`.
//!
//! [`Fleet::pair`] is the degenerate configuration — two nodes, 2-way
//! replication, one shard — that reproduces the original primary/backup
//! `Cluster` harness as a special case of the general machinery.

use veros_blockstore::BlockStore;
use veros_net::ip::IpAddr;
use veros_net::sim::{FaultPlan, Network};

use crate::client::{FleetClient, Op, OpResult};
use crate::node::{FleetNode, COORD_PORT, NODE_CTRL};
use crate::shard::ShardMap;
use crate::view::Coordinator;

/// Default step budget for blocking test helpers.
pub const OP_BUDGET: u64 = 20_000;

/// Fleet geometry and environment.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Storage nodes.
    pub nodes: u16,
    /// Chain replication factor `M`.
    pub replication: usize,
    /// Shard count (keys hash into these).
    pub shards: u32,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
    /// Client hosts.
    pub clients: u16,
    /// Wire behaviour.
    pub plan: FaultPlan,
    /// Determinism seed (wire faults).
    pub seed: u64,
    /// Disk sectors per node's block store.
    pub sectors: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            replication: 3,
            shards: 64,
            vnodes: 16,
            clients: 4,
            plan: FaultPlan::reliable(),
            seed: 1,
            sectors: 1 << 13,
        }
    }
}

/// The running fleet.
pub struct Fleet {
    /// The wire.
    pub net: Network,
    /// Storage nodes, index = host id.
    pub nodes: Vec<FleetNode>,
    /// The membership coordinator (host `nodes.len()`).
    pub coordinator: Coordinator,
    /// Clients, index `c` = host `nodes.len() + 1 + c`.
    pub clients: Vec<FleetClient>,
    /// The shard map every participant routes by.
    pub map: ShardMap,
    alive: Vec<bool>,
    now: u64,
    /// Death ticks not yet matched with a completed client operation —
    /// the `cluster.failover.time` samples in flight.
    pending_failovers: Vec<u64>,
}

impl Fleet {
    /// Builds a fleet from `cfg`.
    pub fn new(cfg: FleetConfig) -> Self {
        let n = cfg.nodes;
        let total = n + 1 + cfg.clients;
        // Hubs = nodes + coordinator; clients only ever talk to hubs.
        let mut net = Network::new_fleet(total, n + 1, cfg.plan, cfg.seed);
        let map = ShardMap::new(n, cfg.replication, cfg.shards, cfg.vnodes);
        let coord_addr = (IpAddr::host(n), COORD_PORT);
        let nodes: Vec<FleetNode> = (0..n)
            .map(|i| {
                let store = BlockStore::format(cfg.sectors);
                FleetNode::new(i, store, map.clone(), net.host(i as usize), coord_addr)
            })
            .collect();
        let csock = net.host(n as usize).bind(COORD_PORT).expect("coord port");
        let targets = (0..n).map(|i| (IpAddr::host(i), NODE_CTRL)).collect();
        let coordinator = Coordinator::new(csock, n, targets);
        let clients = (0..cfg.clients)
            .map(|c| {
                let host = n + 1 + c;
                FleetClient::new(host, map.clone(), net.host(host as usize))
            })
            .collect();
        Self {
            net,
            nodes,
            coordinator,
            clients,
            map,
            alive: vec![true; n as usize],
            now: 0,
            pending_failovers: Vec::new(),
        }
    }

    /// The original harness as a special case: two nodes, 2-way chain,
    /// a single shard, one client.
    pub fn pair(plan: FaultPlan, seed: u64) -> Self {
        Self::new(FleetConfig {
            nodes: 2,
            replication: 2,
            shards: 1,
            vnodes: 8,
            clients: 1,
            plan,
            seed,
            ..FleetConfig::default()
        })
    }

    /// Current simulation tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether node `i` is still running.
    pub fn alive(&self, i: u16) -> bool {
        self.alive[i as usize]
    }

    /// Fail-stops node `i`: it no longer processes anything, its
    /// heartbeats cease, and the coordinator will eventually remove it.
    pub fn kill_node(&mut self, i: u16) {
        self.alive[i as usize] = false;
        self.pending_failovers.push(self.now);
    }

    /// One tick of the whole world.
    pub fn step(&mut self) {
        self.net.step();
        let n = self.nodes.len();
        self.coordinator.step(self.net.host(n), self.now);
        for i in 0..n {
            if self.alive[i] {
                self.nodes[i].poll(self.net.host(i), self.now);
            }
        }
        for c in 0..self.clients.len() {
            let host = n + 1 + c;
            self.clients[c].poll(self.net.host(host), self.now);
        }
        self.now += 1;
    }

    /// Runs `steps` ticks.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Submits `op` on client `c` now and pumps until it completes;
    /// `None` if `budget` ticks pass first.
    pub fn run_op(&mut self, c: usize, op: Op, budget: u64) -> Option<OpResult> {
        let done = self.clients[c].results.len();
        let now = self.now;
        self.clients[c].submit(now, op);
        for _ in 0..budget {
            self.step();
            if self.clients[c].results.len() > done {
                // First completion after a death is the failover sample:
                // the client rode out suspicion, the view change, and
                // promotion before this answer arrived.
                for death in self.pending_failovers.drain(..) {
                    crate::metrics::FAILOVER_TIME.record(self.now - death);
                }
                return self.clients[c].results.last().cloned();
            }
        }
        None
    }

    /// Pumps until every client is idle; false if `budget` ticks pass
    /// first.
    pub fn run_until_idle(&mut self, budget: u64) -> bool {
        for _ in 0..budget {
            if self.clients.iter().all(FleetClient::idle) {
                return true;
            }
            self.step();
        }
        self.clients.iter().all(FleetClient::idle)
    }

    /// The chain currently serving `key` under the coordinator's view.
    pub fn chain_for_key(&self, key: &str) -> Vec<u16> {
        self.map.chain_for_key(key, &self.coordinator.view().live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_blockstore::Response;

    fn put(key: &str, data: &[u8]) -> Op {
        Op::Put { key: key.into(), data: data.to_vec() }
    }

    fn get(key: &str) -> Op {
        Op::Get { key: key.into() }
    }

    #[test]
    fn put_get_delete_across_the_fleet() {
        let mut f = Fleet::new(FleetConfig { clients: 1, ..FleetConfig::default() });
        for i in 0..12u32 {
            let key = format!("obj-{i}");
            let r = f.run_op(0, put(&key, key.as_bytes()), OP_BUDGET).expect("put completes");
            assert!(r.ok, "{:?}", r.resp);
        }
        for i in 0..12u32 {
            let key = format!("obj-{i}");
            let r = f.run_op(0, get(&key), OP_BUDGET).expect("get completes");
            assert_eq!(r.read.as_deref(), Some(key.as_bytes()), "{key}");
        }
        let r = f
            .run_op(0, Op::Delete { key: "obj-3".into() }, OP_BUDGET)
            .expect("delete completes");
        assert!(matches!(r.resp, Response::DeleteOk { .. }), "{:?}", r.resp);
        let r = f.run_op(0, get("obj-3"), OP_BUDGET).expect("get completes");
        assert!(matches!(r.resp, Response::NotFound { .. }), "{:?}", r.resp);
    }

    #[test]
    fn acked_writes_reach_every_chain_member() {
        let mut f = Fleet::new(FleetConfig { clients: 1, ..FleetConfig::default() });
        let r = f.run_op(0, put("replicated", b"everywhere"), OP_BUDGET).expect("completes");
        assert!(r.ok);
        let chain = f.chain_for_key("replicated");
        assert_eq!(chain.len(), 3);
        for m in chain {
            assert_eq!(
                f.nodes[m as usize].store.get("replicated").expect("member has it").0,
                b"everywhere",
                "member {m}"
            );
        }
    }

    #[test]
    fn hostile_wire_fleet_still_serves() {
        let mut f = Fleet::new(FleetConfig {
            clients: 2,
            plan: FaultPlan::hostile(),
            seed: 9,
            ..FleetConfig::default()
        });
        for i in 0..6u32 {
            let key = format!("h-{i}");
            let r = f.run_op((i % 2) as usize, put(&key, &[i as u8; 32]), OP_BUDGET).expect("put");
            assert!(r.ok, "{:?}", r.resp);
        }
        for i in 0..6u32 {
            let key = format!("h-{i}");
            let r = f.run_op((i % 2) as usize, get(&key), OP_BUDGET).expect("get");
            assert_eq!(r.read.as_deref(), Some(&[i as u8; 32][..]), "{key}");
        }
    }

    #[test]
    fn failover_survives_loss_of_any_chain_position() {
        for victim_pos in 0..3usize {
            let mut f = Fleet::new(FleetConfig { clients: 1, ..FleetConfig::default() });
            let r = f.run_op(0, put("precious", b"acked"), OP_BUDGET).expect("put");
            assert!(r.ok);
            let chain = f.chain_for_key("precious");
            f.kill_node(chain[victim_pos]);
            let r = f.run_op(0, get("precious"), OP_BUDGET).expect("get after failover");
            assert_eq!(
                r.read.as_deref(),
                Some(&b"acked"[..]),
                "victim position {victim_pos} (node {})",
                chain[victim_pos]
            );
        }
    }

    /// Satellite: a write in flight when its head dies is retried
    /// against the promoted node and applies exactly once. A delete
    /// makes double-apply observable: the retry must come back
    /// `DeleteOk` (served from the dedup cache or applied once), never
    /// `NotFound` (re-applied after the original already deleted).
    #[test]
    fn in_flight_write_is_exactly_once_across_failover() {
        for kill_delay in [0u64, 2, 4, 8, 16] {
            let mut f = Fleet::new(FleetConfig { clients: 1, ..FleetConfig::default() });
            let r = f.run_op(0, put("victim-key", b"v1"), OP_BUDGET).expect("seed put");
            assert!(r.ok);
            let head = f.chain_for_key("victim-key")[0];
            // Submit the delete, let it travel for `kill_delay` ticks,
            // then fail-stop the head with the write in flight.
            let now = f.now();
            let done = f.clients[0].results.len();
            f.clients[0].submit(now, Op::Delete { key: "victim-key".into() });
            f.run(kill_delay);
            f.kill_node(head);
            let mut result = None;
            for _ in 0..OP_BUDGET {
                f.step();
                if f.clients[0].results.len() > done {
                    result = f.clients[0].results.last().cloned();
                    break;
                }
            }
            let r = result.expect("delete completes despite head death");
            assert!(
                matches!(r.resp, Response::DeleteOk { .. }),
                "kill_delay {kill_delay}: retried delete must be exactly-once, got {:?}",
                r.resp
            );
            // The key is gone from every surviving chain member.
            for m in f.chain_for_key("victim-key") {
                if f.alive(m) {
                    assert!(
                        f.nodes[m as usize].store.get("victim-key").is_err(),
                        "kill_delay {kill_delay}: member {m} resurrected the key"
                    );
                }
            }
        }
    }

    #[test]
    fn promoted_member_syncs_shard_and_serves_reads() {
        let mut f = Fleet::new(FleetConfig { clients: 1, ..FleetConfig::default() });
        let r = f.run_op(0, put("synced", b"payload"), OP_BUDGET).expect("put");
        assert!(r.ok);
        let old_chain = f.chain_for_key("synced");
        f.kill_node(old_chain[1]); // A mid-chain member dies.
        // Let detection, promotion, and the shard sync run.
        let r = f.run_op(0, get("synced"), OP_BUDGET).expect("get");
        assert_eq!(r.read.as_deref(), Some(&b"payload"[..]));
        f.run(2_000);
        let new_chain = f.chain_for_key("synced");
        assert_eq!(new_chain.len(), 3, "chain regained full width");
        assert!(!new_chain.contains(&old_chain[1]));
        let joined = *new_chain.last().expect("non-empty");
        assert_eq!(
            f.nodes[joined as usize].store.get("synced").expect("synced copy").0,
            b"payload",
            "new member {joined} pulled the shard"
        );
    }

    #[test]
    fn pair_reproduces_the_two_node_cluster() {
        let mut f = Fleet::pair(FaultPlan::reliable(), 5);
        assert_eq!(f.map.replication(), 2);
        assert_eq!(f.map.shards(), 1);
        let r = f.run_op(0, put("k", b"v"), OP_BUDGET).expect("put");
        assert!(r.ok);
        // Both replicas hold the block (primary/backup semantics).
        for m in 0..2u16 {
            assert_eq!(f.nodes[m as usize].store.get("k").expect("replica").0, b"v");
        }
        // Killing either node leaves the data readable.
        f.kill_node(f.chain_for_key("k")[0]);
        let r = f.run_op(0, get("k"), OP_BUDGET).expect("get");
        assert_eq!(r.read.as_deref(), Some(&b"v"[..]));
    }
}
