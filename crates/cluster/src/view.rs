//! Deterministic membership: heartbeats in, epoch-numbered views out.
//!
//! Storage nodes send fixed-interval heartbeat datagrams to a
//! coordinator host. The coordinator declares a node dead when no
//! heartbeat arrives within a deadline, bumps the **epoch**, and
//! (re)broadcasts the new [`View`] to every storage node — over plain
//! lossy datagrams, so views are resent every interval until the world
//! is quiet. Nodes adopt any view with a higher epoch than their own.
//! Clients do *not* depend on the coordinator: they detect dead nodes
//! by RPC timeout and recompute chains locally, so the coordinator is
//! never on the data path.
//!
//! Everything is driven by the simulation tick, so a whole
//! kill-detect-promote-sync failover is a deterministic function of
//! (seed, schedule) — exactly what the invariant sweeps need.

use std::collections::BTreeSet;

use veros_net::ip::IpAddr;
use veros_net::socket::SocketId;
use veros_net::stack::NetStack;

/// Heartbeat datagram tag.
pub const TAG_HEARTBEAT: u8 = 0xB1;
/// View datagram tag.
pub const TAG_VIEW: u8 = 0xB2;

/// Ticks between node heartbeats.
pub const HEARTBEAT_EVERY: u64 = 16;
/// Ticks without a heartbeat before the coordinator declares death.
/// Several heartbeat intervals: a hostile wire loses individual frames,
/// not four in a row, so false positives stay out of the sweeps.
pub const DEATH_DEADLINE: u64 = 5 * HEARTBEAT_EVERY;
/// Ticks between coordinator view (re)broadcasts.
pub const VIEW_EVERY: u64 = 8;

/// A membership view: the epoch and the set of live storage nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotonic view number; nodes adopt strictly newer views only.
    pub epoch: u64,
    /// Live storage nodes (host ids).
    pub live: BTreeSet<u16>,
}

impl View {
    /// The epoch-0 view where `nodes` storage nodes are all live.
    pub fn initial(nodes: u16) -> Self {
        Self {
            epoch: 0,
            live: (0..nodes).collect(),
        }
    }

    /// Serializes the view into a datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + self.live.len() * 2);
        out.push(TAG_VIEW);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.live.len() as u32).to_le_bytes());
        for n in &self.live {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Parses a view datagram; `None` on anything malformed.
    pub fn decode(bytes: &[u8]) -> Option<View> {
        if bytes.len() < 13 || bytes[0] != TAG_VIEW {
            return None;
        }
        let epoch = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
        let n = u32::from_le_bytes(bytes[9..13].try_into().ok()?) as usize;
        if n > u16::MAX as usize || bytes.len() != 13 + n * 2 {
            return None;
        }
        let live = (0..n)
            .map(|i| u16::from_le_bytes([bytes[13 + i * 2], bytes[14 + i * 2]]))
            .collect();
        Some(View { epoch, live })
    }
}

/// Encodes a node's heartbeat datagram.
pub fn heartbeat(node: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(3);
    out.push(TAG_HEARTBEAT);
    out.extend_from_slice(&node.to_le_bytes());
    out
}

/// The membership coordinator: one socket, heartbeat bookkeeping, view
/// broadcast. Lives on its own host, off the data path.
pub struct Coordinator {
    sock: SocketId,
    view: View,
    /// Last heartbeat tick per node (dead nodes are dropped).
    last_seen: Vec<(u16, u64)>,
    /// Storage-node control addresses the view is pushed to.
    targets: Vec<(IpAddr, u16)>,
    next_broadcast: u64,
}

impl Coordinator {
    /// Creates a coordinator over `sock` tracking `nodes` storage
    /// nodes whose control sockets listen at `targets`.
    pub fn new(sock: SocketId, nodes: u16, targets: Vec<(IpAddr, u16)>) -> Self {
        Self {
            sock,
            view: View::initial(nodes),
            last_seen: (0..nodes).map(|n| (n, 0)).collect(),
            targets,
            next_broadcast: 0,
        }
    }

    /// The coordinator's current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// One tick: absorb heartbeats, declare the late dead, rebroadcast.
    pub fn step(&mut self, stack: &mut NetStack, now: u64) {
        while let Ok(Some((_, _, data))) = stack.recv_from(self.sock) {
            if data.len() == 3 && data[0] == TAG_HEARTBEAT {
                let node = u16::from_le_bytes([data[1], data[2]]);
                if let Some(slot) = self.last_seen.iter_mut().find(|(n, _)| *n == node) {
                    slot.1 = now;
                }
            }
        }
        let mut died = false;
        self.last_seen.retain(|(node, seen)| {
            let dead = now.saturating_sub(*seen) > DEATH_DEADLINE;
            if dead {
                self.view.live.remove(node);
                died = true;
            }
            !dead
        });
        if died {
            self.view.epoch += 1;
            crate::metrics::VIEW_EPOCH.set(self.view.epoch);
            self.next_broadcast = now; // Push the new view immediately.
        }
        if now >= self.next_broadcast {
            let msg = self.view.encode();
            for (ip, port) in &self.targets {
                let _ = stack.send_to(self.sock, *ip, *port, msg.clone());
            }
            self.next_broadcast = now + VIEW_EVERY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_round_trips() {
        let v = View {
            epoch: 9,
            live: [0u16, 3, 7, 1000].into_iter().collect(),
        };
        assert_eq!(View::decode(&v.encode()), Some(v.clone()));
        // Truncations and bad tags rejected.
        let full = v.encode();
        for cut in 0..full.len() {
            assert_eq!(View::decode(&full[..cut]), None, "cut {cut}");
        }
        let mut bad = full.clone();
        bad[0] = 0x77;
        assert_eq!(View::decode(&bad), None);
    }

    #[test]
    fn heartbeat_is_tiny_and_tagged() {
        let h = heartbeat(1001);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], TAG_HEARTBEAT);
        assert_eq!(u16::from_le_bytes([h[1], h[2]]), 1001);
    }

    #[test]
    fn initial_view_contains_every_node() {
        let v = View::initial(5);
        assert_eq!(v.epoch, 0);
        assert_eq!(v.live.len(), 5);
    }
}
