//! The shard map: consistent hashing with virtual nodes.
//!
//! Keys hash into a fixed number of **shards**; each shard hashes onto a
//! ring of **virtual nodes** (every physical node contributes `vnodes`
//! ring points), and the shard's **replication chain** is the first `M`
//! distinct *live* physical nodes walking clockwise from the shard's
//! ring position. Two properties carry the fleet's correctness and
//! rebalance cost, both pinned by property tests below:
//!
//! * **coverage** — under any live set of at least `M` nodes, every
//!   shard's chain has exactly `M` distinct live members;
//! * **stability** — removing one node only changes the chains that
//!   contained it (expected `M/N` of all shards): a failover rebalances
//!   `O(K·M/N)` keys, never the whole keyspace.

use std::collections::BTreeSet;

use veros_spec::rng::fnv1a;

/// The fleet's sharding geometry. Pure data + pure functions: every
/// node and client computes identical chains from identical live sets,
/// which is what makes client-side routing and node-side serving agree
/// without a metadata service in the data path.
#[derive(Clone, Debug)]
pub struct ShardMap {
    nodes: u16,
    replication: usize,
    shards: u32,
    /// Sorted ring of (point, physical node) virtual nodes.
    ring: Vec<(u64, u16)>,
}

impl ShardMap {
    /// Builds the map for physical nodes `0..nodes`, `replication`-way
    /// chains, `shards` key partitions, and `vnodes` ring points per
    /// physical node.
    pub fn new(nodes: u16, replication: usize, shards: u32, vnodes: usize) -> Self {
        let mut ring = Vec::with_capacity(nodes as usize * vnodes);
        for n in 0..nodes {
            for v in 0..vnodes {
                let mut tag = [0u8; 4];
                tag[..2].copy_from_slice(&n.to_le_bytes());
                tag[2..].copy_from_slice(&(v as u16).to_le_bytes());
                ring.push((fnv1a(&tag), n));
            }
        }
        ring.sort_unstable();
        Self {
            nodes,
            replication: replication.max(1),
            shards: shards.max(1),
            ring,
        }
    }

    /// Number of physical nodes the map was built for.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Replication factor `M`.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard a key belongs to.
    pub fn shard_of(&self, key: &str) -> u32 {
        (fnv1a(key.as_bytes()) % self.shards as u64) as u32
    }

    /// The replication chain of `shard` under `live`: the first `M`
    /// distinct live physical nodes clockwise from the shard's ring
    /// position (fewer when fewer than `M` nodes are live). `chain[0]`
    /// is the head (all writes enter here), the last entry the tail
    /// (preferred read replica).
    pub fn chain(&self, shard: u32, live: &BTreeSet<u16>) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.replication);
        if self.ring.is_empty() {
            return out;
        }
        let point = fnv1a(&shard.to_le_bytes());
        let start = self.ring.partition_point(|(p, _)| *p < point);
        for i in 0..self.ring.len() {
            let (_, node) = self.ring[(start + i) % self.ring.len()];
            if live.contains(&node) && !out.contains(&node) {
                out.push(node);
                if out.len() == self.replication {
                    break;
                }
            }
        }
        out
    }

    /// The replication chain serving `key` under `live`.
    pub fn chain_for_key(&self, key: &str, live: &BTreeSet<u16>) -> Vec<u16> {
        self.chain(self.shard_of(key), live)
    }

    /// The live set containing every node.
    pub fn all_live(&self) -> BTreeSet<u16> {
        (0..self.nodes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veros_spec::rng::SpecRng;

    fn map() -> ShardMap {
        ShardMap::new(8, 3, 64, 16)
    }

    /// Coverage: every shard (hence every key) is owned by exactly `M`
    /// distinct live nodes, under the full live set and under every
    /// single-node failure.
    #[test]
    fn every_key_owned_by_exactly_m_live_nodes() {
        let m = map();
        let full = m.all_live();
        for dead in (0..8u16).map(Some).chain([None]) {
            let mut live = full.clone();
            if let Some(d) = dead {
                live.remove(&d);
            }
            for shard in 0..m.shards() {
                let chain = m.chain(shard, &live);
                assert_eq!(chain.len(), 3, "shard {shard}, dead {dead:?}");
                let distinct: BTreeSet<u16> = chain.iter().copied().collect();
                assert_eq!(distinct.len(), 3, "duplicate members");
                assert!(chain.iter().all(|n| live.contains(n)), "dead member in chain");
            }
        }
    }

    /// Keys route to the chain of their shard, deterministically.
    #[test]
    fn key_routing_is_deterministic_and_shard_aligned() {
        let m = map();
        let live = m.all_live();
        let mut rng = SpecRng::seeded(7);
        for _ in 0..200 {
            let key = format!("obj-{}", rng.next_u64());
            let shard = m.shard_of(&key);
            assert!(shard < m.shards());
            assert_eq!(m.chain_for_key(&key, &live), m.chain(shard, &live));
        }
    }

    /// Stability: killing one node changes only the chains that
    /// contained it — the rebalance is O(M/N) of the shards, not a
    /// global reshuffle — and surviving prefixes are preserved (the
    /// new chain is the old chain minus the victim plus one appended
    /// successor).
    #[test]
    fn rebalance_after_one_death_moves_few_shards() {
        let m = map();
        let full = m.all_live();
        for dead in 0..8u16 {
            let mut live = full.clone();
            live.remove(&dead);
            let mut changed = 0;
            for shard in 0..m.shards() {
                let before = m.chain(shard, &full);
                let after = m.chain(shard, &live);
                if before == after {
                    continue;
                }
                changed += 1;
                // Only chains that contained the victim change…
                assert!(before.contains(&dead), "untouched chain moved: shard {shard}");
                // …and the survivors keep their relative order (the new
                // member joins; nobody else is displaced).
                let survivors: Vec<u16> =
                    before.iter().copied().filter(|n| *n != dead).collect();
                assert_eq!(after[..survivors.len()], survivors[..], "shard {shard}");
            }
            // Expected fraction M/N = 3/8 of shards; allow 2x slack for
            // ring imbalance but rule out global reshuffles.
            let ceiling = (m.shards() as usize * m.replication() * 2) / m.nodes() as usize;
            assert!(
                changed <= ceiling,
                "death of {dead} moved {changed}/{} shards (> {ceiling})",
                m.shards()
            );
        }
    }

    /// Virtual nodes spread shard ownership: every node heads at least
    /// one shard and no node heads a majority.
    #[test]
    fn virtual_nodes_balance_ownership() {
        let m = map();
        let live = m.all_live();
        let mut heads = [0usize; 8];
        for shard in 0..m.shards() {
            heads[m.chain(shard, &live)[0] as usize] += 1;
        }
        for (n, h) in heads.iter().enumerate() {
            assert!(*h > 0, "node {n} heads nothing");
            assert!(*h < 32, "node {n} heads {h}/64 shards");
        }
    }

    /// Degenerate live sets degrade gracefully: fewer than M live nodes
    /// yield a shorter chain, never a panic or a dead member.
    #[test]
    fn short_live_sets_shrink_the_chain() {
        let m = map();
        let live: BTreeSet<u16> = [2u16].into_iter().collect();
        for shard in 0..m.shards() {
            assert_eq!(m.chain(shard, &live), vec![2]);
        }
        assert!(m.chain(0, &BTreeSet::new()).is_empty());
    }
}
