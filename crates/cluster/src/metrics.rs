//! Telemetry instruments for the fleet.
//!
//! All instruments are process-global `veros-telemetry` statics that
//! compile to no-ops with the `telemetry` feature off. On top of the
//! aggregate counters/histograms, the fleet exports **per-node** and
//! **per-shard** metric views — fixed banks of 16 counters indexed by
//! `node % 16` / `shard % 16` — so a hot node or a hot shard shows up
//! in the report without per-entity dynamic registration (instrument
//! names must be `&'static str`). [`export`] registers everything under
//! the `cluster.` prefix; see `OBSERVABILITY.md`.

use veros_telemetry::{Counter, Histogram, Registry};

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Client operations acknowledged end to end (all replicas applied).
pub static OPS_COMPLETED: Counter = Counter::new();

/// Client operations re-issued after a timeout or a `Retry` response.
pub static OPS_RETRIED: Counter = Counter::new();

/// Retried writes answered from a node's dedup cache instead of being
/// re-applied — each tick is a double-apply that exactly-once prevented.
pub static DEDUP_HITS: Counter = Counter::new();

/// Chain replication lag: ticks from a head forwarding a write until
/// the downstream ack releases the client response.
pub static REPLICATION_LAG: Histogram = Histogram::new();

/// Failover time: ticks from a node death until the next client
/// operation routed around it completes.
pub static FAILOVER_TIME: Histogram = Histogram::new();

/// Shard synchronizations completed by newly promoted chain members.
pub static SHARD_SYNCS: Counter = Counter::new();

/// The coordinator's current membership epoch (bumped per detected
/// death). A plain feature-gated atomic rather than a [`Counter`]:
/// epochs are *set* to the coordinator's value, not accumulated.
pub static VIEW_EPOCH: EpochGauge = EpochGauge::new();

/// Width of the per-node / per-shard metric banks.
pub const BANK: usize = 16;

/// Per-node view: operations served by node `i % BANK`.
pub static NODE_SERVED: [Counter; BANK] = [const { Counter::new() }; BANK];

/// Per-shard view: operations applied to shard `s % BANK`.
pub static SHARD_OPS: [Counter; BANK] = [const { Counter::new() }; BANK];

const NODE_SERVED_NAMES: [&str; BANK] = [
    "cluster.node00.served",
    "cluster.node01.served",
    "cluster.node02.served",
    "cluster.node03.served",
    "cluster.node04.served",
    "cluster.node05.served",
    "cluster.node06.served",
    "cluster.node07.served",
    "cluster.node08.served",
    "cluster.node09.served",
    "cluster.node10.served",
    "cluster.node11.served",
    "cluster.node12.served",
    "cluster.node13.served",
    "cluster.node14.served",
    "cluster.node15.served",
];

const SHARD_OPS_NAMES: [&str; BANK] = [
    "cluster.shard00.ops",
    "cluster.shard01.ops",
    "cluster.shard02.ops",
    "cluster.shard03.ops",
    "cluster.shard04.ops",
    "cluster.shard05.ops",
    "cluster.shard06.ops",
    "cluster.shard07.ops",
    "cluster.shard08.ops",
    "cluster.shard09.ops",
    "cluster.shard10.ops",
    "cluster.shard11.ops",
    "cluster.shard12.ops",
    "cluster.shard13.ops",
    "cluster.shard14.ops",
    "cluster.shard15.ops",
];

/// Records an operation served by `node` into the per-node bank.
#[inline]
pub fn node_served(node: u16) {
    NODE_SERVED[node as usize % BANK].inc();
}

/// Records an apply on `shard` into the per-shard bank.
#[inline]
pub fn shard_op(shard: u32) {
    SHARD_OPS[shard as usize % BANK].inc();
}

/// A set-to-value gauge backing store (epochs, not event counts).
/// Const-constructible and feature-gated to a no-op like [`Counter`].
pub struct EpochGauge {
    #[cfg(feature = "telemetry")]
    value: AtomicU64,
}

impl EpochGauge {
    /// Creates the gauge at zero.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "telemetry")]
            value: AtomicU64::new(0),
        }
    }

    /// Publishes a new reading. (Named `set`, not `store`: the protocol
    /// lint's access extractor reads `.store(` sites as raw atomic ops
    /// and would demand an `Ordering` it cannot see through the wrapper.)
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "telemetry")]
        // lint: allow(atomics-ordering) — statistical instrument: the
        // snapshot reader tolerates lag, no payload is published under
        // this store.
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }

    /// Current reading (zero with telemetry off).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            // lint: allow(atomics-ordering) — statistical read of an
            // instrument value; see `store`.
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

impl Default for EpochGauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Registers every fleet instrument with `reg` under the `cluster.`
/// prefix.
pub fn export(reg: &mut Registry) {
    reg.counter("cluster.ops.completed", "ops", &OPS_COMPLETED);
    reg.counter("cluster.ops.retried", "ops", &OPS_RETRIED);
    reg.counter("cluster.dedup.hits", "ops", &DEDUP_HITS);
    reg.histogram("cluster.replication.lag", "ticks", &REPLICATION_LAG);
    reg.histogram("cluster.failover.time", "ticks", &FAILOVER_TIME);
    reg.counter("cluster.shard.syncs", "syncs", &SHARD_SYNCS);
    reg.gauge("cluster.view.epoch", "epoch", || VIEW_EPOCH.get());
    for i in 0..BANK {
        reg.counter(NODE_SERVED_NAMES[i], "ops", &NODE_SERVED[i]);
        reg.counter(SHARD_OPS_NAMES[i], "ops", &SHARD_OPS[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_registers_aggregate_and_banked_views() {
        let mut reg = Registry::new();
        export(&mut reg);
        let names = reg.metric_names();
        assert_eq!(names.len(), 7 + 2 * BANK);
        assert!(names.contains(&"cluster.ops.completed"));
        assert!(names.contains(&"cluster.view.epoch"));
        assert!(names.contains(&"cluster.node00.served"));
        assert!(names.contains(&"cluster.node15.served"));
        assert!(names.contains(&"cluster.shard07.ops"));
    }

    #[test]
    fn banks_fold_entities_modulo_width() {
        let before = NODE_SERVED[1].get();
        node_served(1);
        node_served(17); // Same bank slot as node 1.
        shard_op(3);
        if veros_telemetry::enabled() {
            assert_eq!(NODE_SERVED[1].get() - before, 2);
        } else {
            assert_eq!(NODE_SERVED[1].get(), 0);
        }
    }

    #[test]
    fn epoch_gauge_stores_latest_value() {
        static G: EpochGauge = EpochGauge::new();
        G.set(5);
        G.set(9);
        if veros_telemetry::enabled() {
            assert_eq!(G.get(), 9);
        } else {
            assert_eq!(G.get(), 0);
        }
    }
}
