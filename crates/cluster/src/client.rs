//! The fleet client: shard-aware routing with local failover.
//!
//! A client computes chains from the same [`ShardMap`] the nodes use:
//! writes go to the head, reads to the tail (the member every
//! acknowledged write has reached). The client does *not* consume
//! coordinator views — it suspects nodes dead on RPC timeout, recomputes
//! the chain without them, and re-issues; a `Retry` response (node
//! mid-sync or with a lagging view) re-issues after a short backoff
//! without suspecting anyone. Writes keep their per-client sequence
//! number across retries, so re-issues against a promoted head are
//! deduplicated server-side — exactly-once, measured end to end.
//!
//! Operations are submitted with a *scheduled arrival tick* and queue
//! open-loop: latency is measured from the arrival, not from when the
//! client got around to sending, so queueing delay under load is part
//! of the number (the YCSB convention for open-loop generators).

use std::collections::{BTreeSet, VecDeque};

use veros_blockstore::wire::block_checksum;
use veros_blockstore::{Request, Response};
use veros_net::demux::RdtDemux;
use veros_net::stack::NetStack;

use crate::metrics;
use crate::node::{node_peer, CLIENT_PORT};
use crate::shard::ShardMap;

/// Ticks one attempt may be outstanding before the target is suspected
/// dead and the operation re-routed.
pub const OP_TIMEOUT: u64 = 150;
/// Ticks to back off after a `Retry` response before re-issuing.
pub const RETRY_BACKOFF: u64 = 12;

/// One client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Store `data` under `key`.
    Put {
        /// Block key.
        key: String,
        /// Block contents.
        data: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// Block key.
        key: String,
    },
    /// Read `key`.
    Get {
        /// Block key.
        key: String,
    },
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> &str {
        match self {
            Op::Put { key, .. } | Op::Delete { key } | Op::Get { key } => key,
        }
    }

    /// Whether the operation mutates state.
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Get { .. })
    }
}

/// A finished operation, with open-loop timing.
#[derive(Clone, Debug)]
pub struct OpResult {
    /// The client host that ran it.
    pub host: u16,
    /// The operation (owns the key and any written data).
    pub op: Op,
    /// Scheduled arrival tick (latency baseline).
    pub issued_at: u64,
    /// Tick the final response arrived.
    pub completed_at: u64,
    /// Re-issues (timeouts and `Retry` responses).
    pub retries: u32,
    /// Terminal success (`PutOk`/`DeleteOk`/`GetOk`/`NotFound`).
    pub ok: bool,
    /// `GetOk` payload, checksum-verified.
    pub read: Option<Vec<u8>>,
    /// The terminal response, for assertions that need its exact kind
    /// (e.g. a retried delete must come back `DeleteOk` from the dedup
    /// cache, not `NotFound` from a double apply).
    pub resp: Response,
}

impl OpResult {
    /// Open-loop latency in ticks (arrival to completion).
    pub fn latency(&self) -> u64 {
        self.completed_at.saturating_sub(self.issued_at)
    }
}

struct Inflight {
    op: Op,
    arrival: u64,
    /// Per-client write sequence — constant across retries (dedup key).
    seq: u64,
    /// Current attempt's request id (fresh per attempt).
    id: u64,
    target: u16,
    deadline: u64,
    /// `Some(tick)`: waiting out a `Retry` backoff until that tick.
    backoff_until: Option<u64>,
    retries: u32,
}

/// One simulated client host.
pub struct FleetClient {
    host: u16,
    demux: RdtDemux,
    map: ShardMap,
    /// Locally suspected-dead nodes (timeout evidence, not gossip).
    dead: BTreeSet<u16>,
    queue: VecDeque<(u64, Op)>,
    inflight: Option<Inflight>,
    next_seq: u64,
    next_id: u64,
    /// Finished operations, in completion order (drained by harnesses).
    pub results: Vec<OpResult>,
}

impl FleetClient {
    /// Creates the client for network host `host`, binding its socket
    /// on `stack`.
    pub fn new(host: u16, map: ShardMap, stack: &mut NetStack) -> Self {
        let sock = stack.bind(CLIENT_PORT).expect("client port");
        Self {
            host,
            demux: RdtDemux::new(sock),
            map,
            dead: BTreeSet::new(),
            queue: VecDeque::new(),
            inflight: None,
            next_seq: 1,
            // Ids embed the host so they are unique fleet-wide — the
            // nodes' response/request disambiguation relies on it.
            next_id: (host as u64) << 32,
            results: Vec::new(),
        }
    }

    /// Queues `op` to be issued at tick `arrival` (open-loop).
    pub fn submit(&mut self, arrival: u64, op: Op) {
        self.queue.push_back((arrival, op));
    }

    /// True when nothing is queued or outstanding.
    pub fn idle(&self) -> bool {
        self.inflight.is_none() && self.queue.is_empty()
    }

    /// Queued (not yet issued) operations.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// The live set as this client believes it (all minus suspected).
    fn believed_live(&mut self) -> BTreeSet<u16> {
        let live: BTreeSet<u16> = (0..self.map.nodes())
            .filter(|n| !self.dead.contains(n))
            .collect();
        if live.is_empty() {
            // Everyone suspected: suspicions must be wrong — restart.
            self.dead.clear();
            return (0..self.map.nodes()).collect();
        }
        live
    }

    /// Sends the current in-flight op to the chain computed under the
    /// client's believed live set. Writes target the head, reads the
    /// tail.
    fn issue(&mut self, stack: &mut NetStack, now: u64) {
        let live = self.believed_live();
        let Some(infl) = &mut self.inflight else {
            return;
        };
        let chain = self.map.chain_for_key(infl.op.key(), &live);
        let Some(target) = (if infl.op.is_write() {
            chain.first()
        } else {
            chain.last()
        }) else {
            return; // No live nodes at all; the timeout path retries.
        };
        infl.target = *target;
        infl.id = self.next_id;
        self.next_id += 1;
        infl.deadline = now + OP_TIMEOUT;
        infl.backoff_until = None;
        let req = match &infl.op {
            Op::Put { key, data } => Request::ShardPut {
                id: infl.id,
                key: key.clone(),
                data: data.clone(),
                checksum: block_checksum(data),
                client: self.host as u64,
                seq: infl.seq,
            },
            Op::Delete { key } => Request::ShardDelete {
                id: infl.id,
                key: key.clone(),
                client: self.host as u64,
                seq: infl.seq,
            },
            Op::Get { key } => Request::Get { id: infl.id, key: key.clone() },
        };
        let _ = self.demux.send(stack, now, node_peer(infl.target), req.encode());
    }

    /// One poll round: start due work, absorb responses, drive retries.
    pub fn poll(&mut self, stack: &mut NetStack, now: u64) {
        if self.inflight.is_none() {
            if let Some(&(arrival, _)) = self.queue.front() {
                if arrival <= now {
                    let (arrival, op) = self.queue.pop_front().expect("checked front");
                    let seq = if op.is_write() {
                        let s = self.next_seq;
                        self.next_seq += 1;
                        s
                    } else {
                        0
                    };
                    self.inflight = Some(Inflight {
                        op,
                        arrival,
                        seq,
                        id: 0,
                        target: 0,
                        deadline: 0,
                        backoff_until: None,
                        retries: 0,
                    });
                    self.issue(stack, now);
                }
            }
        }
        let _ = self.demux.poll(stack, now);
        while let Some((_, msg)) = self.demux.recv() {
            let Some(resp) = Response::decode(&msg) else {
                continue;
            };
            let Some(infl) = &mut self.inflight else {
                continue; // Late duplicate of a finished op.
            };
            if resp.id() != infl.id {
                continue; // Response to an abandoned attempt.
            }
            match resp {
                Response::Retry { .. } => {
                    infl.retries += 1;
                    metrics::OPS_RETRIED.inc();
                    infl.backoff_until = Some(now + RETRY_BACKOFF);
                    infl.deadline = now + OP_TIMEOUT + RETRY_BACKOFF;
                }
                resp => {
                    let (ok, read) = match &resp {
                        Response::PutOk { .. }
                        | Response::DeleteOk { .. }
                        | Response::NotFound { .. } => (true, None),
                        Response::GetOk { data, .. } => (true, Some(data.clone())),
                        _ => (false, None),
                    };
                    let infl = self.inflight.take().expect("checked above");
                    metrics::OPS_COMPLETED.inc();
                    self.results.push(OpResult {
                        host: self.host,
                        op: infl.op,
                        issued_at: infl.arrival,
                        completed_at: now,
                        retries: infl.retries,
                        ok,
                        read,
                        resp,
                    });
                }
            }
        }
        let reissue = match &self.inflight {
            Some(infl) => match infl.backoff_until {
                Some(t) => now >= t,
                None if now >= infl.deadline => {
                    // No answer inside the budget: suspect the target.
                    self.dead.insert(infl.target);
                    true
                }
                None => false,
            },
            None => false,
        };
        if reissue {
            if let Some(infl) = &mut self.inflight {
                if infl.backoff_until.is_none() {
                    infl.retries += 1;
                    metrics::OPS_RETRIED.inc();
                }
            }
            self.issue(stack, now);
        }
        let _ = self.demux.on_tick(stack, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_expose_key_and_kind() {
        let p = Op::Put { key: "k".into(), data: vec![1] };
        assert_eq!(p.key(), "k");
        assert!(p.is_write());
        let g = Op::Get { key: "g".into() };
        assert!(!g.is_write());
        assert!(Op::Delete { key: "d".into() }.is_write());
    }

    #[test]
    fn latency_measures_from_scheduled_arrival() {
        let r = OpResult {
            host: 9,
            op: Op::Get { key: "k".into() },
            issued_at: 100,
            completed_at: 190,
            retries: 0,
            ok: true,
            read: None,
            resp: Response::NotFound { id: 0 },
        };
        assert_eq!(r.latency(), 90);
    }
}
