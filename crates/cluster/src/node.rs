//! The fleet storage node: shard serving, chain replication, failover.
//!
//! One node serves every shard it is a chain member of, over a single
//! [`RdtDemux`] socket shared by clients and peer nodes. The write path
//! is chain replication: the head applies locally, forwards a
//! `ChainPut`/`ChainDelete` carrying the remaining chain to its
//! successor, and releases the client response only when the successor
//! acks — so **an acknowledged write has been applied by every chain
//! member**, and the loss of any single node cannot lose it. Reads are
//! served by any ready chain member (clients route them to the tail).
//!
//! Exactly-once across failover: every fleet write carries a
//! `(client, seq)` identity; each node keeps the latest applied
//! sequence and response per client, so a retry against a promoted head
//! is answered from the dedup cache instead of double-applied — and if
//! the original write is still in flight down the chain, the retry
//! *re-arms* the held response rather than acking early.
//!
//! Failover: nodes adopt epoch-numbered [`View`]s from the coordinator.
//! On a view change a node re-forwards writes whose downstream died and
//! pulls whole shards (`SyncShard`) for chains it newly joined, serving
//! `Retry` for those shards until the sync lands. Writes applied while
//! a sync is in flight shadow the sync's stale entries.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use veros_blockstore::store::StoreError;
use veros_blockstore::{BlockStore, Request, Response};
use veros_net::demux::{Peer, RdtDemux};
use veros_net::ip::IpAddr;
use veros_net::socket::SocketId;
use veros_net::stack::NetStack;

use crate::metrics;
use crate::shard::ShardMap;
use crate::view::{heartbeat, View, HEARTBEAT_EVERY};

/// Port every fleet node serves the data plane on (clients and peers).
pub const NODE_SERVE: u16 = 4000;
/// Port the coordinator listens on (heartbeats in, views out).
pub const COORD_PORT: u16 = 4001;
/// Port each node's control socket uses (heartbeats out, views in).
pub const NODE_CTRL: u16 = 4002;
/// Port fleet clients bind their demux socket on.
pub const CLIENT_PORT: u16 = 4003;

/// The data-plane address of fleet node `n`.
pub fn node_peer(n: u16) -> Peer {
    (IpAddr::host(n), NODE_SERVE)
}

/// A write held back until the downstream chain ack arrives.
struct Pending {
    /// Chain member the forward went to (ack source).
    downstream: u16,
    /// Request id the forward carries (echoed by the ack).
    id: u64,
    /// Write identity, for retry re-arming.
    client: u64,
    seq: u64,
    /// Where the release goes (client for the head, upstream node
    /// otherwise).
    upstream: Peer,
    /// The response to release.
    resp: Response,
    /// The forwarded request, kept for re-forwarding around deaths.
    fwd: Request,
    /// Tick the forward was first sent (replication-lag metric).
    sent_at: u64,
}

/// One storage node of the fleet.
pub struct FleetNode {
    id: u16,
    /// The local storage engine (public for invariant checks).
    pub store: BlockStore,
    map: ShardMap,
    demux: RdtDemux,
    ctrl: SocketId,
    coord: Peer,
    view: View,
    /// Shards this node is a chain member of, and whether their data is
    /// complete (false while a `SyncShard` pull is in flight).
    ready: BTreeMap<u32, bool>,
    /// Exactly-once cache: client → (latest applied seq, its response).
    dedup: HashMap<u64, (u64, Response)>,
    pending: Vec<Pending>,
    /// In-flight shard pulls: sync request id → shard.
    syncing: BTreeMap<u64, u32>,
    /// Keys written while a sync was in flight — newer than whatever
    /// the sync returns, so its stale entries must not resurrect them.
    touched: BTreeSet<(u32, String)>,
    next_sync: u64,
    next_heartbeat: u64,
}

/// Clones `resp` with its echoed request id replaced (dedup replays
/// answer a *new* request id with a cached response).
fn rewrite_id(resp: &Response, id: u64) -> Response {
    let mut out = resp.clone();
    match &mut out {
        Response::PutOk { id: i }
        | Response::GetOk { id: i, .. }
        | Response::NotFound { id: i }
        | Response::DeleteOk { id: i }
        | Response::Keys { id: i, .. }
        | Response::Error { id: i, .. }
        | Response::Retry { id: i }
        | Response::SyncBlocks { id: i, .. } => *i = id,
    }
    out
}

impl FleetNode {
    /// Creates node `id` over `store`, binding its data and control
    /// sockets on `stack`. The node starts ready for every shard it
    /// owns under the full initial view.
    pub fn new(id: u16, store: BlockStore, map: ShardMap, stack: &mut NetStack, coord: Peer) -> Self {
        let data = stack.bind(NODE_SERVE).expect("node data port");
        let ctrl = stack.bind(NODE_CTRL).expect("node ctrl port");
        let view = View::initial(map.nodes());
        let mut ready = BTreeMap::new();
        for shard in 0..map.shards() {
            if map.chain(shard, &view.live).contains(&id) {
                ready.insert(shard, true);
            }
        }
        Self {
            id,
            store,
            map,
            demux: RdtDemux::new(data),
            ctrl,
            coord,
            view,
            ready,
            dedup: HashMap::new(),
            pending: Vec::new(),
            syncing: BTreeMap::new(),
            touched: BTreeSet::new(),
            // Sync ids live in their own (high-bit) id space so they can
            // never collide with client request ids.
            next_sync: (1 << 63) | ((id as u64) << 32),
            next_heartbeat: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The membership view the node currently acts under.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether `shard`'s local data is complete (always false for
    /// shards this node is no chain member of).
    pub fn is_ready(&self, shard: u32) -> bool {
        self.ready.get(&shard).copied().unwrap_or(false)
    }

    /// Writes held back waiting for downstream acks.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// One poll round: control plane (views in, heartbeat out), then
    /// data plane (serve requests, route acks, drive timers).
    pub fn poll(&mut self, stack: &mut NetStack, now: u64) {
        while let Ok(Some((_, _, data))) = stack.recv_from(self.ctrl) {
            if let Some(v) = View::decode(&data) {
                self.adopt(stack, now, v);
            }
        }
        if now >= self.next_heartbeat {
            let _ = stack.send_to(self.ctrl, self.coord.0, self.coord.1, heartbeat(self.id));
            self.next_heartbeat = now + HEARTBEAT_EVERY;
        }
        let _ = self.demux.poll(stack, now);
        let mut msgs = Vec::new();
        while let Some(m) = self.demux.recv() {
            msgs.push(m);
        }
        for (peer, msg) in msgs {
            self.dispatch(stack, now, peer, &msg);
        }
        let _ = self.demux.on_tick(stack, now);
    }

    /// Routes one delivered message. Peer-node traffic mixes requests
    /// and responses on one session; ids are globally unique (clients
    /// embed their host, sync ids use the high bit), so a message that
    /// matches in-flight response state *is* that response.
    fn dispatch(&mut self, stack: &mut NetStack, now: u64, peer: Peer, msg: &[u8]) {
        if let Some(resp) = Response::decode(msg) {
            if self.on_sync_blocks(&resp) {
                return;
            }
            if self.on_chain_ack(stack, now, peer, &resp) {
                return;
            }
        }
        if let Some(req) = Request::decode(msg) {
            self.handle_request(stack, now, peer, req);
        }
    }

    /// Applies an arrived `SyncBlocks`; true if it matched a pull.
    fn on_sync_blocks(&mut self, resp: &Response) -> bool {
        let Response::SyncBlocks { id, blocks } = resp else {
            return false;
        };
        let Some(shard) = self.syncing.remove(id) else {
            return false;
        };
        for (key, data, checksum) in blocks {
            // A write applied mid-sync is newer than the sync's copy.
            if self.touched.contains(&(shard, key.clone())) {
                continue;
            }
            let _ = self.store.put(key, data, *checksum);
        }
        self.touched.retain(|(s, _)| *s != shard);
        self.ready.insert(shard, true);
        metrics::SHARD_SYNCS.inc();
        true
    }

    /// Releases a held write if `resp` is its downstream ack; true if
    /// it was.
    fn on_chain_ack(&mut self, stack: &mut NetStack, now: u64, peer: Peer, resp: &Response) -> bool {
        let Some(pos) = self
            .pending
            .iter()
            .position(|p| node_peer(p.downstream) == peer && p.id == resp.id())
        else {
            return false;
        };
        let p = self.pending.remove(pos);
        // A downstream failure overrides the held success.
        let out = match resp {
            Response::Error { .. } => rewrite_id(resp, p.resp.id()),
            _ => p.resp,
        };
        if p.upstream.1 != NODE_SERVE {
            metrics::REPLICATION_LAG.record(now.saturating_sub(p.sent_at));
        }
        let _ = self.demux.send(stack, now, p.upstream, out.encode());
        true
    }

    fn handle_request(&mut self, stack: &mut NetStack, now: u64, peer: Peer, req: Request) {
        metrics::node_served(self.id);
        match req {
            Request::ShardPut { id, key, data, checksum, client, seq } => {
                self.head_write(stack, now, peer, id, key, Some((data, checksum)), client, seq);
            }
            Request::ShardDelete { id, key, client, seq } => {
                self.head_write(stack, now, peer, id, key, None, client, seq);
            }
            Request::ChainPut { id, key, data, checksum, client, seq, rest, .. } => {
                self.chain_write(stack, now, peer, id, key, Some((data, checksum)), client, seq, rest);
            }
            Request::ChainDelete { id, key, client, seq, rest, .. } => {
                self.chain_write(stack, now, peer, id, key, None, client, seq, rest);
            }
            Request::Get { id, key } => {
                let shard = self.map.shard_of(&key);
                let chain = self.map.chain(shard, &self.view.live);
                let resp = if !chain.contains(&self.id) || !self.is_ready(shard) {
                    Response::Retry { id }
                } else {
                    match self.store.get(&key) {
                        Ok((data, checksum)) => Response::GetOk { id, data, checksum },
                        Err(StoreError::NotFound) => Response::NotFound { id },
                        Err(e) => Response::Error { id, reason: e.to_string() },
                    }
                };
                let _ = self.demux.send(stack, now, peer, resp.encode());
            }
            Request::SyncShard { id, shard } => {
                let blocks: Vec<(String, Vec<u8>, u64)> = self
                    .store
                    .list()
                    .into_iter()
                    .filter(|k| self.map.shard_of(k) == shard)
                    .filter_map(|k| self.store.get(&k).ok().map(|(d, c)| (k, d, c)))
                    .collect();
                let resp = Response::SyncBlocks { id, blocks };
                let _ = self.demux.send(stack, now, peer, resp.encode());
            }
            // Standalone-protocol requests don't shard; reject loudly
            // (mirrors StorageNode rejecting the fleet requests).
            Request::Put { id, .. } | Request::Delete { id, .. } | Request::List { id } => {
                let resp = Response::Error {
                    id,
                    reason: "standalone request on a fleet node".into(),
                };
                let _ = self.demux.send(stack, now, peer, resp.encode());
            }
        }
    }

    /// A client write arriving at (what the client believes is) the
    /// shard's chain head.
    #[allow(clippy::too_many_arguments)]
    fn head_write(
        &mut self,
        stack: &mut NetStack,
        now: u64,
        peer: Peer,
        id: u64,
        key: String,
        payload: Option<(Vec<u8>, u64)>,
        client: u64,
        seq: u64,
    ) {
        let shard = self.map.shard_of(&key);
        let chain = self.map.chain(shard, &self.view.live);
        if chain.first() != Some(&self.id) || !self.is_ready(shard) {
            // Not the head under *this node's* view (stale client
            // routing, or our own view lags), or mid-sync: ask the
            // client to try again rather than serving a split brain.
            let resp = Response::Retry { id };
            let _ = self.demux.send(stack, now, peer, resp.encode());
            return;
        }
        // Exactly-once: a retry of an applied write must not re-apply.
        if let Some(&(done_seq, ref done_resp)) = self.dedup.get(&client) {
            if seq <= done_seq {
                metrics::DEDUP_HITS.inc();
                let resp = if seq == done_seq {
                    rewrite_id(done_resp, id)
                } else {
                    // Acknowledged history from before the cached op.
                    match payload {
                        Some(_) => Response::PutOk { id },
                        None => Response::DeleteOk { id },
                    }
                };
                // If the original is still working its way down the
                // chain, re-arm the held release instead of acking a
                // write the tail may not have yet.
                if let Some(p) = self
                    .pending
                    .iter_mut()
                    .find(|p| p.client == client && p.seq == seq)
                {
                    p.upstream = peer;
                    p.resp = resp;
                } else {
                    let _ = self.demux.send(stack, now, peer, resp.encode());
                }
                return;
            }
        }
        let resp = match self.apply(&key, &payload, id) {
            Ok(r) => r,
            Err(r) => {
                // Rejected writes (bad checksum) don't replicate and
                // don't enter the dedup history.
                let _ = self.demux.send(stack, now, peer, r.encode());
                return;
            }
        };
        metrics::shard_op(shard);
        self.dedup.insert(client, (seq, resp.clone()));
        self.touch(shard, &key);
        let rest = &chain[1..];
        if rest.is_empty() {
            let _ = self.demux.send(stack, now, peer, resp.encode());
            return;
        }
        let fwd = match &payload {
            Some((data, checksum)) => Request::ChainPut {
                id,
                key,
                data: data.clone(),
                checksum: *checksum,
                client,
                seq,
                epoch: self.view.epoch,
                rest: rest[1..].to_vec(),
            },
            None => Request::ChainDelete {
                id,
                key,
                client,
                seq,
                epoch: self.view.epoch,
                rest: rest[1..].to_vec(),
            },
        };
        let _ = self.demux.send(stack, now, node_peer(rest[0]), fwd.encode());
        self.pending.push(Pending {
            downstream: rest[0],
            id,
            client,
            seq,
            upstream: peer,
            resp,
            fwd,
            sent_at: now,
        });
    }

    /// A write forwarded down the chain by the upstream member.
    #[allow(clippy::too_many_arguments)]
    fn chain_write(
        &mut self,
        stack: &mut NetStack,
        now: u64,
        peer: Peer,
        id: u64,
        key: String,
        payload: Option<(Vec<u8>, u64)>,
        client: u64,
        seq: u64,
        rest: Vec<u16>,
    ) {
        let shard = self.map.shard_of(&key);
        let duplicate = matches!(self.dedup.get(&client), Some(&(done, _)) if seq <= done);
        let resp = if duplicate {
            // Already applied (a re-forward after a view change, or a
            // chain suffix shared with the old chain): don't re-apply,
            // but keep forwarding and acking so the chain completes.
            metrics::DEDUP_HITS.inc();
            match payload {
                Some(_) => Response::PutOk { id },
                None => Response::DeleteOk { id },
            }
        } else {
            match self.apply(&key, &payload, id) {
                Ok(r) | Err(r) => r,
            }
        };
        if !duplicate && !matches!(resp, Response::Error { .. }) {
            metrics::shard_op(shard);
            self.dedup.insert(client, (seq, resp.clone()));
            self.touch(shard, &key);
        }
        if rest.is_empty() || matches!(resp, Response::Error { .. }) {
            // Tail (or a failed apply): ack upstream now.
            let _ = self.demux.send(stack, now, peer, resp.encode());
            return;
        }
        let fwd = match &payload {
            Some((data, checksum)) => Request::ChainPut {
                id,
                key,
                data: data.clone(),
                checksum: *checksum,
                client,
                seq,
                epoch: self.view.epoch,
                rest: rest[1..].to_vec(),
            },
            None => Request::ChainDelete {
                id,
                key,
                client,
                seq,
                epoch: self.view.epoch,
                rest: rest[1..].to_vec(),
            },
        };
        let _ = self.demux.send(stack, now, node_peer(rest[0]), fwd.encode());
        self.pending.push(Pending {
            downstream: rest[0],
            id,
            client,
            seq,
            upstream: peer,
            resp,
            fwd,
            sent_at: now,
        });
    }

    /// Applies one write to the local store. `Ok` responses enter the
    /// dedup history and replicate; `Err` responses are terminal.
    fn apply(
        &mut self,
        key: &str,
        payload: &Option<(Vec<u8>, u64)>,
        id: u64,
    ) -> Result<Response, Response> {
        match payload {
            Some((data, checksum)) => match self.store.put(key, data, *checksum) {
                Ok(()) => Ok(Response::PutOk { id }),
                Err(e) => Err(Response::Error { id, reason: e.to_string() }),
            },
            None => match self.store.delete(key) {
                // Deleting an absent key is consistent across replicas:
                // report NotFound but keep the chain going.
                Ok(()) => Ok(Response::DeleteOk { id }),
                Err(StoreError::NotFound) => Ok(Response::NotFound { id }),
                Err(e) => Err(Response::Error { id, reason: e.to_string() }),
            },
        }
    }

    /// Records `key` as written while any sync of its shard is in
    /// flight on this node.
    fn touch(&mut self, shard: u32, key: &str) {
        if self.syncing.values().any(|&s| s == shard) {
            self.touched.insert((shard, key.to_string()));
        }
    }

    /// Adopts a strictly newer membership view: re-forward held writes
    /// around dead downstreams, start syncs for newly joined chains.
    fn adopt(&mut self, stack: &mut NetStack, now: u64, v: View) {
        if v.epoch <= self.view.epoch {
            return;
        }
        let old = std::mem::replace(&mut self.view, v);
        // Held writes whose downstream died: recompute the chain and
        // either re-forward past the victim or, if this node became the
        // tail, release the ack — the write is fully replicated among
        // the survivors.
        let mut i = 0;
        while i < self.pending.len() {
            if self.view.live.contains(&self.pending[i].downstream) {
                i += 1;
                continue;
            }
            let mut p = self.pending.remove(i);
            let key = match &p.fwd {
                Request::ChainPut { key, .. } | Request::ChainDelete { key, .. } => key.clone(),
                _ => continue,
            };
            let chain = self.map.chain_for_key(&key, &self.view.live);
            let after_self: Vec<u16> = match chain.iter().position(|&n| n == self.id) {
                Some(k) => chain[k + 1..].to_vec(),
                None => Vec::new(),
            };
            if after_self.is_empty() {
                if p.upstream.1 != NODE_SERVE {
                    metrics::REPLICATION_LAG.record(now.saturating_sub(p.sent_at));
                }
                let _ = self.demux.send(stack, now, p.upstream, p.resp.encode());
                continue;
            }
            match &mut p.fwd {
                Request::ChainPut { rest, epoch, .. } | Request::ChainDelete { rest, epoch, .. } => {
                    *rest = after_self[1..].to_vec();
                    *epoch = self.view.epoch;
                }
                _ => {}
            }
            p.downstream = after_self[0];
            let _ = self.demux.send(stack, now, node_peer(p.downstream), p.fwd.encode());
            self.pending.insert(i, p);
            i += 1;
        }
        // Chains this node just joined: serve Retry until a surviving
        // member's shard snapshot lands.
        for shard in 0..self.map.shards() {
            let chain = self.map.chain(shard, &self.view.live);
            if !chain.contains(&self.id) {
                self.ready.remove(&shard);
                continue;
            }
            if self.map.chain(shard, &old.live).contains(&self.id) {
                continue; // Already a member; data already complete.
            }
            self.ready.insert(shard, false);
            match chain.iter().find(|&&n| n != self.id) {
                Some(&src) => {
                    let id = self.next_sync;
                    self.next_sync += 1;
                    self.syncing.insert(id, shard);
                    let req = Request::SyncShard { id, shard };
                    let _ = self.demux.send(stack, now, node_peer(src), req.encode());
                }
                // Sole survivor: nothing to pull from.
                None => {
                    self.ready.insert(shard, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_id_touches_only_the_id() {
        let r = Response::GetOk { id: 7, data: vec![1, 2], checksum: 9 };
        match rewrite_id(&r, 42) {
            Response::GetOk { id, data, checksum } => {
                assert_eq!(id, 42);
                assert_eq!(data, vec![1, 2]);
                assert_eq!(checksum, 9);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rewrite_id(&Response::Retry { id: 1 }, 5), Response::Retry { id: 5 });
    }

    #[test]
    fn node_peer_addresses_the_data_port() {
        assert_eq!(node_peer(3), (IpAddr::host(3), NODE_SERVE));
    }
}
