//! A sharded, replicated block-store fleet on the verified stack.
//!
//! The paper's argument is that a verified OS foundation pays off in
//! the *applications* built on it. `veros-blockstore` made that case at
//! the scale of one primary/backup pair; this crate generalizes it to
//! the shape such a storage node actually ships in — an N-node fleet
//! behind consistent hashing — while keeping every layer on the same
//! deterministic, fault-injected simulated stack:
//!
//! * [`shard`] — the shard map: consistent hashing with virtual nodes,
//!   fixed shard count, and `M`-way replication chains; pure functions,
//!   so clients and nodes route identically with no metadata service.
//! * [`view`] — deterministic membership: heartbeats to a coordinator,
//!   epoch-numbered views pushed to nodes, failover promotion driven
//!   entirely by the simulation clock.
//! * [`node`] — the fleet storage node: chain replication (ack ⇒ every
//!   replica applied), exactly-once write dedup across failover, and
//!   shard pulls to regain chain width after a death.
//! * [`client`] — shard-aware clients: writes to chain heads, reads to
//!   chain tails, local death suspicion, open-loop op queues.
//! * [`fleet`] — the harness wiring all of it over the fault-injecting
//!   [`veros_net::sim::Network`]; [`fleet::Fleet::pair`] reproduces the
//!   old two-node `Cluster` as a degenerate configuration.
//! * [`workload`] — an open-loop YCSB-style generator (zipfian keys,
//!   bursts, read/write mix, ≥1000 simulated client hosts) and the
//!   stats scored into `BENCH_blockstore.json`.
//!
//! The end-to-end contract mirrored in `INVARIANTS.md`: **an
//! acknowledged write survives the loss of any single chain member**,
//! and retried writes apply exactly once even when the retry lands on a
//! promoted head. `veros-core`'s `invariant::cluster_durability` family
//! sweeps those claims under multi-node fault schedules.
//!
//! # Telemetry
//!
//! With the `telemetry` feature (default) the fleet maintains the
//! instruments in [`metrics`] — op/retry counters, replication-lag and
//! failover-time histograms, a view-epoch gauge, and banked per-node /
//! per-shard counters — registered under the `cluster.` prefix; see
//! `OBSERVABILITY.md`.

pub mod client;
pub mod fleet;
pub mod metrics;
pub mod node;
pub mod shard;
pub mod view;
pub mod workload;

pub use client::{FleetClient, Op, OpResult};
pub use fleet::{Fleet, FleetConfig};
pub use node::FleetNode;
pub use shard::ShardMap;
pub use view::{Coordinator, View};
pub use workload::{schedule, stats, WorkloadConfig, WorkloadStats};
