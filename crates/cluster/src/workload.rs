//! Open-loop YCSB-style workload generation and scoring.
//!
//! The generator precomputes a deterministic *arrival schedule*: a list
//! of `(tick, client, op)` entries drawn from a zipfian key popularity
//! distribution, a read/write/delete mix, and a mean inter-arrival gap
//! with periodic **burst windows** where arrivals come several times
//! faster. The schedule is open-loop: arrivals do not wait for
//! completions, so when the fleet falls behind, operations queue at
//! their client hosts and the queueing delay is charged to latency
//! ([`crate::client::OpResult::latency`] measures from the scheduled
//! arrival). That is the YCSB/coordinated-omission-aware convention —
//! closed-loop latency hides exactly the overload behaviour a capacity
//! benchmark exists to measure.

use veros_spec::rng::SpecRng;

use crate::client::{Op, OpResult};

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Simulated client hosts the schedule spreads over.
    pub client_hosts: u16,
    /// Distinct keys.
    pub keyspace: u32,
    /// Zipfian skew (0 = uniform; YCSB uses 0.99).
    pub zipf_theta: f64,
    /// Reads per 1000 operations.
    pub read_milli: u32,
    /// Deletes per 1000 operations (the rest are puts).
    pub delete_milli: u32,
    /// Value size for puts.
    pub value_bytes: usize,
    /// Total operations.
    pub ops: usize,
    /// Mean ticks between arrivals outside bursts (fleet-wide).
    pub mean_gap: u64,
    /// A burst window opens every this many ticks…
    pub burst_every: u64,
    /// …lasts this many ticks…
    pub burst_len: u64,
    /// …and multiplies the arrival rate by this factor.
    pub burst_factor: u64,
    /// Schedule seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            client_hosts: 1000,
            keyspace: 512,
            zipf_theta: 0.99,
            read_milli: 800,
            delete_milli: 20,
            value_bytes: 128,
            ops: 4000,
            mean_gap: 2,
            burst_every: 1000,
            burst_len: 100,
            burst_factor: 4,
            seed: 42,
        }
    }
}

/// Zipfian sampler over ranks `0..n` (rank 0 most popular), via an
/// inverse-CDF table and binary search.
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds the sampler for `n` ranks with skew `theta`.
    pub fn new(n: u32, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for rank in 1..=n.max(1) {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut SpecRng) -> u32 {
        // 53 random bits → uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// One scheduled arrival.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Tick the operation enters the system.
    pub tick: u64,
    /// Client host index (0-based fleet client index).
    pub client: usize,
    /// The operation.
    pub op: Op,
}

/// Generates the full deterministic arrival schedule for `cfg`.
pub fn schedule(cfg: &WorkloadConfig) -> Vec<Arrival> {
    let mut rng = SpecRng::seeded(cfg.seed);
    let zipf = Zipfian::new(cfg.keyspace, cfg.zipf_theta);
    let mut out = Vec::with_capacity(cfg.ops);
    let mut tick = 0u64;
    for _ in 0..cfg.ops {
        let in_burst = cfg.burst_every > 0 && tick % cfg.burst_every < cfg.burst_len;
        let gap = if in_burst {
            (cfg.mean_gap / cfg.burst_factor.max(1)).max(1)
        } else {
            cfg.mean_gap.max(1)
        };
        // Jittered gap with the configured mean: uniform over
        // [0, 2·gap], except gap 1 which stays dense.
        tick += if gap > 1 { rng.below(2 * gap + 1) } else { rng.below(2) };
        let rank = zipf.sample(&mut rng);
        let key = format!("ycsb-{rank}");
        let roll = rng.below(1000) as u32;
        let op = if roll < cfg.read_milli {
            Op::Get { key }
        } else if roll < cfg.read_milli + cfg.delete_milli {
            Op::Delete { key }
        } else {
            let fill = (rank % 251) as u8;
            Op::Put { key, data: vec![fill; cfg.value_bytes.max(1)] }
        };
        let client = rng.below(cfg.client_hosts.max(1) as u64) as usize;
        out.push(Arrival { tick, client, op });
    }
    out
}

/// Score of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadStats {
    /// Operations that completed.
    pub completed: u64,
    /// Completed operations whose terminal response was a failure.
    pub failed: u64,
    /// Total re-issues across all operations.
    pub retries: u64,
    /// Latency percentiles (ticks, from scheduled arrival).
    pub p50: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// Worst latency.
    pub max: u64,
    /// Completed operations per 1000 ticks.
    pub throughput_milli: u64,
    /// Run length in ticks.
    pub ticks: u64,
}

/// Computes the score for `results` over a run of `ticks`.
pub fn stats(results: &[OpResult], ticks: u64) -> WorkloadStats {
    let mut lat: Vec<u64> = results.iter().map(OpResult::latency).collect();
    lat.sort_unstable();
    let pct = |p: usize| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[(lat.len() - 1) * p / 100]
    };
    let completed = results.len() as u64;
    WorkloadStats {
        completed,
        failed: results.iter().filter(|r| !r.ok).count() as u64,
        retries: results.iter().map(|r| r.retries as u64).sum(),
        p50: pct(50),
        p99: pct(99),
        max: lat.last().copied().unwrap_or(0),
        throughput_milli: (completed * 1000).checked_div(ticks).unwrap_or(0),
        ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let cfg = WorkloadConfig { ops: 200, ..WorkloadConfig::default() };
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tick, y.tick);
            assert_eq!(x.client, y.client);
            assert_eq!(x.op, y.op);
        }
        let c = schedule(&WorkloadConfig { seed: 43, ops: 200, ..WorkloadConfig::default() });
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.op != y.op || x.tick != y.tick),
            "seeds must decorrelate"
        );
    }

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let zipf = Zipfian::new(100, 0.99);
        let mut rng = SpecRng::seeded(7);
        let mut head = 0u32;
        const DRAWS: u32 = 2000;
        for _ in 0..DRAWS {
            let r = zipf.sample(&mut rng);
            assert!(r < 100);
            if r < 10 {
                head += 1;
            }
        }
        // Top 10% of ranks should draw far more than 10% of samples
        // (≈63% at theta 0.99); uniform would give ~200.
        assert!(head > DRAWS / 3, "only {head}/{DRAWS} drew from the head");
    }

    #[test]
    fn mix_and_spread_follow_the_config() {
        let cfg = WorkloadConfig {
            ops: 2000,
            read_milli: 500,
            delete_milli: 100,
            client_hosts: 50,
            ..WorkloadConfig::default()
        };
        let s = schedule(&cfg);
        let reads = s.iter().filter(|a| matches!(a.op, Op::Get { .. })).count();
        let dels = s.iter().filter(|a| matches!(a.op, Op::Delete { .. })).count();
        assert!((800..1200).contains(&reads), "reads {reads}");
        assert!((100..300).contains(&dels), "deletes {dels}");
        assert!(s.iter().all(|a| a.client < 50));
        let distinct: std::collections::BTreeSet<usize> = s.iter().map(|a| a.client).collect();
        assert!(distinct.len() > 30, "only {} client hosts used", distinct.len());
        // Arrivals are sorted by construction.
        assert!(s.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn bursts_compress_inter_arrival_gaps() {
        let cfg = WorkloadConfig {
            ops: 4000,
            mean_gap: 8,
            burst_every: 400,
            burst_len: 100,
            burst_factor: 4,
            ..WorkloadConfig::default()
        };
        let s = schedule(&cfg);
        let rate = |pred: &dyn Fn(u64) -> bool| {
            let n = s.iter().filter(|a| pred(a.tick)).count() as u64;
            let ticks: u64 = {
                let span = s.last().unwrap().tick;
                (0..span).filter(|t| pred(*t)).count() as u64
            };
            (n * 1000).checked_div(ticks).unwrap_or(0)
        };
        let burst_rate = rate(&|t| t % 400 < 100);
        let calm_rate = rate(&|t| t % 400 >= 100);
        assert!(
            burst_rate > calm_rate * 2,
            "burst {burst_rate}/1000t vs calm {calm_rate}/1000t"
        );
    }

    #[test]
    fn stats_score_percentiles_and_throughput() {
        use crate::client::OpResult;
        use veros_blockstore::Response;
        let results: Vec<OpResult> = (0..100u64)
            .map(|i| OpResult {
                host: 0,
                op: Op::Get { key: "k".into() },
                issued_at: 0,
                completed_at: i + 1,
                retries: u32::from(i % 10 == 0),
                ok: i != 5,
                read: None,
                resp: Response::NotFound { id: 0 },
            })
            .collect();
        let s = stats(&results, 1000);
        assert_eq!(s.completed, 100);
        assert_eq!(s.failed, 1);
        assert_eq!(s.retries, 10);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert_eq!(s.throughput_milli, 100);
        assert_eq!(stats(&[], 10).p99, 0);
    }
}
