//! The simulation harness: client + primary + backup over the hostile
//! network.
//!
//! Host 0 is the client, host 1 the primary, host 2 the backup. Two
//! transport channels exist from the start: client↔primary and
//! primary↔backup, plus a standby client↔backup channel used for
//! failover. All of it runs over the fault-injecting wire, so every
//! end-to-end test doubles as a transport/replication stress test.

use veros_net::rdt::RdtEndpoint;
use veros_net::sim::{FaultPlan, Network};

use crate::client::{BlockClient, ClientError};
use crate::node::StorageNode;
use crate::store::BlockStore;
use crate::wire::Response;

/// Ports used by the harness.
mod ports {
    pub const CLIENT_TO_PRIMARY: u16 = 5000;
    pub const PRIMARY_SERVE: u16 = 5001;
    pub const CLIENT_TO_BACKUP: u16 = 5002;
    pub const BACKUP_SERVE_CLIENTS: u16 = 5003;
    pub const PRIMARY_REPL: u16 = 6001;
    pub const BACKUP_SERVE_REPL: u16 = 6002;
}

/// Default per-RPC step budget before the harness reports a wedge.
pub const DEFAULT_RPC_BUDGET: u64 = 60_000;

/// The cluster.
pub struct Cluster {
    /// The wire.
    pub net: Network,
    /// Client talking to the primary.
    pub client: BlockClient,
    /// Standby client channel to the backup (failover).
    pub failover_client: BlockClient,
    /// The primary node.
    pub primary: StorageNode,
    /// The backup node.
    pub backup: StorageNode,
    /// Steps an RPC may pump before `ClientError::Timeout` — tests that
    /// assert wedge-freedom tighten it, tests that *expect* a wedge
    /// (e.g. killed primary, no failover) shrink it to stay fast.
    pub rpc_budget: u64,
    now: u64,
    primary_alive: bool,
}

impl Cluster {
    /// Builds a cluster over a network with `plan` faults and `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut net = Network::new(3, plan, seed);
        let ip0 = net.host(0).ip();
        let ip1 = net.host(1).ip();
        let ip2 = net.host(2).ip();

        // Client endpoints.
        let c2p = net.host(0).bind(ports::CLIENT_TO_PRIMARY).expect("port");
        let c2b = net.host(0).bind(ports::CLIENT_TO_BACKUP).expect("port");
        let client = BlockClient::new(RdtEndpoint::new(c2p, (ip1, ports::PRIMARY_SERVE)));
        let failover_client =
            BlockClient::new(RdtEndpoint::new(c2b, (ip2, ports::BACKUP_SERVE_CLIENTS)));

        // Primary: serves the client, replicates to the backup.
        let p_serve = net.host(1).bind(ports::PRIMARY_SERVE).expect("port");
        let p_repl = net.host(1).bind(ports::PRIMARY_REPL).expect("port");
        let mut primary = StorageNode::new(BlockStore::format(1 << 14));
        primary.add_server(RdtEndpoint::new(p_serve, (ip0, ports::CLIENT_TO_PRIMARY)));
        primary.set_backup(RdtEndpoint::new(p_repl, (ip2, ports::BACKUP_SERVE_REPL)));

        // Backup: serves replication from the primary and (standby)
        // clients.
        let b_repl = net.host(2).bind(ports::BACKUP_SERVE_REPL).expect("port");
        let b_clients = net.host(2).bind(ports::BACKUP_SERVE_CLIENTS).expect("port");
        let mut backup = StorageNode::new(BlockStore::format(1 << 14));
        backup.add_server(RdtEndpoint::new(b_repl, (ip1, ports::PRIMARY_REPL)));
        backup.add_server(RdtEndpoint::new(b_clients, (ip0, ports::CLIENT_TO_BACKUP)));

        Self {
            net,
            client,
            failover_client,
            primary,
            backup,
            rpc_budget: DEFAULT_RPC_BUDGET,
            now: 0,
            primary_alive: true,
        }
    }

    /// One simulation step: wire, nodes, time.
    pub fn pump(&mut self) {
        self.net.step();
        if self.primary_alive {
            self.primary.poll(self.net.host(1), self.now);
        }
        self.backup.poll(self.net.host(2), self.now);
        self.now += 1;
    }

    /// Stops the primary (it no longer processes anything).
    pub fn kill_primary(&mut self) {
        self.primary_alive = false;
    }

    /// Issues `f` on the chosen client and pumps until its response
    /// arrives or `rpc_budget` steps elapse — the single pump loop
    /// behind [`Cluster::rpc`] and [`Cluster::rpc_failover`]. A timeout
    /// comes back as [`ClientError::Timeout`] (the client's outstanding
    /// slot is released), so tests assert wedge-freedom instead of
    /// aborting the process.
    fn rpc_on(
        &mut self,
        failover: bool,
        f: impl FnOnce(&mut BlockClient, &mut veros_net::stack::NetStack, u64) -> u64,
    ) -> Result<Response, ClientError> {
        {
            let client = if failover { &mut self.failover_client } else { &mut self.client };
            let _ = f(client, self.net.host(0), self.now);
        }
        for _ in 0..self.rpc_budget {
            self.pump();
            let client = if failover { &mut self.failover_client } else { &mut self.client };
            if let Some(r) = client.poll(self.net.host(0), self.now) {
                return r;
            }
        }
        let client = if failover { &mut self.failover_client } else { &mut self.client };
        client.abandon();
        Err(ClientError::Timeout)
    }

    /// Issues `f` on the primary-facing client and pumps until its
    /// response arrives; `Err(ClientError::Timeout)` after `rpc_budget`
    /// steps.
    pub fn rpc(
        &mut self,
        f: impl FnOnce(&mut BlockClient, &mut veros_net::stack::NetStack, u64) -> u64,
    ) -> Result<Response, ClientError> {
        self.rpc_on(false, f)
    }

    /// Same against the backup (after failover).
    pub fn rpc_failover(
        &mut self,
        f: impl FnOnce(&mut BlockClient, &mut veros_net::stack::NetStack, u64) -> u64,
    ) -> Result<Response, ClientError> {
        self.rpc_on(true, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::block_checksum;

    fn reliable() -> Cluster {
        Cluster::new(FaultPlan::reliable(), 1)
    }

    #[test]
    fn put_get_delete_end_to_end() {
        let mut c = reliable();
        let r = c.rpc(|cl, s, t| cl.put(s, t, "k1", b"block one")).unwrap();
        assert!(matches!(r, Response::PutOk { .. }));
        let r = c.rpc(|cl, s, t| cl.get(s, t, "k1")).unwrap();
        match r {
            Response::GetOk { data, checksum, .. } => {
                assert_eq!(data, b"block one");
                assert_eq!(checksum, block_checksum(b"block one"));
            }
            other => panic!("{other:?}"),
        }
        let r = c.rpc(|cl, s, t| cl.delete(s, t, "k1")).unwrap();
        assert!(matches!(r, Response::DeleteOk { .. }));
        let r = c.rpc(|cl, s, t| cl.get(s, t, "k1")).unwrap();
        assert!(matches!(r, Response::NotFound { .. }));
    }

    #[test]
    fn writes_replicate_synchronously() {
        let mut c = reliable();
        c.rpc(|cl, s, t| cl.put(s, t, "k", b"replicated")).unwrap();
        // By ack time, the backup already has the block.
        assert_eq!(c.backup.store.get("k").unwrap().0, b"replicated");
    }

    #[test]
    fn hostile_network_still_serves_correctly() {
        let mut c = Cluster::new(FaultPlan::hostile(), 9);
        for i in 0..10u32 {
            let key = format!("obj-{i}");
            let data = vec![i as u8; 64 + i as usize];
            let r = c.rpc(|cl, s, t| cl.put(s, t, &key, &data)).unwrap();
            assert!(matches!(r, Response::PutOk { .. }));
        }
        for i in 0..10u32 {
            let key = format!("obj-{i}");
            match c.rpc(|cl, s, t| cl.get(s, t, &key)).unwrap() {
                Response::GetOk { data, .. } => assert_eq!(data, vec![i as u8; 64 + i as usize]),
                other => panic!("{other:?}"),
            }
        }
        let r = c.rpc(|cl, s, t| cl.list(s, t)).unwrap();
        match r {
            Response::Keys { keys, .. } => assert_eq!(keys.len(), 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failover_to_backup_preserves_acknowledged_writes() {
        let mut c = Cluster::new(FaultPlan::hostile(), 4);
        c.rpc(|cl, s, t| cl.put(s, t, "precious", b"ack'd")).unwrap();
        c.kill_primary();
        // The acknowledged write is readable from the backup.
        match c.rpc_failover(|cl, s, t| cl.get(s, t, "precious")).unwrap() {
            Response::GetOk { data, .. } => assert_eq!(data, b"ack'd"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn primary_crash_recovery_keeps_acknowledged_writes() {
        let mut c = reliable();
        c.rpc(|cl, s, t| cl.put(s, t, "a", b"one")).unwrap();
        c.rpc(|cl, s, t| cl.put(s, t, "b", b"two")).unwrap();
        // Crash the primary's disk (drop its entire write cache) and
        // recover the store from what is durable.
        let store = std::mem::replace(&mut c.primary.store, BlockStore::format(64));
        let mut disk = store.into_disk();
        disk.crash_keep_prefix(0);
        let recovered = BlockStore::recover(disk);
        assert_eq!(recovered.get("a").unwrap().0, b"one");
        assert_eq!(recovered.get("b").unwrap().0, b"two");
    }

    #[test]
    fn dead_primary_times_out_instead_of_panicking() {
        let mut c = reliable();
        c.rpc(|cl, s, t| cl.put(s, t, "k", b"v")).unwrap();
        c.kill_primary();
        c.rpc_budget = 500;
        // The primary no longer answers: the RPC reports Timeout (no
        // panic), and the client can issue again afterwards.
        let err = c.rpc(|cl, s, t| cl.get(s, t, "k")).unwrap_err();
        assert_eq!(err, ClientError::Timeout);
        // The failover path still serves within the same budget.
        match c.rpc_failover(|cl, s, t| cl.get(s, t, "k")).unwrap() {
            Response::GetOk { data, .. } => assert_eq!(data, b"v"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_data_rejected_end_to_end() {
        // A malicious/buggy client sending a wrong checksum is rejected
        // and nothing is stored or replicated.
        let mut c = reliable();
        let err = c
            .rpc(|cl, s, t| {
                let id = 1000;
                let req = crate::wire::Request::Put {
                    id,
                    key: "evil".into(),
                    data: b"payload".to_vec(),
                    checksum: 0xbad,
                    replicate: true,
                };
                // Bypass the client helper to inject the bad checksum.
                let _ = cl.inject_raw(s, t, id, req.encode());
                id
            })
            .unwrap_err();
        assert!(matches!(err, ClientError::Rejected(_)), "{err:?}");
        assert!(c.primary.store.get("evil").is_err());
        assert!(c.backup.store.get("evil").is_err());
    }
}
