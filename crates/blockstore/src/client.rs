//! The block-store client library.

use veros_net::rdt::RdtEndpoint;
use veros_net::stack::NetStack;

use crate::wire::{block_checksum, Request, Response};

/// Client-side errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The node answered `Error`.
    Rejected(String),
    /// The node returned data whose checksum does not match — detected
    /// end to end.
    ChecksumMismatch,
    /// The response did not match the outstanding request.
    ProtocolViolation(String),
    /// No response arrived within the caller's step budget. Harness
    /// RPC helpers return this instead of panicking so wedge-freedom is
    /// an assertable property.
    Timeout,
}

/// A client bound to one node endpoint. One request outstanding at a
/// time (the transport is ordered, so pipelining adds nothing for
/// correctness tests).
pub struct BlockClient {
    endpoint: RdtEndpoint,
    next_id: u64,
    outstanding: Option<u64>,
}

impl BlockClient {
    /// Wraps a transport endpoint to a node.
    pub fn new(endpoint: RdtEndpoint) -> Self {
        Self {
            endpoint,
            next_id: 1,
            outstanding: None,
        }
    }

    /// Issues a put (data checksummed client-side).
    pub fn put(&mut self, stack: &mut NetStack, now: u64, key: &str, data: &[u8]) -> u64 {
        let id = self.fresh_id();
        let req = Request::Put {
            id,
            key: key.into(),
            data: data.to_vec(),
            checksum: block_checksum(data),
            replicate: true,
        };
        let _ = self.endpoint.send(stack, now, req.encode());
        id
    }

    /// Issues a get.
    pub fn get(&mut self, stack: &mut NetStack, now: u64, key: &str) -> u64 {
        let id = self.fresh_id();
        let _ = self.endpoint.send(
            stack,
            now,
            Request::Get { id, key: key.into() }.encode(),
        );
        id
    }

    /// Issues a delete.
    pub fn delete(&mut self, stack: &mut NetStack, now: u64, key: &str) -> u64 {
        let id = self.fresh_id();
        let _ = self.endpoint.send(
            stack,
            now,
            Request::Delete {
                id,
                key: key.into(),
                replicate: true,
            }
            .encode(),
        );
        id
    }

    /// Issues a list.
    pub fn list(&mut self, stack: &mut NetStack, now: u64) -> u64 {
        let id = self.fresh_id();
        let _ = self.endpoint.send(stack, now, Request::List { id }.encode());
        id
    }

    /// Sends a pre-encoded request (test hook for injecting malformed
    /// or malicious requests while still tracking the response id).
    pub fn inject_raw(&mut self, stack: &mut NetStack, now: u64, id: u64, bytes: Vec<u8>) -> u64 {
        debug_assert!(self.outstanding.is_none());
        self.outstanding = Some(id);
        self.next_id = self.next_id.max(id + 1);
        let _ = self.endpoint.send(stack, now, bytes);
        id
    }

    /// Abandons the outstanding request after a timeout: the client may
    /// issue again (with a fresh id). A late response for the abandoned
    /// id is surfaced as a protocol violation by `poll`.
    pub fn abandon(&mut self) {
        self.outstanding = None;
    }

    fn fresh_id(&mut self) -> u64 {
        debug_assert!(self.outstanding.is_none(), "one request at a time");
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding = Some(id);
        id
    }

    /// Drives the endpoint; returns a validated response when one
    /// arrives for the outstanding request.
    pub fn poll(
        &mut self,
        stack: &mut NetStack,
        now: u64,
    ) -> Option<Result<Response, ClientError>> {
        let _ = self.endpoint.poll(stack, now);
        let _ = self.endpoint.on_tick(stack, now);
        let msg = self.endpoint.recv()?;
        let Some(resp) = Response::decode(&msg) else {
            return Some(Err(ClientError::ProtocolViolation("undecodable".into())));
        };
        let Some(want_id) = self.outstanding.take() else {
            return Some(Err(ClientError::ProtocolViolation(
                "response with nothing outstanding".into(),
            )));
        };
        if resp.id() != want_id {
            return Some(Err(ClientError::ProtocolViolation(format!(
                "id {} != outstanding {want_id}",
                resp.id()
            ))));
        }
        // End-to-end integrity on reads.
        if let Response::GetOk { data, checksum, .. } = &resp {
            if block_checksum(data) != *checksum {
                return Some(Err(ClientError::ChecksumMismatch));
            }
        }
        if let Response::Error { reason, .. } = &resp {
            return Some(Err(ClientError::Rejected(reason.clone())));
        }
        Some(Ok(resp))
    }
}
