//! The motivating application: a data-storage node of a distributed
//! block store.
//!
//! "As an example of the kind of application we are interested in
//! verifying, consider the data-storage node in a distributed block
//! store like GFS or S3. In fact, Amazon even describes their use of
//! lightweight formal methods to verify such a storage node" (§1,
//! citing \[8\]). This crate is that node, built on the verified stack:
//!
//! * [`wire`] — the client protocol, marshalled with the same
//!   round-trip discipline as the syscall ABI.
//! * [`store`] — the local storage engine: checksummed blocks persisted
//!   through the journaled filesystem (crash safety inherited from the
//!   journal's spec).
//! * [`node`] — the storage node: serves the protocol over the reliable
//!   transport, optionally replicating synchronously to a backup before
//!   acknowledging (primary/backup).
//! * [`client`] — the client library.
//! * [`cluster`] — a simulation harness wiring client, primary, and
//!   backup over the hostile network for the end-to-end checks.
//!
//! The spec is an abstract `key → bytes` map; the integration tests and
//! `veros-bench --bin audit` check client-visible linearizability,
//! checksum integrity end to end, crash recovery of acknowledged writes,
//! and failover to the backup.
//!
//! # Telemetry
//!
//! With the `telemetry` cargo feature (on by default) the storage
//! engine and the node maintain the instruments in [`metrics`] —
//! put/get/delete latency histograms, a checksum-failure counter, and a
//! replication round-trip counter. Reporting binaries call
//! [`metrics::export`] to register them under the `blockstore.` prefix;
//! see `OBSERVABILITY.md`. Disabling the feature compiles every
//! instrument to a no-op.

pub mod client;
pub mod cluster;
pub mod metrics;
pub mod node;
pub mod store;
pub mod wire;

pub use client::BlockClient;
pub use cluster::Cluster;
pub use node::StorageNode;
pub use store::BlockStore;
pub use wire::{Request, Response};
