//! Telemetry instruments for the block store.
//!
//! All instruments are process-global `veros-telemetry` statics that
//! compile to no-ops with the `telemetry` feature off. The storage
//! engine's operations are µs-scale (journal commits with flush
//! barriers), so the latency timers here are unconditional. [`export`]
//! registers everything under the `blockstore.` prefix; see
//! `OBSERVABILITY.md`.

use veros_telemetry::{Counter, Histogram, Registry};

/// `put` latency (checksum verify + journal transaction + commit), ns.
pub static PUT_LATENCY: Histogram = Histogram::new();

/// `get` latency (file read + checksum verify), ns.
pub static GET_LATENCY: Histogram = Histogram::new();

/// `delete` latency (journal transaction + commit), ns.
pub static DELETE_LATENCY: Histogram = Histogram::new();

/// Checksum failures: client-supplied mismatches rejected by `put` plus
/// stored-block corruption detected by `get`.
pub static CHECKSUM_FAILURES: Counter = Counter::new();

/// Primary/backup replication round-trips completed (backup
/// acknowledgement received and the held client response released).
pub static REPLICATION_ROUNDTRIPS: Counter = Counter::new();

/// Registers every block-store instrument with `reg` under the
/// `blockstore.` prefix.
pub fn export(reg: &mut Registry) {
    reg.histogram("blockstore.put.latency", "ns", &PUT_LATENCY);
    reg.histogram("blockstore.get.latency", "ns", &GET_LATENCY);
    reg.histogram("blockstore.delete.latency", "ns", &DELETE_LATENCY);
    reg.counter(
        "blockstore.checksum_failures",
        "failures",
        &CHECKSUM_FAILURES,
    );
    reg.counter(
        "blockstore.replication.roundtrips",
        "acks",
        &REPLICATION_ROUNDTRIPS,
    );
}
