//! The block-store protocol.
//!
//! Length-free tagged encoding (the transport delivers whole messages).
//! Every message round-trips; corrupted tags decode to `None` rather
//! than panicking. Data integrity is end-to-end: `Put` carries the
//! client-computed checksum, the node verifies it before storing, and
//! `GetOk` carries the stored checksum for the client to verify.

use veros_spec::rng::fnv1a;

/// A request from client to node (or primary to backup, with
/// `replicate` cleared to stop forwarding loops).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Store a block.
    Put {
        /// Request id (echoed in the response).
        id: u64,
        /// Block key.
        key: String,
        /// Block contents.
        data: Vec<u8>,
        /// Client-computed checksum of `data`.
        checksum: u64,
        /// Whether the receiving node should replicate to its backup.
        replicate: bool,
    },
    /// Fetch a block.
    Get {
        /// Request id.
        id: u64,
        /// Block key.
        key: String,
    },
    /// Delete a block.
    Delete {
        /// Request id.
        id: u64,
        /// Block key.
        key: String,
        /// Whether to replicate the deletion.
        replicate: bool,
    },
    /// List all keys.
    List {
        /// Request id.
        id: u64,
    },
    /// Store a block in a sharded fleet (client → chain head). Carries
    /// the client's identity and per-client sequence number so every
    /// chain node can deduplicate retries — exactly-once across
    /// failover.
    ShardPut {
        /// Request id (echoed in the response).
        id: u64,
        /// Block key.
        key: String,
        /// Block contents.
        data: Vec<u8>,
        /// Client-computed checksum of `data`.
        checksum: u64,
        /// Issuing client host id.
        client: u64,
        /// Per-client write sequence number (dedup key).
        seq: u64,
    },
    /// Delete a block in a sharded fleet (client → chain head).
    ShardDelete {
        /// Request id.
        id: u64,
        /// Block key.
        key: String,
        /// Issuing client host id.
        client: u64,
        /// Per-client write sequence number (dedup key).
        seq: u64,
    },
    /// A put forwarded down a replication chain (node → successor).
    /// `rest` is the chain after the receiver; the receiver applies,
    /// forwards to `rest[0]` (if any), and acks upstream only after its
    /// successor acks — the chain-replication ack rule.
    ChainPut {
        /// Request id (echoed in the ack).
        id: u64,
        /// Block key.
        key: String,
        /// Block contents.
        data: Vec<u8>,
        /// Client-computed checksum of `data`.
        checksum: u64,
        /// Originating client host id (dedup).
        client: u64,
        /// Per-client sequence number (dedup).
        seq: u64,
        /// Membership epoch the head forwarded under.
        epoch: u64,
        /// Chain members after the receiver (host ids).
        rest: Vec<u16>,
    },
    /// A delete forwarded down a replication chain.
    ChainDelete {
        /// Request id.
        id: u64,
        /// Block key.
        key: String,
        /// Originating client host id (dedup).
        client: u64,
        /// Per-client sequence number (dedup).
        seq: u64,
        /// Membership epoch the head forwarded under.
        epoch: u64,
        /// Chain members after the receiver (host ids).
        rest: Vec<u16>,
    },
    /// Pull every block of one shard (promoted/new chain member →
    /// surviving replica), so the chain regains full width after a
    /// failure.
    SyncShard {
        /// Request id.
        id: u64,
        /// Shard index in the fleet's shard map.
        shard: u32,
    },
}

/// A response from node to client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Block stored (and replicated, if requested).
    PutOk {
        /// Echoed request id.
        id: u64,
    },
    /// Block contents with stored checksum.
    GetOk {
        /// Echoed request id.
        id: u64,
        /// The block.
        data: Vec<u8>,
        /// Stored checksum.
        checksum: u64,
    },
    /// Key not present.
    NotFound {
        /// Echoed request id.
        id: u64,
    },
    /// Deletion done.
    DeleteOk {
        /// Echoed request id.
        id: u64,
    },
    /// All keys, sorted.
    Keys {
        /// Echoed request id.
        id: u64,
        /// The keys.
        keys: Vec<String>,
    },
    /// The request was rejected (bad checksum, storage failure).
    Error {
        /// Echoed request id.
        id: u64,
        /// Why.
        reason: String,
    },
    /// The node cannot serve this request *right now* (mid-failover
    /// shard sync, or the key moved under a newer membership view).
    /// The client should refresh its view and retry — unlike `Error`,
    /// nothing is wrong with the request itself.
    Retry {
        /// Echoed request id.
        id: u64,
    },
    /// One shard's blocks (`key`, `data`, stored checksum), the answer
    /// to [`Request::SyncShard`].
    SyncBlocks {
        /// Echoed request id.
        id: u64,
        /// The shard's blocks.
        blocks: Vec<(String, Vec<u8>, u64)>,
    },
}

/// Computes the protocol checksum of a block.
pub fn block_checksum(data: &[u8]) -> u64 {
    fnv1a(data)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_hosts(out: &mut Vec<u8>, hosts: &[u16]) {
    out.extend_from_slice(&(hosts.len() as u32).to_le_bytes());
    for h in hosts {
        out.extend_from_slice(&h.to_le_bytes());
    }
}

struct Reader<'a>(&'a [u8], usize);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() - self.1 < n {
            return None;
        }
        let s = &self.0[self.1..self.1 + n];
        self.1 += n;
        Some(s)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// A chain-member list: bounded at 64 hosts (replication factors
    /// are single digits; anything bigger is malformed).
    fn hosts(&mut self) -> Option<Vec<u16>> {
        let n = self.u32()? as usize;
        if n > 64 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(u16::from_le_bytes(self.take(2)?.try_into().ok()?));
        }
        Some(out)
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
        if len > (1 << 24) {
            return None;
        }
        Some(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }

    fn done(&self) -> bool {
        self.1 == self.0.len()
    }
}

impl Request {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Put {
                id,
                key,
                data,
                checksum,
                replicate,
            } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                put_bytes(&mut out, data);
                out.extend_from_slice(&checksum.to_le_bytes());
                out.push(*replicate as u8);
            }
            Request::Get { id, key } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
            }
            Request::Delete { id, key, replicate } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                out.push(*replicate as u8);
            }
            Request::List { id } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Request::ShardPut {
                id,
                key,
                data,
                checksum,
                client,
                seq,
            } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                put_bytes(&mut out, data);
                out.extend_from_slice(&checksum.to_le_bytes());
                out.extend_from_slice(&client.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Request::ShardDelete { id, key, client, seq } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                out.extend_from_slice(&client.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Request::ChainPut {
                id,
                key,
                data,
                checksum,
                client,
                seq,
                epoch,
                rest,
            } => {
                out.push(7);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                put_bytes(&mut out, data);
                out.extend_from_slice(&checksum.to_le_bytes());
                out.extend_from_slice(&client.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                put_hosts(&mut out, rest);
            }
            Request::ChainDelete {
                id,
                key,
                client,
                seq,
                epoch,
                rest,
            } => {
                out.push(8);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, key);
                out.extend_from_slice(&client.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                put_hosts(&mut out, rest);
            }
            Request::SyncShard { id, shard } => {
                out.push(9);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
            }
        }
        out
    }

    /// Parses a request; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Request> {
        let mut r = Reader(bytes, 1);
        let req = match bytes.first()? {
            1 => Request::Put {
                id: r.u64()?,
                key: r.string()?,
                data: r.bytes()?,
                checksum: r.u64()?,
                replicate: *r.take(1)?.first()? != 0,
            },
            2 => Request::Get {
                id: r.u64()?,
                key: r.string()?,
            },
            3 => Request::Delete {
                id: r.u64()?,
                key: r.string()?,
                replicate: *r.take(1)?.first()? != 0,
            },
            4 => Request::List { id: r.u64()? },
            5 => Request::ShardPut {
                id: r.u64()?,
                key: r.string()?,
                data: r.bytes()?,
                checksum: r.u64()?,
                client: r.u64()?,
                seq: r.u64()?,
            },
            6 => Request::ShardDelete {
                id: r.u64()?,
                key: r.string()?,
                client: r.u64()?,
                seq: r.u64()?,
            },
            7 => Request::ChainPut {
                id: r.u64()?,
                key: r.string()?,
                data: r.bytes()?,
                checksum: r.u64()?,
                client: r.u64()?,
                seq: r.u64()?,
                epoch: r.u64()?,
                rest: r.hosts()?,
            },
            8 => Request::ChainDelete {
                id: r.u64()?,
                key: r.string()?,
                client: r.u64()?,
                seq: r.u64()?,
                epoch: r.u64()?,
                rest: r.hosts()?,
            },
            9 => Request::SyncShard {
                id: r.u64()?,
                shard: r.u32()?,
            },
            _ => return None,
        };
        r.done().then_some(req)
    }

    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Put { id, .. }
            | Request::Get { id, .. }
            | Request::Delete { id, .. }
            | Request::List { id }
            | Request::ShardPut { id, .. }
            | Request::ShardDelete { id, .. }
            | Request::ChainPut { id, .. }
            | Request::ChainDelete { id, .. }
            | Request::SyncShard { id, .. } => *id,
        }
    }
}

impl Response {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::PutOk { id } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Response::GetOk { id, data, checksum } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                put_bytes(&mut out, data);
                out.extend_from_slice(&checksum.to_le_bytes());
            }
            Response::NotFound { id } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Response::DeleteOk { id } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Response::Keys { id, keys } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    put_str(&mut out, k);
                }
            }
            Response::Error { id, reason } => {
                out.push(6);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, reason);
            }
            Response::Retry { id } => {
                out.push(7);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Response::SyncBlocks { id, blocks } => {
                out.push(8);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for (key, data, checksum) in blocks {
                    put_str(&mut out, key);
                    put_bytes(&mut out, data);
                    out.extend_from_slice(&checksum.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a response; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Response> {
        let mut r = Reader(bytes, 1);
        let resp = match bytes.first()? {
            1 => Response::PutOk { id: r.u64()? },
            2 => Response::GetOk {
                id: r.u64()?,
                data: r.bytes()?,
                checksum: r.u64()?,
            },
            3 => Response::NotFound { id: r.u64()? },
            4 => Response::DeleteOk { id: r.u64()? },
            5 => {
                let id = r.u64()?;
                let n = u32::from_le_bytes(r.take(4)?.try_into().ok()?) as usize;
                if n > (1 << 16) {
                    return None;
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.string()?);
                }
                Response::Keys { id, keys }
            }
            6 => Response::Error {
                id: r.u64()?,
                reason: r.string()?,
            },
            7 => Response::Retry { id: r.u64()? },
            8 => {
                let id = r.u64()?;
                let n = u32::from_le_bytes(r.take(4)?.try_into().ok()?) as usize;
                if n > (1 << 16) {
                    return None;
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push((r.string()?, r.bytes()?, r.u64()?));
                }
                Response::SyncBlocks { id, blocks }
            }
            _ => return None,
        };
        r.done().then_some(resp)
    }

    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::PutOk { id }
            | Response::GetOk { id, .. }
            | Response::NotFound { id }
            | Response::DeleteOk { id }
            | Response::Keys { id, .. }
            | Response::Error { id, .. }
            | Response::Retry { id }
            | Response::SyncBlocks { id, .. } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Put {
                id: 7,
                key: "blob-1".into(),
                data: vec![1, 2, 3],
                checksum: block_checksum(&[1, 2, 3]),
                replicate: true,
            },
            Request::Get { id: 8, key: "k".into() },
            Request::Delete {
                id: 9,
                key: "k".into(),
                replicate: false,
            },
            Request::List { id: 10 },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()), Some(r.clone()));
            assert!(r.id() >= 7);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::PutOk { id: 1 },
            Response::GetOk {
                id: 2,
                data: b"xyz".to_vec(),
                checksum: 99,
            },
            Response::NotFound { id: 3 },
            Response::DeleteOk { id: 4 },
            Response::Keys {
                id: 5,
                keys: vec!["a".into(), "b".into()],
            },
            Response::Error {
                id: 6,
                reason: "bad checksum".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()), Some(r.clone()));
        }
    }

    #[test]
    fn malformed_input_rejected_not_panicking() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[99, 0, 0]), None);
        assert_eq!(Response::decode(&[2, 1]), None);
        // Truncations of a valid message all decode to None.
        let full = Request::Put {
            id: 1,
            key: "k".into(),
            data: vec![1; 16],
            checksum: 0,
            replicate: true,
        }
        .encode();
        for cut in 1..full.len() {
            assert_eq!(Request::decode(&full[..cut]), None, "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::List { id: 3 }.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), None);
    }

    #[test]
    fn fleet_requests_round_trip() {
        let reqs = [
            Request::ShardPut {
                id: 11,
                key: "obj".into(),
                data: vec![9; 32],
                checksum: block_checksum(&[9; 32]),
                client: 1003,
                seq: 42,
            },
            Request::ShardDelete {
                id: 12,
                key: "obj".into(),
                client: 1003,
                seq: 43,
            },
            Request::ChainPut {
                id: 13,
                key: "obj".into(),
                data: vec![7; 8],
                checksum: block_checksum(&[7; 8]),
                client: 1003,
                seq: 44,
                epoch: 2,
                rest: vec![4, 6],
            },
            Request::ChainDelete {
                id: 14,
                key: "obj".into(),
                client: 1003,
                seq: 45,
                epoch: 2,
                rest: vec![],
            },
            Request::SyncShard { id: 15, shard: 37 },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()), Some(r.clone()));
            assert!(r.id() >= 11);
            // Truncations never decode.
            let full = r.encode();
            for cut in 1..full.len() {
                assert_eq!(Request::decode(&full[..cut]), None, "{r:?} cut {cut}");
            }
        }
    }

    #[test]
    fn fleet_responses_round_trip() {
        let resps = [
            Response::Retry { id: 21 },
            Response::SyncBlocks {
                id: 22,
                blocks: vec![
                    ("a".into(), vec![1, 2], block_checksum(&[1, 2])),
                    ("b".into(), vec![], block_checksum(&[])),
                ],
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()), Some(r.clone()));
        }
    }

    #[test]
    fn oversized_chain_rejected() {
        let mut bytes = Request::ChainDelete {
            id: 1,
            key: "k".into(),
            client: 1,
            seq: 1,
            epoch: 1,
            rest: vec![0; 64],
        }
        .encode();
        assert!(Request::decode(&bytes).is_some());
        // Patch the host count to 65: over the bound, rejected.
        let count_at = bytes.len() - 64 * 2 - 4;
        bytes[count_at..count_at + 4].copy_from_slice(&65u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert_eq!(Request::decode(&bytes), None);
    }
}
