//! The local storage engine.
//!
//! Blocks live as files in the journaled filesystem: key `k` maps to the
//! file `/b_<hex(k)>` whose first 8 bytes are the stored checksum and the
//! rest the block data. Every mutation is one committed journal
//! transaction, so the engine inherits the journal's crash-safety spec:
//! acknowledged puts and deletes survive any crash.

use veros_fs::journal::{FsOp, JournaledFs};
use veros_fs::Path;
use veros_hw::SimDisk;

use crate::wire::block_checksum;

/// Storage errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The provided checksum did not match the data.
    ChecksumMismatch,
    /// The stored block failed its checksum on read (corruption).
    Corrupt,
    /// No such key.
    NotFound,
    /// The filesystem rejected the operation.
    Fs(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ChecksumMismatch => f.write_str("checksum mismatch"),
            StoreError::Corrupt => f.write_str("stored block corrupt"),
            StoreError::NotFound => f.write_str("no such key"),
            StoreError::Fs(e) => write!(f, "filesystem: {e}"),
        }
    }
}

/// The storage engine.
pub struct BlockStore {
    fs: JournaledFs,
}

fn key_path(key: &str) -> String {
    // Hex-encode so arbitrary keys are always valid single-component
    // paths.
    let hex: String = key.bytes().map(|b| format!("{b:02x}")).collect();
    format!("/b_{hex}")
}

fn path_key(path: &str) -> Option<String> {
    let hex = path.strip_prefix("/b_")?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&hex[i..i + 2], 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

impl BlockStore {
    /// Creates an empty store on a fresh disk of `sectors`.
    pub fn format(sectors: u64) -> Self {
        Self {
            fs: JournaledFs::format(SimDisk::new(sectors)),
        }
    }

    /// Recovers a store from a (possibly crashed) disk.
    pub fn recover(disk: SimDisk) -> Self {
        Self {
            fs: JournaledFs::recover(disk),
        }
    }

    /// Consumes the store, returning the disk (crash testing).
    pub fn into_disk(self) -> SimDisk {
        self.fs.into_disk()
    }

    /// Stores a block, verifying the client checksum first. One
    /// committed transaction: after `Ok`, the block survives crashes.
    pub fn put(&mut self, key: &str, data: &[u8], checksum: u64) -> Result<(), StoreError> {
        let _latency = crate::metrics::PUT_LATENCY.timer();
        if block_checksum(data) != checksum {
            crate::metrics::CHECKSUM_FAILURES.inc();
            return Err(StoreError::ChecksumMismatch);
        }
        let path = key_path(key);
        let exists = self
            .fs
            .fs
            .lookup(&Path::parse(&path).expect("hex path"))
            .is_ok();
        if !exists {
            self.fs
                .apply(FsOp::Create(path.clone()))
                .map_err(|e| StoreError::Fs(e.to_string()))?;
        } else {
            self.fs
                .apply(FsOp::Truncate(path.clone(), 0))
                .map_err(|e| StoreError::Fs(e.to_string()))?;
        }
        let mut payload = checksum.to_le_bytes().to_vec();
        payload.extend_from_slice(data);
        self.fs
            .apply(FsOp::WriteAt(path, 0, payload))
            .map_err(|e| StoreError::Fs(e.to_string()))?;
        self.fs.commit().map_err(|e| StoreError::Fs(e.to_string()))?;
        Ok(())
    }

    /// Fetches a block and its stored checksum, verifying integrity.
    pub fn get(&self, key: &str) -> Result<(Vec<u8>, u64), StoreError> {
        let _latency = crate::metrics::GET_LATENCY.timer();
        let path = Path::parse(&key_path(key)).expect("hex path");
        let raw = self.fs.fs.read_file(&path).map_err(|_| StoreError::NotFound)?;
        if raw.len() < 8 {
            return Err(StoreError::Corrupt);
        }
        let checksum = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
        let data = raw[8..].to_vec();
        if block_checksum(&data) != checksum {
            crate::metrics::CHECKSUM_FAILURES.inc();
            return Err(StoreError::Corrupt);
        }
        Ok((data, checksum))
    }

    /// Deletes a block (committed transaction).
    pub fn delete(&mut self, key: &str) -> Result<(), StoreError> {
        let _latency = crate::metrics::DELETE_LATENCY.timer();
        let path = key_path(key);
        self.fs
            .apply(FsOp::Unlink(path))
            .map_err(|_| StoreError::NotFound)?;
        self.fs.commit().map_err(|e| StoreError::Fs(e.to_string()))?;
        Ok(())
    }

    /// All keys, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .fs
            .fs
            .readdir(&Path::root())
            .expect("root exists")
            .iter()
            .filter_map(|name| path_key(&format!("/{name}")))
            .collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_with_checksums() {
        let mut s = BlockStore::format(4096);
        let data = b"the quick brown block".to_vec();
        let ck = block_checksum(&data);
        s.put("obj/1", &data, ck).unwrap();
        let (got, got_ck) = s.get("obj/1").unwrap();
        assert_eq!(got, data);
        assert_eq!(got_ck, ck);
    }

    #[test]
    fn wrong_checksum_rejected_before_storing() {
        let mut s = BlockStore::format(4096);
        assert_eq!(
            s.put("k", b"data", 12345),
            Err(StoreError::ChecksumMismatch)
        );
        assert_eq!(s.get("k"), Err(StoreError::NotFound));
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut s = BlockStore::format(4096);
        s.put("k", b"longer first version", block_checksum(b"longer first version"))
            .unwrap();
        s.put("k", b"v2", block_checksum(b"v2")).unwrap();
        assert_eq!(s.get("k").unwrap().0, b"v2");
    }

    #[test]
    fn delete_then_not_found() {
        let mut s = BlockStore::format(4096);
        s.put("k", b"x", block_checksum(b"x")).unwrap();
        s.delete("k").unwrap();
        assert_eq!(s.get("k"), Err(StoreError::NotFound));
        assert_eq!(s.delete("k"), Err(StoreError::NotFound));
    }

    #[test]
    fn list_returns_original_keys() {
        let mut s = BlockStore::format(4096);
        for k in ["zeta", "alpha", "weird/key with spaces", "ütf8"] {
            s.put(k, b"v", block_checksum(b"v")).unwrap();
        }
        assert_eq!(
            s.list(),
            vec!["alpha", "weird/key with spaces", "zeta", "ütf8"]
        );
    }

    #[test]
    fn acknowledged_puts_survive_crashes() {
        let mut s = BlockStore::format(8192);
        s.put("durable", b"yes", block_checksum(b"yes")).unwrap();
        let mut disk = s.into_disk();
        disk.crash_keep_prefix(0); // Drop all unflushed writes.
        let s = BlockStore::recover(disk);
        assert_eq!(s.get("durable").unwrap().0, b"yes");
    }

    #[test]
    fn corruption_is_detected_on_read() {
        let mut s = BlockStore::format(4096);
        s.put("k", b"data", block_checksum(b"data")).unwrap();
        // Corrupt the stored file behind the store's back.
        let path = Path::parse(&key_path("k")).unwrap();
        let ino = s.fs.fs.lookup(&path).unwrap();
        s.fs.fs.write_at(ino, 9, b"X").unwrap();
        assert_eq!(s.get("k"), Err(StoreError::Corrupt));
    }
}
