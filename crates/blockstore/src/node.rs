//! The storage node.
//!
//! Serves the protocol over reliable transport endpoints. A node may
//! have several client-facing endpoints (clients, or its primary when it
//! acts as the backup) plus one outgoing replication link. Writes with
//! `replicate: true` are applied locally, forwarded to the backup, and
//! acknowledged to the client only after the backup's acknowledgement —
//! synchronous primary/backup replication, so an acknowledged write
//! survives the loss of either replica.

use std::collections::VecDeque;

use veros_net::rdt::RdtEndpoint;
use veros_net::stack::NetStack;

use crate::store::{BlockStore, StoreError};
use crate::wire::{Request, Response};

/// A storage node.
pub struct StorageNode {
    /// The local storage engine (public for direct inspection in tests
    /// and crash scenarios).
    pub store: BlockStore,
    servers: Vec<RdtEndpoint>,
    backup: Option<RdtEndpoint>,
    /// Responses held back until the backup acknowledges, FIFO (the
    /// replication link is ordered, so acks match in order).
    pending: VecDeque<(usize, Response)>,
    served: u64,
}

impl StorageNode {
    /// Creates a node over a storage engine.
    pub fn new(store: BlockStore) -> Self {
        Self {
            store,
            servers: Vec::new(),
            backup: None,
            pending: VecDeque::new(),
            served: 0,
        }
    }

    /// Adds a serving endpoint; returns its index.
    pub fn add_server(&mut self, endpoint: RdtEndpoint) -> usize {
        self.servers.push(endpoint);
        self.servers.len() - 1
    }

    /// Sets the outgoing replication link.
    pub fn set_backup(&mut self, endpoint: RdtEndpoint) {
        self.backup = Some(endpoint);
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Executes a request against the local store.
    fn execute(&mut self, req: &Request) -> Response {
        self.served += 1;
        match req {
            Request::Put {
                id,
                key,
                data,
                checksum,
                ..
            } => match self.store.put(key, data, *checksum) {
                Ok(()) => Response::PutOk { id: *id },
                Err(e) => Response::Error {
                    id: *id,
                    reason: e.to_string(),
                },
            },
            Request::Get { id, key } => match self.store.get(key) {
                Ok((data, checksum)) => Response::GetOk {
                    id: *id,
                    data,
                    checksum,
                },
                Err(StoreError::NotFound) => Response::NotFound { id: *id },
                Err(e) => Response::Error {
                    id: *id,
                    reason: e.to_string(),
                },
            },
            Request::Delete { id, key, .. } => match self.store.delete(key) {
                Ok(()) => Response::DeleteOk { id: *id },
                Err(StoreError::NotFound) => Response::NotFound { id: *id },
                Err(e) => Response::Error {
                    id: *id,
                    reason: e.to_string(),
                },
            },
            Request::List { id } => Response::Keys {
                id: *id,
                keys: self.store.list(),
            },
            // Fleet-only messages (sharding, chain replication, shard
            // sync) are served by `veros-cluster`'s FleetNode; the
            // standalone primary/backup node rejects them loudly.
            Request::ShardPut { id, .. }
            | Request::ShardDelete { id, .. }
            | Request::ChainPut { id, .. }
            | Request::ChainDelete { id, .. }
            | Request::SyncShard { id, .. } => Response::Error {
                id: *id,
                reason: "fleet-only request on a standalone node".into(),
            },
        }
    }

    /// One poll round: drain requests, execute/replicate, release acked
    /// responses, drive retransmission timers.
    pub fn poll(&mut self, stack: &mut NetStack, now: u64) {
        // Serve requests on every endpoint.
        for idx in 0..self.servers.len() {
            let mut incoming = Vec::new();
            {
                let ep = &mut self.servers[idx];
                let _ = ep.poll(stack, now);
                while let Some(msg) = ep.recv() {
                    incoming.push(msg);
                }
            }
            for msg in incoming {
                let Some(req) = Request::decode(&msg) else {
                    continue; // Malformed requests are dropped.
                };
                let wants_replication = matches!(
                    &req,
                    Request::Put { replicate: true, .. } | Request::Delete { replicate: true, .. }
                ) && self.backup.is_some();
                let resp = self.execute(&req);
                let local_ok = !matches!(resp, Response::Error { .. });
                if wants_replication && local_ok {
                    // Forward with replication cleared; hold the client
                    // response until the backup acks.
                    let fwd = match req {
                        Request::Put {
                            id,
                            key,
                            data,
                            checksum,
                            ..
                        } => Request::Put {
                            id,
                            key,
                            data,
                            checksum,
                            replicate: false,
                        },
                        Request::Delete { id, key, .. } => Request::Delete {
                            id,
                            key,
                            replicate: false,
                        },
                        _ => unreachable!("only writes replicate"),
                    };
                    let backup = self.backup.as_mut().expect("checked");
                    let _ = backup.send(stack, now, fwd.encode());
                    self.pending.push_back((idx, resp));
                } else {
                    let ep = &mut self.servers[idx];
                    let _ = ep.send(stack, now, resp.encode());
                }
            }
        }
        // Backup acknowledgements release pending client responses.
        if let Some(backup) = &mut self.backup {
            let _ = backup.poll(stack, now);
            let mut acks = Vec::new();
            while let Some(msg) = backup.recv() {
                acks.push(msg);
            }
            let _ = backup.on_tick(stack, now);
            for msg in acks {
                let Some(resp) = Response::decode(&msg) else {
                    continue;
                };
                if let Some((idx, held)) = self.pending.pop_front() {
                    debug_assert_eq!(resp.id(), held.id(), "replication acks out of order");
                    crate::metrics::REPLICATION_ROUNDTRIPS.inc();
                    // If the backup failed the write, report that
                    // instead of the held success.
                    let out = match resp {
                        Response::Error { id, reason } => Response::Error {
                            id,
                            reason: format!("replication failed: {reason}"),
                        },
                        _ => held,
                    };
                    let _ = self.servers[idx].send(stack, now, out.encode());
                }
            }
        }
        // Timers.
        for ep in &mut self.servers {
            let _ = ep.on_tick(stack, now);
        }
    }
}
