//! Benchmarks of node replication itself: write batching (flat
//! combining) and read-path cost — the ablation for the design choice
//! DESIGN.md calls out (NR as the single concurrency mechanism).
//! Uses the in-tree harness in `veros_bench::microbench`.
//!
//! Run: `cargo bench -p veros-bench --bench nr_scaling`

use std::sync::Arc;
use veros_bench::microbench::run;
use veros_nr::{Dispatch, NodeReplicated};

#[derive(Clone, Default)]
struct Counter(u64);

impl Dispatch for Counter {
    type ReadOp = ();
    type WriteOp = u64;
    type Response = u64;

    fn dispatch(&self, _: ()) -> u64 {
        self.0
    }

    fn dispatch_mut(&mut self, n: &u64) -> u64 {
        self.0 += n;
        self.0
    }
}

fn bench_single_thread_ops() {
    for replicas in [1usize, 2] {
        let nr = NodeReplicated::new(replicas, 2, 256, Counter::default);
        let t = nr.register(0).unwrap();
        run(&format!("nr_single_thread/execute_mut/{replicas}"), || {
            std::hint::black_box(nr.execute_mut(1, t));
        });
        run(&format!("nr_single_thread/execute_read/{replicas}"), || {
            std::hint::black_box(nr.execute((), t));
        });
    }
}

fn bench_contended_writes() {
    for threads in [2usize, 4] {
        run(&format!("nr_contended/writers/{threads}"), || {
            let nr = Arc::new(NodeReplicated::new(1, threads, 256, Counter::default));
            let mut handles = Vec::new();
            for _ in 0..threads {
                let nr = Arc::clone(&nr);
                handles.push(std::thread::spawn(move || {
                    let t = nr.register(0).expect("slot");
                    for _ in 0..200 {
                        nr.execute_mut(1, t);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}

fn bench_log_batch_sizes() {
    // Flat-combining ablation: larger batches amortize log appends.
    for batch in [1usize, 8, 64] {
        let log = veros_nr::Log::new(1024, 1);
        run(&format!("nr_log_batch/append_exec/{batch}"), || {
            let mut entries: Vec<veros_nr::LogEntry<u64>> = (0..batch as u64)
                .map(|i| veros_nr::LogEntry {
                    op: i,
                    replica: 0,
                    thread: 0,
                })
                .collect();
            assert!(log.try_append(&mut entries));
            let mut sum = 0u64;
            log.exec(0, |e| sum += e.op);
            std::hint::black_box(sum);
        });
    }
}

fn main() {
    bench_single_thread_ops();
    bench_contended_writes();
    bench_log_batch_sizes();
}
